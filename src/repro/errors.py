"""Exception hierarchy shared by every plane of the stack.

Keeping one root (:class:`ReproError`) lets callers of the full stack —
e.g. the Nerpa controller, which touches all three planes in one code
path — catch domain failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of all domain errors raised by this package."""


class SourceError(ReproError):
    """An error tied to a position in user-provided source text.

    Carries enough context (source name, line, column) to format a
    compiler-style diagnostic.
    """

    def __init__(self, message, source="<input>", line=None, column=None):
        self.message = message
        self.source = source
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self):
        where = self.source
        if self.line is not None:
            where = f"{where}:{self.line}"
            if self.column is not None:
                where = f"{where}:{self.column}"
        return f"{where}: {self.message}"


class LexError(SourceError):
    """Invalid token in source text."""


class ParseError(SourceError):
    """Syntactically invalid source text."""


class TypeCheckError(SourceError):
    """A type error detected at compilation time (any plane)."""


class EvalError(ReproError):
    """A runtime error while evaluating a control-plane expression."""


class StratificationError(ReproError):
    """The rule set has negation or aggregation through recursion."""


class TransactionError(ReproError):
    """A management- or control-plane transaction could not commit."""


class SchemaError(ReproError):
    """Invalid database schema, or data that violates it."""


class ProtocolError(ReproError):
    """Malformed or unexpected message on a wire protocol."""


class ConnectionLostError(ProtocolError):
    """The transport under a wire protocol died (and, for a resilient
    connection, could not be re-established in time)."""


class DataPlaneError(ReproError):
    """Error while compiling or executing a data-plane program."""


class RuntimeApiError(ReproError):
    """A P4Runtime-style request was rejected by the target."""
