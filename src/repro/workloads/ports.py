"""The §4.3 port-scaling workload: N sequential port additions.

"As a preliminary scalability evaluation, we added 2,000 ports to the
system.  We then measured the time between (1) the OVSDB client reading
a new port from OVSDB and (2) the data plane entry being added to the
P4 table."
"""

from __future__ import annotations

from typing import Iterator, Tuple


def port_add_stream(
    n_ports: int, n_vlans: int = 8, start_port: int = 0
) -> Iterator[Tuple[int, int]]:
    """Yield ``(port_number, vlan)`` pairs, round-robining VLANs."""
    for i in range(n_ports):
        yield start_port + i, 1 + (i % n_vlans)
