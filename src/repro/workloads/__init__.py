"""Workload generators for the evaluation harness.

Each generator reproduces a workload the paper references:

* :mod:`repro.workloads.topology` — fat-tree and random graphs for the
  reachability/routing experiments;
* :mod:`repro.workloads.churn` — Robotron-style configuration churn
  (§2.1's "more than 50 lines change per day ... backbone devices
  average a dozen changes per week, with over 150 lines per change");
* :mod:`repro.workloads.ports` — the §4.3 port-scaling workload
  (2,000 sequential port additions);
* :mod:`repro.workloads.loadbalancer` — OVN's load-balancer benchmark
  shape (§2.2: cold start with large load balancers, then delete each).

Generators take an explicit seed so every benchmark run is
reproducible.
"""

from repro.workloads.topology import fat_tree, random_graph
from repro.workloads.churn import ChurnEvent, robotron_churn
from repro.workloads.ports import port_add_stream
from repro.workloads.loadbalancer import LoadBalancerWorkload

__all__ = [
    "ChurnEvent",
    "LoadBalancerWorkload",
    "fat_tree",
    "port_add_stream",
    "random_graph",
    "robotron_churn",
]
