"""Robotron-style configuration churn (§2.1).

The paper motivates incrementality with Meta's Robotron numbers: models
change by ~50 lines/day across the fleet, and each backbone device sees
about a dozen changes per week at ~150 lines per change.  We translate
"model lines" into management-database operations: each churn event
touches a handful of rows in a network model, never the whole model.
"""

from __future__ import annotations

import random
from typing import Iterator, List


class ChurnEvent:
    """One configuration change: a batch of row-level operations.

    ``kind`` is one of ``add_port``, ``del_port``, ``retag_port``,
    ``move_port`` — the operation mix observed for top-down management
    systems (mostly attribute updates, some adds/removes).
    """

    __slots__ = ("kind", "port", "vlan", "lines")

    def __init__(self, kind: str, port: int, vlan: int, lines: int):
        self.kind = kind
        self.port = port
        self.vlan = vlan
        self.lines = lines

    def __repr__(self):
        return f"ChurnEvent({self.kind}, port={self.port}, vlan={self.vlan})"


def robotron_churn(
    n_ports: int,
    n_vlans: int,
    n_events: int,
    seed: int = 0,
    lines_per_change: int = 150,
) -> Iterator[ChurnEvent]:
    """Generate a stream of configuration changes over an existing model.

    The operation mix (70% attribute updates, 15% adds, 15% removes)
    keeps the model size roughly stable while producing the continuous
    small-change pattern the paper describes.
    """
    rng = random.Random(seed)
    live: List[int] = list(range(n_ports))
    next_port = n_ports
    for _ in range(n_events):
        roll = rng.random()
        vlan = rng.randrange(1, n_vlans + 1)
        lines = max(1, int(rng.gauss(lines_per_change, lines_per_change / 4)))
        if roll < 0.70 and live:
            port = rng.choice(live)
            if rng.random() < 0.5:
                yield ChurnEvent("retag_port", port, vlan, lines)
            else:
                yield ChurnEvent("move_port", port, vlan, lines)
        elif roll < 0.85 or not live:
            port = next_port
            next_port += 1
            live.append(port)
            yield ChurnEvent("add_port", port, vlan, lines)
        else:
            port = live.pop(rng.randrange(len(live)))
            yield ChurnEvent("del_port", port, vlan, lines)
