"""Network topology generators (graphs as edge lists).

Nodes are integers; edges are directed ``(src, dst)`` pairs.  The
generators return both directions for physical links, matching how a
routing control plane sees adjacency.
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

Edge = Tuple[int, int]


def fat_tree(k: int) -> List[Edge]:
    """A k-ary fat-tree (k even): the canonical datacenter topology.

    Node numbering: core switches first, then per-pod aggregation and
    edge switches.  Returns bidirectional edges.
    """
    if k % 2 != 0 or k < 2:
        raise ValueError("fat-tree arity k must be even and >= 2")
    half = k // 2
    n_core = half * half
    edges: List[Edge] = []

    def core(i: int) -> int:
        return i

    def agg(pod: int, i: int) -> int:
        return n_core + pod * k + i

    def edge_sw(pod: int, i: int) -> int:
        return n_core + pod * k + half + i

    for pod in range(k):
        for a in range(half):
            # Aggregation a connects to core switches a*half .. a*half+half-1.
            for c in range(half):
                _link(edges, agg(pod, a), core(a * half + c))
            for e in range(half):
                _link(edges, agg(pod, a), edge_sw(pod, e))
    return edges


def random_graph(
    n_nodes: int, n_edges: int, seed: int = 0, connected: bool = True
) -> List[Edge]:
    """A random directed graph, optionally seeded with a spanning path
    so every node is reachable from node 0."""
    rng = random.Random(seed)
    edges: Set[Edge] = set()
    if connected and n_nodes > 1:
        order = list(range(1, n_nodes))
        rng.shuffle(order)
        prev = 0
        for node in order:
            edges.add((prev, node))
            prev = node
    attempts = 0
    while len(edges) < n_edges and attempts < n_edges * 50:
        a = rng.randrange(n_nodes)
        b = rng.randrange(n_nodes)
        attempts += 1
        if a != b:
            edges.add((a, b))
    return sorted(edges)


def random_tree(n_nodes: int, seed: int = 0) -> List[Edge]:
    """A random recursive tree rooted at 0 (edges point away from root).

    Trees are the localized-change topology: deleting an edge affects
    exactly the subtree below it, so they exhibit the paper's
    "work proportional to the modified state" claim in its purest form.
    """
    rng = random.Random(seed)
    return [(rng.randrange(0, i), i) for i in range(1, n_nodes)]


def _link(edges: List[Edge], a: int, b: int) -> None:
    edges.append((a, b))
    edges.append((b, a))
