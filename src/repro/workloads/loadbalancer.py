"""The OVN load-balancer worst case (§2.2).

"OVN's load balancer benchmark cold starts ovn-controller with large
load balancers and then deletes each.  This is a worst-case for
incremental computation: changes occur multiple times and cannot be
easily parallelized, but automatically incrementalizing the code still
requires memory-intensive data indexing."

The workload: N load balancers, each with one VIP and B backends,
spread over S logical switches.  Phase 1 (cold start) presents the
whole configuration at once; phase 2 deletes the load balancers one by
one.  The controller must derive per-switch NAT/forwarding entries:
each (load balancer, backend, switch) triple produces one entry, so the
derived state is large relative to the input — exactly what makes
indexing expensive for an automatically incremental engine.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple


class LoadBalancerWorkload:
    """Deterministic generator for the cold-start-then-delete benchmark."""

    def __init__(
        self,
        n_lbs: int = 20,
        backends_per_lb: int = 50,
        n_switches: int = 10,
        seed: int = 0,
    ):
        self.n_lbs = n_lbs
        self.backends_per_lb = backends_per_lb
        self.n_switches = n_switches
        rng = random.Random(seed)
        # lb id -> (vip, [backend ips])
        self.lbs: Dict[int, Tuple[int, List[int]]] = {}
        for lb in range(n_lbs):
            vip = 0x0A000000 + lb  # 10.0.x.x block
            backends = [
                0x0B000000 + lb * backends_per_lb + i
                for i in range(backends_per_lb)
            ]
            rng.shuffle(backends)
            self.lbs[lb] = (vip, backends)
        # Every LB is attached to every switch (OVN's pathological case).
        self.switches = list(range(n_switches))

    def cold_start_rows(self):
        """(lb, vip, backend) rows plus (lb, switch) attachment rows."""
        vip_backends = []
        attachments = []
        for lb, (vip, backends) in self.lbs.items():
            for backend in backends:
                vip_backends.append((lb, vip, backend))
            for switch in self.switches:
                attachments.append((lb, switch))
        return vip_backends, attachments

    def deletion_batches(self):
        """Yield per-LB deletion batches, in order (the benchmark's
        phase 2 deletes each load balancer in its own transaction)."""
        for lb, (vip, backends) in self.lbs.items():
            vip_backends = [(lb, vip, backend) for backend in backends]
            attachments = [(lb, switch) for switch in self.switches]
            yield lb, vip_backends, attachments

    @property
    def derived_entries(self) -> int:
        """Size of the fully derived state (entries per switch per backend)."""
        return self.n_lbs * self.backends_per_lb * self.n_switches


# The dlog control program for this workload, shared by the benchmark
# and the tests.  Each attached (lb, switch) pair expands every backend
# into a per-switch NAT entry.
LB_DLOG_PROGRAM = """
input relation LbVip(lb: bigint, vip: bigint, backend: bigint)
input relation LbSwitch(lb: bigint, switch: bigint)
output relation NatEntry(switch: bigint, vip: bigint, backend: bigint)

NatEntry(sw, vip, backend) :- LbSwitch(lb, sw), LbVip(lb, vip, backend).
"""
