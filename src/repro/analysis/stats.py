"""Tiny statistics helpers used by the benchmark harnesses."""

from __future__ import annotations

import math
from typing import List, Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile; ``pct`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    ordered: List[float] = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    lo_v, hi_v = ordered[low], ordered[high]
    if lo_v == hi_v:
        return lo_v
    value = lo_v * (1 - frac) + hi_v * frac
    # Interpolation through denormals can underflow below the bracket
    # (5e-324 * 0.5 rounds to 0.0); the true percentile always lies in
    # [lo_v, hi_v], so clamp.
    return min(max(value, lo_v), hi_v)
