"""Analysis helpers: LoC accounting and simple statistics."""

from repro.analysis.loc import count_loc
from repro.analysis.stats import mean, percentile, stdev

__all__ = ["count_loc", "mean", "percentile", "stdev"]
