"""Lines-of-code counting for the §4.3 accounting.

"While imperfect, lines of code (LOC) help quantify the maintenance
challenges for developers" — we reproduce the paper's measurement:
non-blank, non-comment source lines, per artifact kind.
"""

from __future__ import annotations

LINE_COMMENT = {
    "dlog": "//",
    "p4": "//",
    "python": "#",
    "json": None,
}


def count_loc(text: str, kind: str = "python") -> int:
    """Count non-blank, non-comment lines of ``text``.

    Handles ``/* ... */`` block comments for dlog/p4 and does not try to
    be clever about comment markers inside string literals (neither did
    the paper).
    """
    marker = LINE_COMMENT.get(kind, "#")
    count = 0
    in_block = False
    for raw in text.splitlines():
        line = raw.strip()
        if in_block:
            if "*/" in line:
                in_block = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if kind in ("dlog", "p4") and line.startswith("/*"):
            if "*/" not in line:
                in_block = True
                continue
            line = line.split("*/", 1)[1].strip()
        if not line:
            continue
        if marker is not None and line.startswith(marker):
            continue
        count += 1
    return count


def count_file_loc(path: str, kind: str = "python") -> int:
    with open(path, encoding="utf-8") as f:
        return count_loc(f.read(), kind)
