"""repro.obs — cross-plane observability.

One module-level switch gates everything: metrics and tracing are
**disabled by default** and every instrumentation site in the stack
checks :func:`enabled` (one global read) before doing any work, so the
disabled path costs essentially nothing.  When enabled:

* :data:`REGISTRY` collects counters/gauges/histograms from all planes;
* :data:`TRACER` collects causal spans keyed by the per-transaction
  update-id minted at the management-plane transact (see
  :mod:`repro.obs.trace` for how the id propagates).

Two tiers.  ``enable()`` turns on the always-affordable tier — spans
with per-stage durations plus all counters/histograms — which is cheap
enough to leave on in production (<10% added latency even on the
microsecond-scale transactions of the E2 benchmark).
``enable(detail=True)`` additionally times every dataflow operator
inside each engine transaction (per-operator tuple counts, per-stratum
seconds).  That per-node bookkeeping is worth roughly the cost of the
transaction itself on tiny incremental updates, so detail is a
diagnosis mode, not a default.

Typical use::

    from repro import obs

    obs.enable()          # or obs.enable(detail=True) to profile operators
    ...  # drive the stack
    uid = obs.TRACER.latest_update_id(name="mgmt.transact")
    print(obs.TRACER.render(uid))
    print(obs.REGISTRY.to_text())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current_update_id,
    mint_update_id,
    use_update_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "REGISTRY",
    "TRACER",
    "enable",
    "disable",
    "enabled",
    "detail_enabled",
    "enabled_scope",
    "reset",
    "span",
    "mint_update_id",
    "current_update_id",
    "use_update_id",
    "export_json",
    "export_text",
]

REGISTRY = MetricsRegistry()
TRACER = Tracer()

_enabled = False
_detail = False


def enabled() -> bool:
    return _enabled


def detail_enabled() -> bool:
    """Whether per-operator dataflow profiling is on (implies enabled)."""
    return _detail


def enable(detail: bool = False) -> None:
    global _enabled, _detail
    _enabled = True
    _detail = detail


def disable() -> None:
    global _enabled, _detail
    _enabled = False
    _detail = False


def reset() -> None:
    """Clear all collected metrics and spans (the switches are untouched)."""
    REGISTRY.reset()
    TRACER.reset()


@contextmanager
def enabled_scope(detail: bool = False):
    """Enable observability for the duration of a ``with`` block."""
    global _enabled, _detail
    previous = (_enabled, _detail)
    _enabled = True
    _detail = detail
    try:
        yield
    finally:
        _enabled, _detail = previous


def span(name: str, update_id: Optional[str] = None, **attrs):
    """Open a trace span, or a shared no-op span when disabled."""
    if not _enabled:
        return NULL_SPAN
    return TRACER.span(name, update_id=update_id, **attrs)


def export_json(indent: Optional[int] = 2) -> str:
    return REGISTRY.to_json(indent=indent)


def export_text() -> str:
    return REGISTRY.to_text()
