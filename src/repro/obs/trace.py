"""Causal trace spans keyed by a per-transaction update-id.

A management-plane transact mints an **update-id** (``upd-000042``);
the id rides a :class:`contextvars.ContextVar` through the controller
sync path, the engine's delta evaluation, and the resulting device
writes, and is stamped onto digest feedback — so one id names a config
change end-to-end across planes and threads (each plane sets the
contextvar around the callbacks it invokes, which is what carries the
id across thread hops and socket hops without changing any callback
signature).

Spans nest via a second contextvar holding the current span, so a
``device.write`` opened while ``controller.sync`` is active records it
as its parent.  The tracer keeps a bounded ring of finished spans;
:meth:`Tracer.render` pretty-prints one update-id's tree with
per-stage durations.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from contextvars import ContextVar
from typing import Deque, Dict, List, Optional

_update_counter = itertools.count(1)

_current_update: ContextVar[Optional[str]] = ContextVar(
    "repro_obs_update_id", default=None
)


def mint_update_id() -> str:
    """Return a fresh process-unique update-id.

    ``itertools.count`` advances atomically under the GIL, so minting
    needs no lock.
    """
    return f"upd-{next(_update_counter):06d}"


def current_update_id() -> Optional[str]:
    return _current_update.get()


class _UpdateIdScope:
    __slots__ = ("uid", "_token")

    def __init__(self, uid: Optional[str]) -> None:
        self.uid = uid

    def __enter__(self) -> Optional[str]:
        self._token = _current_update.set(self.uid)
        return self.uid

    def __exit__(self, *exc) -> bool:
        _current_update.reset(self._token)
        return False


def use_update_id(uid: Optional[str]) -> _UpdateIdScope:
    """Context manager binding ``uid`` as the current update-id."""
    return _UpdateIdScope(uid)


class Span:
    """A finished or in-flight trace span.

    Spans are their own context managers (no separate scope object —
    one allocation per span matters at engine-transaction frequency):
    ``__enter__`` resolves the parent and update-id from the tracer's
    contextvars, ``__exit__`` records the duration and appends the span
    to the tracer's ring.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "update_id",
        "start",
        "duration",
        "_attrs",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        update_id: Optional[str],
        attrs: Optional[dict],
        tracer: "Tracer",
    ) -> None:
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.name = name
        self.update_id = update_id
        self.start = 0.0
        self.duration = 0.0
        self._attrs = attrs
        self._tracer = tracer

    @property
    def attrs(self) -> dict:
        if self._attrs is None:
            self._attrs = {}
        return self._attrs

    def set(self, **attrs) -> None:
        # Take ownership of the kwargs dict on first use — spans are
        # opened on every engine transaction, so one avoided dict per
        # span is measurable on microsecond-scale workloads.
        if self._attrs is None:
            self._attrs = attrs
        else:
            self._attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        parent = tracer._current.get()
        if parent is not None:
            self.parent_id = parent.span_id
        if self.update_id is None:
            # Inherit from the enclosing span first, then from the
            # cross-thread contextvar set by the plane that called us.
            if parent is not None and parent.update_id is not None:
                self.update_id = parent.update_id
            else:
                self.update_id = _current_update.get()
        self._token = tracer._current.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        tracer = self._tracer
        tracer._current.reset(self._token)
        self._token = None  # tokens chain to prior spans; don't pin them
        tracer._record(self)
        return False

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "update_id": self.update_id,
            "duration": self.duration,
            "attrs": self._attrs or {},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, update_id={self.update_id!r}, "
            f"duration={self.duration * 1e3:.3f}ms)"
        )


class _NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class _AdoptScope:
    """Make a span opened on another thread the current parent here.

    The staged pipeline hops threads between stages (transact thread →
    engine thread → device writer threads); contextvars don't follow,
    so each stage re-adopts the span its work should nest under.  The
    adopted span is *not* re-recorded on exit — it was (or will be)
    recorded by the thread that opened it.  ``adopt(None)`` explicitly
    clears any inherited parent.
    """

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Optional[Span]:
        self._token = self._tracer._current.set(self._span)
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer._current.reset(self._token)
        return False


class Tracer:
    """Bounded ring buffer of finished spans."""

    def __init__(self, capacity: int = 4096) -> None:
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._current: ContextVar[Optional[Span]] = ContextVar(
            "repro_obs_span", default=None
        )

    def span(
        self, name: str, update_id: Optional[str] = None, **attrs
    ) -> Span:
        return Span(next(self._ids), name, update_id, attrs or None, self)

    def active(self) -> Optional[Span]:
        """The span currently open on this context, if any."""
        return self._current.get()

    def adopt(self, span: Optional[Span]) -> _AdoptScope:
        """Context manager parenting subsequent spans under ``span``
        (opened on another thread) without re-recording it."""
        return _AdoptScope(self, span)

    def _record(self, span: Span) -> None:
        # deque.append is atomic under the GIL — the recording hot path
        # takes no lock; readers retry the (rare) mutated-mid-copy case.
        self._spans.append(span)

    def spans(self, update_id: Optional[str] = None) -> List[Span]:
        while True:
            try:
                spans = list(self._spans)
                break
            except RuntimeError:  # ring mutated during the copy
                continue
        if update_id is None:
            return spans
        return [s for s in spans if s.update_id == update_id]

    def update_ids(self) -> List[str]:
        """Update-ids in order of first appearance."""
        seen: Dict[str, None] = {}
        for span in self.spans():
            if span.update_id is not None:
                seen.setdefault(span.update_id, None)
        return list(seen)

    def latest_update_id(self, name: Optional[str] = None) -> Optional[str]:
        for span in reversed(self.spans()):
            if span.update_id is None:
                continue
            if name is None or span.name == name:
                return span.update_id
        return None

    def to_json(
        self, update_id: Optional[str] = None, indent: Optional[int] = None
    ) -> str:
        return json.dumps(
            [s.to_dict() for s in self.spans(update_id)],
            indent=indent,
            sort_keys=True,
        )

    def render(self, update_id: str) -> str:
        """Pretty-print one update-id's span tree with durations."""
        spans = self.spans(update_id)
        if not spans:
            return f"(no spans for {update_id})"
        by_parent: Dict[Optional[int], List[Span]] = {}
        ids = {s.span_id for s in spans}
        for span in spans:
            parent = span.parent_id if span.parent_id in ids else None
            by_parent.setdefault(parent, []).append(span)
        lines = [f"trace {update_id}"]

        def walk(parent: Optional[int], depth: int) -> None:
            for span in sorted(
                by_parent.get(parent, []), key=lambda s: s.start
            ):
                attrs = " ".join(
                    f"{k}={v}" for k, v in sorted((span._attrs or {}).items())
                )
                pad = "  " * depth
                lines.append(
                    f"{pad}- {span.name} "
                    f"[{span.duration * 1e3:.3f} ms]"
                    + (f" {attrs}" if attrs else "")
                )
                walk(span.span_id, depth + 1)

        walk(None, 1)
        return "\n".join(lines)

    def reset(self) -> None:
        self._spans.clear()
