"""Process-wide metrics primitives: counters, gauges, histograms.

The registry is deliberately small and dependency-free.  All metric
types are thread-safe; counters reject negative increments so a reader
can rely on monotonicity.  Histograms keep exact count/sum/min/max plus
a bounded reservoir of recent samples from which percentile summaries
are computed (via :func:`repro.analysis.stats.percentile`), so memory
stays O(window) no matter how long the process runs.

Exporters:

* :meth:`MetricsRegistry.snapshot` — plain nested dict;
* :meth:`MetricsRegistry.to_json` — the snapshot as JSON;
* :meth:`MetricsRegistry.to_text` — a Prometheus-style text page
  (``name{label="value"} 12``).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.analysis.stats import percentile

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, str]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(key: LabelKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically non-decreasing integer metric."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A metric that can move in both directions."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Exact count/sum/min/max plus a bounded sample reservoir.

    Percentiles are computed over the most recent ``window`` samples;
    count/sum/min/max cover every observation ever made.
    """

    __slots__ = ("_lock", "count", "total", "min", "max", "_window")

    def __init__(self, window: int = 1024) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._window: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._window.append(value)

    def summary(self) -> dict:
        with self._lock:
            samples = list(self._window)
            count, total = self.count, self.total
            lo, hi = self.min, self.max
        out = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": lo,
            "max": hi,
        }
        if samples:
            for pct in (50, 90, 99):
                out[f"p{pct}"] = percentile(samples, pct)
        return out


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics.

    ``generation`` increments on every :meth:`reset`; hot callers may
    cache metric handles keyed on it instead of re-resolving name +
    labels per event (see ``Runtime._apply``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[LabelKey, object] = {}
        self.generation = 0

    def _get(self, cls, name: str, labels: Dict[str, str], **kwargs):
        key = (name, ()) if not labels else _key(name, labels)
        # Lock-free fast path: dict reads are atomic under the GIL, and
        # an existing entry is never replaced, so a hit needs no lock.
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(**kwargs)
                    self._metrics[key] = metric
        if type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, window: int = 1024, **labels: str
    ) -> Histogram:
        return self._get(Histogram, name, labels, window=window)

    def _items(self) -> List[Tuple[LabelKey, object]]:
        with self._lock:
            return sorted(self._metrics.items())

    def snapshot(self) -> dict:
        out: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for key, metric in self._items():
            rendered = _render_key(key)
            if isinstance(metric, Counter):
                out["counters"][rendered] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][rendered] = metric.value
            elif isinstance(metric, Histogram):
                out["histograms"][rendered] = metric.summary()
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        lines: List[str] = []
        for key, metric in self._items():
            rendered = _render_key(key)
            if isinstance(metric, Counter):
                lines.append(f"{rendered} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"{rendered} {metric.value}")
            elif isinstance(metric, Histogram):
                summary = metric.summary()
                name, labels = key
                for field in ("count", "sum", "p50", "p90", "p99"):
                    if field not in summary:
                        continue
                    lines.append(
                        f"{_render_key((f'{name}_{field}', labels))} "
                        f"{summary[field]}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self.generation += 1
