"""Reproduction of "Full-Stack SDN" (Nerpa), HotNets 2022.

Nerpa is a unified environment for programming all three planes of a
software-defined network:

* the **management plane** is a transactional, monitorable database
  (:mod:`repro.mgmt`, an OVSDB analog);
* the **control plane** is a typed, automatically incremental Datalog
  program (:mod:`repro.dlog`, a DDlog analog);
* the **data plane** is a P4-subset program executed by a behavioral
  simulator (:mod:`repro.p4`), driven through a P4Runtime-style API
  (:mod:`repro.p4runtime`).

:mod:`repro.core` ties the planes together: it generates the control
plane's input/output relation declarations from the management schema
and the data-plane program, typechecks the whole stack as one unit, and
runs the state-synchronization controller.

Quickstart::

    from repro.core import nerpa_build, NerpaController

    project = nerpa_build(ovsdb_schema=..., dlog_source=..., p4_source=...)
    controller = NerpaController(project)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
