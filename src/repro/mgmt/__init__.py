"""The management plane: an OVSDB-style transactional database.

The paper's management plane is OVSDB (RFC 7047): a schema'd database
whose defining feature for Nerpa is *monitorability* — a client can
subscribe and receive the database's ongoing series of changes, grouped
into transactions.  This package reproduces that contract:

* :mod:`repro.mgmt.schema` — database schemas (tables, typed columns,
  optional/set/map columns) with RFC-style JSON round-tripping;
* :mod:`repro.mgmt.database` — the row store with atomic multi-operation
  transactions;
* :mod:`repro.mgmt.transact` — the operation set (insert, select,
  update, mutate, delete, wait, abort);
* :mod:`repro.mgmt.monitor` — monitors delivering an initial snapshot
  followed by per-transaction update batches;
* :mod:`repro.mgmt.jsonrpc`, :mod:`repro.mgmt.server`,
  :mod:`repro.mgmt.client` — a length-prefixed JSON-RPC transport over
  asyncio TCP, plus an in-process loopback for tests and benchmarks;
* :mod:`repro.mgmt.persist` — snapshot/journal persistence.
"""

from repro.mgmt.schema import ColumnSchema, ColumnType, DatabaseSchema, TableSchema
from repro.mgmt.database import Database, Row
from repro.mgmt.monitor import Monitor, MonitorSpec, RowUpdate, TableUpdates

__all__ = [
    "ColumnSchema",
    "ColumnType",
    "Database",
    "DatabaseSchema",
    "Monitor",
    "MonitorSpec",
    "Row",
    "RowUpdate",
    "TableSchema",
    "TableUpdates",
]
