"""Blocking client for the management protocol.

Transport (sockets, reader thread, reconnection) is delegated to a
:class:`~repro.net.resilient.ResilientConnection`; this layer keeps
only protocol knowledge: monitor bookkeeping, schema caching, and
decoding wire rows into :class:`~repro.mgmt.monitor.TableUpdates`.

When the underlying connection is lost and re-established, all monitor
subscriptions are invalid — the server (possibly a fresh process) has
no memory of them.  The client drops its local monitor table and fires
registered ``on_reconnect`` callbacks; the Nerpa controller uses that
hook to re-subscribe and reconcile (see
:meth:`repro.core.controller.NerpaController.health`).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TransactionError
from repro.mgmt.monitor import RowUpdate, TableUpdates
from repro.mgmt.schema import DatabaseSchema
from repro.mgmt.values import row_from_wire
from repro.net.resilient import ResilientConnection
from repro.net.retry import RetryPolicy
from repro.obs.trace import use_update_id

_DEFAULT_TIMEOUT = 30.0


class ManagementClient:
    """Connects to a :class:`~repro.mgmt.server.ManagementServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = _DEFAULT_TIMEOUT,
        connect_timeout: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
    ):
        if policy is None:
            policy = RetryPolicy(
                connect_timeout=(
                    connect_timeout if connect_timeout is not None else 10.0
                ),
                call_timeout=timeout,
            )
        self.timeout = policy.call_timeout
        self._monitor_callbacks: Dict[str, Callable[[TableUpdates], None]] = {}
        # Guards callback registration/dispatch: the server starts
        # streaming a monitor's updates the instant it registers it, so
        # a notification can reach our reader thread before monitor()
        # has seen the response and stored the callback.  Updates for
        # unknown monitor ids are buffered while a subscribe is in
        # flight and replayed on registration — dropping them would
        # lose rows that are in neither the snapshot nor the stream.
        self._dispatch_lock = threading.RLock()
        self._pending_subscribes = 0
        self._undelivered: Dict[str, List[Tuple[dict, Optional[str]]]] = {}
        self._schema: Optional[DatabaseSchema] = None
        self._reconnect_hooks: List[Callable[[], None]] = []
        self.conn = ResilientConnection(
            host,
            port,
            policy=policy,
            name="mgmt-client",
            on_notification=self._handle_notification,
            error_type=TransactionError,
        )
        self.conn.on_reconnect(self._on_transport_reconnect)

    # -- plumbing -----------------------------------------------------------

    def call(self, method: str, params, retryable: bool = False) -> object:
        return self.conn.call(method, params, retryable=retryable)

    def _handle_notification(self, message: dict) -> None:
        if message.get("method") != "update":
            return
        params = message["params"]
        monitor_id, wire_updates = params[0], params[1]
        # A third param (added by obs-enabled servers) is the transact's
        # update-id; rebind it so the monitor callback's downstream work
        # stays in the originating trace.
        uid = params[2] if len(params) > 2 else None
        with self._dispatch_lock:
            callback = self._monitor_callbacks.get(monitor_id)
            if callback is None:
                if self._pending_subscribes:
                    self._undelivered.setdefault(monitor_id, []).append(
                        (wire_updates, uid)
                    )
                return
            self._dispatch(callback, wire_updates, uid)

    def _dispatch(
        self,
        callback: Callable[[TableUpdates], None],
        wire_updates: dict,
        uid: Optional[str],
    ) -> None:
        if uid is not None:
            with use_update_id(uid):
                callback(self._decode_updates(wire_updates))
        else:
            callback(self._decode_updates(wire_updates))

    def _on_transport_reconnect(self) -> None:
        # Server-side monitor state died with the old connection; a
        # restarted server may not even share our schema cache.
        with self._dispatch_lock:
            self._monitor_callbacks.clear()
            self._undelivered.clear()
        for hook in list(self._reconnect_hooks):
            hook()

    def on_reconnect(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after each reconnect (monitors already cleared);
        use it to re-subscribe and reconcile."""
        self._reconnect_hooks.append(hook)

    def health(self) -> Dict[str, object]:
        return self.conn.health()

    # -- API ------------------------------------------------------------------

    def get_schema(self) -> DatabaseSchema:
        if self._schema is None:
            self._schema = DatabaseSchema.from_json(
                self.call("get_schema", [], retryable=True)
            )
        return self._schema

    def echo(self, payload) -> object:
        return self.call("echo", payload, retryable=True)

    def transact(self, operations) -> list:
        return self.call("transact", list(operations))

    def monitor(
        self,
        tables: Dict[str, Optional[list]],
        callback: Callable[[TableUpdates], None],
    ):
        """Subscribe; returns ``(monitor_id, initial TableUpdates)``.

        ``callback`` runs on the connection's dispatcher thread — it may
        call back into this client.  Updates the server streamed between
        registering the monitor and this call returning are replayed to
        ``callback`` (in arrival order) before the snapshot is returned;
        they always post-date it.
        """
        self.get_schema()  # cache now: dispatch must not block on the wire
        with self._dispatch_lock:
            self._pending_subscribes += 1
        try:
            result = self.call("monitor", [tables])
        except BaseException:
            with self._dispatch_lock:
                self._pending_subscribes -= 1
                if not self._pending_subscribes:
                    self._undelivered.clear()
            raise
        monitor_id = result["monitor_id"]
        with self._dispatch_lock:
            self._pending_subscribes -= 1
            self._monitor_callbacks[monitor_id] = callback
            backlog = self._undelivered.pop(monitor_id, ())
            if not self._pending_subscribes:
                self._undelivered.clear()
            for wire_updates, uid in backlog:
                self._dispatch(callback, wire_updates, uid)
        return monitor_id, self._decode_updates(result["initial"])

    def monitor_cancel(self, monitor_id: str) -> None:
        with self._dispatch_lock:
            self._monitor_callbacks.pop(monitor_id, None)
        self.call("monitor_cancel", [monitor_id])

    # -- leases (leader election; see repro.mgmt.lease) ---------------------

    def lease_acquire(
        self,
        name: str,
        owner: str,
        ttl: float,
        now: Optional[float] = None,
        steal: bool = False,
    ) -> Optional[dict]:
        result = self.call("lease_acquire", [name, owner, ttl, now, steal])
        return result["lease"]

    def lease_renew(
        self,
        name: str,
        owner: str,
        epoch: int,
        ttl: float,
        now: Optional[float] = None,
    ) -> bool:
        result = self.call("lease_renew", [name, owner, epoch, ttl, now])
        return bool(result["renewed"])

    def lease_release(self, name: str, owner: str) -> bool:
        result = self.call("lease_release", [name, owner])
        return bool(result["released"])

    def lease_get(self, name: str) -> Optional[dict]:
        result = self.call("lease_get", [name])
        return result["lease"]

    def _decode_updates(self, wire: dict) -> TableUpdates:
        schema = self.get_schema()
        updates = TableUpdates()
        for table, rows in wire.items():
            tschema = schema.table(table)
            for uuid, entry in rows.items():
                old = (
                    row_from_wire(tschema, entry["old"])
                    if "old" in entry
                    else None
                )
                new = (
                    row_from_wire(tschema, entry["new"])
                    if "new" in entry
                    else None
                )
                updates.add(table, uuid, RowUpdate(old, new))
        return updates

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "ManagementClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
