"""Blocking client for the management protocol.

The client owns a reader thread: responses are matched to calls by id
and handed back to the blocked caller; ``update`` notifications are
decoded into :class:`~repro.mgmt.monitor.TableUpdates` and dispatched to
the registered monitor callback.  This keeps consumers (the Nerpa
controller, tests, benchmarks) free of event-loop plumbing.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Dict, Optional

from repro.errors import ProtocolError, TransactionError
from repro.mgmt.jsonrpc import (
    NotificationDispatcher,
    classify,
    make_request,
    recv_message,
    send_message,
)
from repro.mgmt.monitor import RowUpdate, TableUpdates
from repro.mgmt.schema import DatabaseSchema
from repro.mgmt.values import row_from_wire

_DEFAULT_TIMEOUT = 30.0


class _PendingCall:
    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error = None


class ManagementClient:
    """Connects to a :class:`~repro.mgmt.server.ManagementServer`."""

    def __init__(self, host: str, port: int, timeout: float = _DEFAULT_TIMEOUT):
        self.sock = socket.create_connection((host, port), timeout=10.0)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.settimeout(None)
        self.timeout = timeout
        self._send_lock = threading.Lock()
        self._pending: Dict[int, _PendingCall] = {}
        self._pending_lock = threading.Lock()
        self._next_id = 0
        self._monitor_callbacks: Dict[str, Callable[[TableUpdates], None]] = {}
        self._schema: Optional[DatabaseSchema] = None
        self._closed = False
        self._dispatcher = NotificationDispatcher("mgmt-client-dispatch")
        self._reader = threading.Thread(
            target=self._read_loop, name="mgmt-client-reader", daemon=True
        )
        self._reader.start()

    # -- plumbing -----------------------------------------------------------

    def call(self, method: str, params) -> object:
        with self._pending_lock:
            self._next_id += 1
            request_id = self._next_id
            pending = _PendingCall()
            self._pending[request_id] = pending
        with self._send_lock:
            send_message(self.sock, make_request(method, params, request_id))
        if not pending.event.wait(self.timeout):
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise ProtocolError(f"timeout waiting for {method} response")
        if pending.error is not None:
            raise TransactionError(str(pending.error))
        return pending.result

    def _read_loop(self) -> None:
        try:
            while not self._closed:
                message = recv_message(self.sock)
                if message is None:
                    break
                kind = classify(message)
                if kind == "response":
                    with self._pending_lock:
                        pending = self._pending.pop(message["id"], None)
                    if pending is not None:
                        pending.result = message.get("result")
                        pending.error = message.get("error")
                        pending.event.set()
                elif kind == "notification":
                    self._handle_notification(message)
        except (ProtocolError, OSError):
            pass
        finally:
            self._fail_all_pending()

    def _fail_all_pending(self) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for p in pending:
            p.error = "connection closed"
            p.event.set()

    def _handle_notification(self, message: dict) -> None:
        if message.get("method") != "update":
            return
        monitor_id, wire_updates = message["params"]
        callback = self._monitor_callbacks.get(monitor_id)
        if callback is not None:
            # Decode on the reader thread (cheap, keeps ordering), run
            # the callback on the dispatcher so it may call back into
            # this client without deadlocking.
            updates = self._decode_updates(wire_updates)
            self._dispatcher.submit(callback, updates)

    # -- API ------------------------------------------------------------------

    def get_schema(self) -> DatabaseSchema:
        if self._schema is None:
            self._schema = DatabaseSchema.from_json(
                self.call("get_schema", [])
            )
        return self._schema

    def echo(self, payload) -> object:
        return self.call("echo", payload)

    def transact(self, operations) -> list:
        return self.call("transact", list(operations))

    def monitor(
        self,
        tables: Dict[str, Optional[list]],
        callback: Callable[[TableUpdates], None],
    ):
        """Subscribe; returns ``(monitor_id, initial TableUpdates)``.

        ``callback`` runs on the reader thread — keep it quick (the
        Nerpa controller just enqueues).
        """
        result = self.call("monitor", [tables])
        monitor_id = result["monitor_id"]
        self._monitor_callbacks[monitor_id] = callback
        return monitor_id, self._decode_updates(result["initial"])

    def monitor_cancel(self, monitor_id: str) -> None:
        self._monitor_callbacks.pop(monitor_id, None)
        self.call("monitor_cancel", [monitor_id])

    def _decode_updates(self, wire: dict) -> TableUpdates:
        schema = self.get_schema()
        updates = TableUpdates()
        for table, rows in wire.items():
            tschema = schema.table(table)
            for uuid, entry in rows.items():
                old = (
                    row_from_wire(tschema, entry["old"])
                    if "old" in entry
                    else None
                )
                new = (
                    row_from_wire(tschema, entry["new"])
                    if "new" in entry
                    else None
                )
                updates.add(table, uuid, RowUpdate(old, new))
        return updates

    def close(self) -> None:
        self._closed = True
        self._dispatcher.close()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ManagementClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
