"""Leased leadership on top of the management plane's own machinery.

Controller HA needs exactly one writer, elected and fenced.  Rather
than a bespoke consensus protocol, the lease is a **row in a reserved
table** (``_Lease``) driven through the ordinary
:meth:`~repro.mgmt.database.Database.transact` operation set — the
acquire is an atomic CAS (``mutate``+``update`` guarded by a
``where`` on the expiry), renewal is a guarded ``update``, and other
controllers watch the table with a plain monitor.  The semantics
mirror RFC 7047's ``lock``/``steal``/``unlock`` methods:

* **acquire** succeeds only when the lease is absent or expired
  (``steal=True`` ignores the expiry) and always increments the
  **fencing epoch** — a monotonic integer every acquisition bumps,
  never reset, so any two leaderships are totally ordered;
* **renew** extends the expiry only while ``(owner, epoch)`` still
  match — a deposed leader's heartbeat fails instead of resurrecting
  its lease;
* **release** zeroes the expiry (graceful handoff: the next acquire
  need not wait out the TTL) but keeps the row, because the epoch
  must survive every change of leadership.

:func:`fence_ops` turns the same ``(owner, epoch)`` pair into a
``wait`` guard a leader prepends to its management transactions:
the commit aborts atomically unless the leader still holds the lease
at its epoch — mgmt-plane write fencing with zero new machinery.

Timestamps are caller-supplied wall-clock seconds (``now``), so tests
can drive expiry deterministically with a fake clock.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from repro.errors import TransactionError
from repro.mgmt.schema import ColumnSchema, ColumnType, DatabaseSchema, TableSchema

#: The reserved lease table every :class:`~repro.mgmt.database.Database`
#: carries (injected by :func:`ensure_lease_table`).
LEASE_TABLE = "_Lease"


def lease_table_schema() -> TableSchema:
    return TableSchema(
        LEASE_TABLE,
        [
            ColumnSchema("name", ColumnType("string")),
            ColumnSchema("owner", ColumnType("string")),
            ColumnSchema("epoch", ColumnType("integer")),
            ColumnSchema("expires", ColumnType("real")),
        ],
        indexes=[("name",)],
    )


def ensure_lease_table(schema: DatabaseSchema) -> bool:
    """Add the reserved lease table to ``schema`` (idempotent).

    Returns True when the table was added.  The table rides the
    schema's JSON round trip, so remote clients learn it from
    ``get_schema`` like any application table.
    """
    if LEASE_TABLE in schema.tables:
        return False
    schema.tables[LEASE_TABLE] = lease_table_schema()
    return True


def fence_ops(name: str, owner: str, epoch: int) -> List[dict]:
    """A ``wait`` guard asserting ``owner`` still holds lease ``name``
    at fencing epoch ``epoch``.  Prepend to a leader's transact op list:
    the whole transaction aborts (nothing commits) once the leader is
    deposed — the mgmt-plane half of end-to-end write fencing."""
    return [
        {
            "op": "wait",
            "table": LEASE_TABLE,
            "where": [["name", "==", name]],
            "columns": ["owner", "epoch"],
            "until": "==",
            "rows": [{"owner": owner, "epoch": epoch}],
        }
    ]


def _select_op(name: str) -> dict:
    return {
        "op": "select",
        "table": LEASE_TABLE,
        "where": [["name", "==", name]],
    }


def _row_to_lease(row: dict) -> dict:
    return {
        "name": row["name"],
        "owner": row["owner"],
        "epoch": int(row["epoch"]),
        "expires": float(row["expires"]),
    }


def acquire(
    transact: Callable[[Sequence[dict]], list],
    name: str,
    owner: str,
    ttl: float,
    now: Optional[float] = None,
    steal: bool = False,
) -> Optional[dict]:
    """Try to take lease ``name`` for ``owner``; the lease row (with
    its freshly incremented fencing epoch) on success, ``None`` when it
    is held by a live leader (or an acquire race was lost — retry on
    the next poll)."""
    if now is None:
        now = time.time()
    cas_where = [["name", "==", name]]
    if not steal:
        cas_where = cas_where + [["expires", "<=", now]]
    try:
        results = transact(
            [
                {
                    "op": "mutate",
                    "table": LEASE_TABLE,
                    "where": cas_where,
                    "mutations": [["epoch", "+=", 1]],
                },
                {
                    "op": "update",
                    "table": LEASE_TABLE,
                    "where": cas_where,
                    "row": {"owner": owner, "expires": now + ttl},
                },
                _select_op(name),
            ]
        )
    except TransactionError:
        return None
    rows = results[2].get("rows", [])
    if results[0].get("count", 0) and results[1].get("count", 0):
        return _row_to_lease(rows[0])
    if rows:
        return None  # held by a live leader
    # No lease row yet: first acquisition races through the unique
    # index on ``name`` — exactly one inserter wins, the rest see a
    # TransactionError and retry via the CAS path next poll.
    try:
        results = transact(
            [
                {
                    "op": "insert",
                    "table": LEASE_TABLE,
                    "row": {
                        "name": name,
                        "owner": owner,
                        "epoch": 1,
                        "expires": now + ttl,
                    },
                },
                _select_op(name),
            ]
        )
    except TransactionError:
        return None
    return _row_to_lease(results[1]["rows"][0])


def renew(
    transact: Callable[[Sequence[dict]], list],
    name: str,
    owner: str,
    epoch: int,
    ttl: float,
    now: Optional[float] = None,
) -> bool:
    """Heartbeat: extend the expiry while ``(owner, epoch)`` still hold
    the lease.  False means the lease was lost — the caller must stop
    acting as leader immediately."""
    if now is None:
        now = time.time()
    try:
        results = transact(
            [
                {
                    "op": "update",
                    "table": LEASE_TABLE,
                    "where": [
                        ["name", "==", name],
                        ["owner", "==", owner],
                        ["epoch", "==", epoch],
                    ],
                    "row": {"expires": now + ttl},
                }
            ]
        )
    except TransactionError:
        return False
    return bool(results[0].get("count", 0))


def release(
    transact: Callable[[Sequence[dict]], list],
    name: str,
    owner: str,
) -> bool:
    """Graceful handoff: expire the lease immediately so a standby can
    acquire without waiting out the TTL.  The row (and its epoch)
    stays — fencing epochs must be monotonic across leaderships."""
    try:
        results = transact(
            [
                {
                    "op": "update",
                    "table": LEASE_TABLE,
                    "where": [["name", "==", name], ["owner", "==", owner]],
                    "row": {"expires": 0.0},
                }
            ]
        )
    except TransactionError:
        return False
    return bool(results[0].get("count", 0))


def peek(
    transact: Callable[[Sequence[dict]], list], name: str
) -> Optional[dict]:
    """The current lease row, without touching it."""
    results = transact([_select_op(name)])
    rows = results[0].get("rows", [])
    return _row_to_lease(rows[0]) if rows else None
