"""Snapshot + journal persistence for the management database.

The management plane is "an API backed by a reliable database"; this
module supplies the durable half: a JSON snapshot of the full contents
plus an append-only journal of committed transactions.  ``restore``
replays snapshot + journal; ``compact`` folds the journal back into the
snapshot.

The journal format reuses the wire encoding of monitor updates, so a
journal is literally a recorded monitor stream — the same bytes a
controller would have consumed live.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.errors import SchemaError
from repro.mgmt.database import Database
from repro.mgmt.monitor import MonitorSpec, TableUpdates
from repro.mgmt.schema import DatabaseSchema
from repro.mgmt.values import row_from_wire, row_to_wire


class Persister:
    """Attach to a database; every committed transaction is journaled."""

    def __init__(self, db: Database, directory: str):
        self.db = db
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._journal_path = os.path.join(directory, "journal.ndjson")
        self._snapshot_path = os.path.join(directory, "snapshot.json")
        # A crash mid-append leaves a torn final line.  ``restore``
        # stops replaying at the first undecodable line — sound only
        # while the torn line is the *last* line.  Appending new records
        # after a torn tail would break that invariant (every
        # post-restart commit silently dropped on the next restore), so
        # the tail is truncated away before the journal reopens.
        self.repaired_bytes = _repair_journal(self._journal_path)
        self._journal = open(self._journal_path, "a", encoding="utf-8")
        self._monitor, _ = db.add_monitor(
            MonitorSpec.all_tables(db.schema), self._append
        )

    def _append(self, updates: TableUpdates) -> None:
        record = {}
        for table, rows in updates:
            tschema = self.db.schema.table(table)
            tout = record.setdefault(table, {})
            for uuid, update in rows.items():
                entry = {}
                if update.old is not None:
                    entry["old"] = row_to_wire(tschema, update.old)
                if update.new is not None:
                    entry["new"] = row_to_wire(tschema, update.new)
                tout[uuid] = entry
        self._journal.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._journal.flush()

    def snapshot(self) -> None:
        """Write a full snapshot (does not truncate the journal).

        The whole snapshot is built under the database's commit lock so
        it is one consistent cut, not a per-table sequence of reads; the
        temp file is fsynced before the rename so a crash mid-snapshot
        can never leave a torn (or silently empty) snapshot file.
        """
        with self.db._lock:
            data = {
                "schema": self.db.schema.to_json(),
                "tables": {
                    table: {
                        row.uuid: row_to_wire(
                            self.db.schema.table(table), row.values
                        )
                        for row in self.db.rows(table)
                    }
                    for table in self.db.tables()
                },
            }
        tmp = self._snapshot_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(data, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self._snapshot_path)

    def compact(self) -> None:
        """Snapshot and truncate the journal, atomically with respect to
        commits.

        Both database locks are held across snapshot + truncation, in
        the same order ``transact`` acquires them (commit lock, then
        notify lock).  A transaction therefore either commits *and*
        notifies before the snapshot cut — it is in the snapshot and its
        journal entry is dropped with the rest — or it does both after
        the new journal is open and lands there.  Without this, a commit
        between the snapshot write and the journal reopen was lost: too
        late for the snapshot, erased by the truncation.
        """
        with self.db._lock:
            with self.db._notify_lock:
                self.snapshot()
                self._journal.close()
                self._journal = open(
                    self._journal_path, "w", encoding="utf-8"
                )

    def close(self) -> None:
        self.db.remove_monitor(self._monitor)
        self._journal.close()


def _repair_journal(path: str) -> int:
    """Truncate a torn journal tail; return the bytes dropped.

    Scans forward keeping the offset after the last well-formed line (a
    newline-terminated JSON record, or a blank line — ``restore`` skips
    those); everything past it is a partial write from a crash.  The
    truncation is fsynced so the repair itself survives a crash.
    """
    try:
        handle = open(path, "r+", encoding="utf-8")
    except FileNotFoundError:
        return 0
    with handle:
        good = 0
        while True:
            line = handle.readline()
            if not line:
                break
            stripped = line.strip()
            if stripped:
                if not line.endswith("\n"):
                    break  # unterminated final record
                try:
                    json.loads(stripped)
                except json.JSONDecodeError:
                    break
            good = handle.tell()
        end = handle.seek(0, os.SEEK_END)
        dropped = end - good
        if dropped:
            handle.truncate(good)
            handle.flush()
            os.fsync(handle.fileno())
        return dropped


def restore(directory: str, schema: Optional[DatabaseSchema] = None) -> Database:
    """Rebuild a database from snapshot + journal in ``directory``."""
    snapshot_path = os.path.join(directory, "snapshot.json")
    journal_path = os.path.join(directory, "journal.ndjson")

    if os.path.exists(snapshot_path):
        with open(snapshot_path, encoding="utf-8") as f:
            data = json.load(f)
        schema = DatabaseSchema.from_json(data["schema"])
        db = Database(schema)
        for table, rows in data["tables"].items():
            tschema = schema.table(table)
            for uuid, wire_row in rows.items():
                db._tables[table][uuid] = row_from_wire(tschema, wire_row)
    elif schema is not None:
        db = Database(schema)
    else:
        raise SchemaError(
            f"no snapshot in {directory!r} and no schema provided"
        )

    if os.path.exists(journal_path):
        with open(journal_path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves a torn final line; every
                    # complete record before it is still good.  Nothing
                    # can follow a torn write, so stop replaying here.
                    break
                for table, rows in record.items():
                    tschema = db.schema.table(table)
                    store = db._tables[table]
                    for uuid, entry in rows.items():
                        if "new" not in entry:
                            store.pop(uuid, None)
                        else:
                            merged = dict(store.get(uuid, {}))
                            merged.update(
                                row_from_wire(tschema, entry["new"])
                            )
                            store[uuid] = merged
    return db
