"""Monitors: the change-streaming half of the management plane.

A monitor subscribes to a set of tables (optionally restricted to
columns).  It receives one :class:`TableUpdates` for the initial
database contents and then one per committed transaction, mirroring
OVSDB's ``monitor`` / ``update`` flow — the mechanism the Nerpa
controller uses to learn about configuration changes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence


class RowUpdate:
    """The change to one row.

    * insert: ``old is None``, ``new`` is the full row;
    * delete: ``old`` is the full prior row, ``new is None``;
    * modify: ``old`` holds the prior values of changed columns only,
      ``new`` the full new row.
    """

    __slots__ = ("old", "new")

    def __init__(self, old: Optional[dict], new: Optional[dict]):
        self.old = old
        self.new = new

    @property
    def kind(self) -> str:
        if self.old is None:
            return "insert"
        if self.new is None:
            return "delete"
        return "modify"

    def __repr__(self):
        return f"RowUpdate({self.kind})"


class TableUpdates:
    """Per-transaction updates: ``table -> row uuid -> RowUpdate``."""

    def __init__(self, updates: Optional[Dict[str, Dict[str, RowUpdate]]] = None):
        self.updates: Dict[str, Dict[str, RowUpdate]] = updates or {}

    def table(self, name: str) -> Dict[str, RowUpdate]:
        return self.updates.get(name, {})

    def add(self, table: str, uuid: str, update: RowUpdate) -> None:
        self.updates.setdefault(table, {})[uuid] = update

    def __bool__(self):
        return any(self.updates.values())

    def __iter__(self):
        return iter(self.updates.items())

    def __repr__(self):
        counts = {t: len(rows) for t, rows in self.updates.items()}
        return f"TableUpdates({counts})"


class MonitorSpec:
    """What a monitor watches: ``{table: columns or None (= all)}``."""

    def __init__(self, tables: Dict[str, Optional[Sequence[str]]]):
        self.tables = {
            name: (list(cols) if cols is not None else None)
            for name, cols in tables.items()
        }

    @classmethod
    def all_tables(cls, schema) -> "MonitorSpec":
        return cls({name: None for name in schema.tables})

    def watches(self, table: str) -> bool:
        return table in self.tables

    def project(self, table: str, row: dict) -> dict:
        cols = self.tables.get(table)
        if cols is None:
            return dict(row)
        return {c: row[c] for c in cols if c in row}


class Monitor:
    """A registered subscription; the database invokes :meth:`notify`."""

    _next_id = 0

    def __init__(self, spec: MonitorSpec, callback: Callable[[TableUpdates], None]):
        self.spec = spec
        self.callback = callback
        Monitor._next_id += 1
        self.monitor_id = f"monitor-{Monitor._next_id}"
        self.delivered = 0

    def notify(self, updates: TableUpdates) -> None:
        if updates:
            self.delivered += 1
            self.callback(updates)


def replay(initial: TableUpdates, updates: List[TableUpdates]) -> Dict[str, Dict[str, dict]]:
    """Reconstruct table contents from a monitor stream (test helper).

    Returns ``{table: {uuid: row}}``; used to verify that a monitor's
    update stream is a faithful replica of the database.
    """
    state: Dict[str, Dict[str, dict]] = {}
    for batch in [initial] + updates:
        for table, rows in batch:
            tstate = state.setdefault(table, {})
            for uuid, update in rows.items():
                if update.new is None:
                    tstate.pop(uuid, None)
                else:
                    merged = dict(tstate.get(uuid, {}))
                    merged.update(update.new)
                    tstate[uuid] = merged
    return state
