"""Database schemas for the management plane.

A schema names a database and its tables; each table has typed columns.
Column types follow the OVSDB model (RFC 7047 §3.2): an atomic *key*
type, an optional atomic *value* type (which makes the column a map),
and ``min``/``max`` multiplicity:

* ``min=1, max=1`` — required scalar;
* ``min=0, max=1`` — optional scalar;
* ``max > 1`` or ``"unlimited"`` — a set (or map, with ``value``).

Schemas round-trip to the JSON format used on the wire and on disk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import SchemaError

ATOMIC_TYPES = ("integer", "real", "boolean", "string", "uuid")

UNLIMITED = "unlimited"


class ColumnType:
    """The type of one column: key [value] with multiplicity."""

    __slots__ = ("key", "value", "min", "max")

    def __init__(
        self,
        key: str,
        value: Optional[str] = None,
        min: int = 1,
        max: Union[int, str] = 1,
    ):
        if key not in ATOMIC_TYPES:
            raise SchemaError(f"unknown atomic type {key!r}")
        if value is not None and value not in ATOMIC_TYPES:
            raise SchemaError(f"unknown atomic type {value!r}")
        if min not in (0, 1):
            raise SchemaError(f"column min must be 0 or 1, got {min}")
        if max != UNLIMITED and (not isinstance(max, int) or max < 1):
            raise SchemaError(f"column max must be >= 1 or 'unlimited', got {max}")
        if max != UNLIMITED and isinstance(max, int) and min > max:
            raise SchemaError("column min exceeds max")
        if value is not None and max == 1:
            raise SchemaError("map columns need max > 1")
        self.key = key
        self.value = value
        self.min = min
        self.max = max

    @property
    def is_scalar(self) -> bool:
        return self.max == 1 and self.min == 1

    @property
    def is_optional(self) -> bool:
        return self.max == 1 and self.min == 0

    @property
    def is_set(self) -> bool:
        return self.value is None and (self.max == UNLIMITED or self.max > 1)

    @property
    def is_map(self) -> bool:
        return self.value is not None

    def default(self):
        if self.is_scalar:
            return {"integer": 0, "real": 0.0, "boolean": False, "string": ""}.get(
                self.key
            )
        if self.is_optional:
            return None
        if self.is_map:
            return {}
        return frozenset()

    def to_json(self):
        if self.is_scalar and self.value is None:
            return self.key
        out: Dict[str, object] = {"key": self.key}
        if self.value is not None:
            out["value"] = self.value
        if self.min != 1:
            out["min"] = self.min
        if self.max != 1:
            out["max"] = self.max
        return out

    @classmethod
    def from_json(cls, data) -> "ColumnType":
        if isinstance(data, str):
            return cls(data)
        if not isinstance(data, dict) or "key" not in data:
            raise SchemaError(f"bad column type {data!r}")
        return cls(
            data["key"],
            data.get("value"),
            data.get("min", 1),
            data.get("max", 1),
        )

    def __eq__(self, other):
        return (
            isinstance(other, ColumnType)
            and (self.key, self.value, self.min, self.max)
            == (other.key, other.value, other.min, other.max)
        )

    def __repr__(self):
        return f"ColumnType({self.to_json()!r})"


class ColumnSchema:
    __slots__ = ("name", "type", "mutable")

    def __init__(self, name: str, type: ColumnType, mutable: bool = True):
        if name.startswith("_"):
            raise SchemaError(f"column names may not start with '_': {name!r}")
        self.name = name
        self.type = type
        self.mutable = mutable

    def to_json(self):
        out: Dict[str, object] = {"type": self.type.to_json()}
        if not self.mutable:
            out["mutable"] = False
        return out

    @classmethod
    def from_json(cls, name: str, data) -> "ColumnSchema":
        if not isinstance(data, dict) or "type" not in data:
            raise SchemaError(f"bad column schema for {name!r}")
        return cls(name, ColumnType.from_json(data["type"]), data.get("mutable", True))


class TableSchema:
    def __init__(
        self,
        name: str,
        columns: Sequence[ColumnSchema],
        indexes: Sequence[Sequence[str]] = (),
    ):
        self.name = name
        self.columns: Dict[str, ColumnSchema] = {}
        for col in columns:
            if col.name in self.columns:
                raise SchemaError(f"table {name}: duplicate column {col.name!r}")
            self.columns[col.name] = col
        self.indexes = [tuple(ix) for ix in indexes]
        for index in self.indexes:
            for col in index:
                if col not in self.columns:
                    raise SchemaError(
                        f"table {name}: index references unknown column {col!r}"
                    )

    def column(self, name: str) -> ColumnSchema:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name} has no column {name!r}"
            ) from None

    def column_names(self) -> List[str]:
        return list(self.columns.keys())

    def to_json(self):
        out: Dict[str, object] = {
            "columns": {c.name: c.to_json() for c in self.columns.values()}
        }
        if self.indexes:
            out["indexes"] = [list(ix) for ix in self.indexes]
        return out

    @classmethod
    def from_json(cls, name: str, data) -> "TableSchema":
        if not isinstance(data, dict) or "columns" not in data:
            raise SchemaError(f"bad table schema for {name!r}")
        columns = [
            ColumnSchema.from_json(cname, cdata)
            for cname, cdata in data["columns"].items()
        ]
        return cls(name, columns, data.get("indexes", ()))


class DatabaseSchema:
    def __init__(self, name: str, tables: Sequence[TableSchema], version: str = "1.0.0"):
        self.name = name
        self.version = version
        self.tables: Dict[str, TableSchema] = {}
        for table in tables:
            if table.name in self.tables:
                raise SchemaError(f"duplicate table {table.name!r}")
            self.tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r} in database {self.name}") from None

    def to_json(self):
        return {
            "name": self.name,
            "version": self.version,
            "tables": {t.name: t.to_json() for t in self.tables.values()},
        }

    @classmethod
    def from_json(cls, data) -> "DatabaseSchema":
        if not isinstance(data, dict) or "name" not in data or "tables" not in data:
            raise SchemaError("bad database schema")
        tables = [
            TableSchema.from_json(tname, tdata)
            for tname, tdata in data["tables"].items()
        ]
        return cls(data["name"], tables, data.get("version", "1.0.0"))


def simple_schema(name: str, tables: Dict[str, Dict[str, str]]) -> DatabaseSchema:
    """Convenience builder: ``{"Table": {"col": "string", ...}, ...}``.

    Column type strings are the atomic type names, optionally prefixed
    with ``?`` (optional), ``*`` (set), or ``map:<valuetype>:`` for maps
    (e.g. ``"map:string:string"`` is invalid — use ``"map<string,string>"``).
    """
    table_schemas = []
    for tname, cols in tables.items():
        columns = []
        for cname, spec in cols.items():
            columns.append(ColumnSchema(cname, _parse_type_spec(spec)))
        table_schemas.append(TableSchema(tname, columns))
    return DatabaseSchema(name, table_schemas)


def _parse_type_spec(spec: str) -> ColumnType:
    if spec.startswith("?"):
        return ColumnType(spec[1:], min=0, max=1)
    if spec.startswith("*"):
        return ColumnType(spec[1:], min=0, max=UNLIMITED)
    if spec.startswith("map<") and spec.endswith(">"):
        inner = spec[4:-1]
        parts = [p.strip() for p in inner.split(",")]
        if len(parts) != 2:
            raise SchemaError(f"bad map type spec {spec!r}")
        return ColumnType(parts[0], parts[1], min=0, max=UNLIMITED)
    return ColumnType(spec)
