"""Length-prefixed JSON-RPC framing shared by every wire protocol here.

Both the management protocol and the P4Runtime-style API exchange JSON
messages over a stream transport.  Each frame is a 4-byte big-endian
length followed by that many bytes of UTF-8 JSON.  Length-prefixing
(rather than newline-delimiting) keeps payloads free to contain any
text and makes framing errors loud.

Message shapes (JSON-RPC 1.0 flavor, like OVSDB):

* request:       ``{"method": m, "params": [...], "id": n}``
* response:      ``{"result": r, "error": null, "id": n}``
* error:         ``{"result": null, "error": {...}, "id": n}``
* notification:  ``{"method": m, "params": [...], "id": null}``
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional, Tuple

from repro.errors import ProtocolError

MAX_FRAME = 64 * 1024 * 1024  # defensive bound against corrupt lengths
_HEADER = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    """Serialize a message into one wire frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame too large ({len(payload)} bytes)")
    return _HEADER.pack(len(payload)) + payload


def decode_frames(buffer: bytes) -> Tuple[list, bytes]:
    """Extract all complete frames from ``buffer``.

    Returns ``(messages, remainder)``; the remainder is the trailing
    partial frame (possibly empty) to be prepended to the next read.
    """
    messages = []
    offset = 0
    n = len(buffer)
    while n - offset >= _HEADER.size:
        (length,) = _HEADER.unpack_from(buffer, offset)
        if length > MAX_FRAME:
            raise ProtocolError(f"frame length {length} exceeds maximum")
        if n - offset - _HEADER.size < length:
            break
        start = offset + _HEADER.size
        payload = buffer[start : start + length]
        try:
            messages.append(json.loads(payload.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"bad JSON frame: {exc}") from exc
        offset = start + length
    return messages, buffer[offset:]


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Blocking read of exactly one frame; None on orderly EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds maximum")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from exc


def send_message(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None if remaining == count and not chunks else None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def make_request(method: str, params, request_id: int) -> dict:
    return {"method": method, "params": params, "id": request_id}


def make_response(result, request_id) -> dict:
    return {"result": result, "error": None, "id": request_id}


def make_error(error, request_id) -> dict:
    return {"result": None, "error": error, "id": request_id}


def make_notification(method: str, params) -> dict:
    return {"method": method, "params": params, "id": None}


class NotificationDispatcher:
    """Runs notification callbacks off the reader thread.

    A client's reader thread must never execute user callbacks directly:
    a callback that issues a blocking call on the same client would
    deadlock waiting for a response only the reader can receive.  Both
    protocol clients push notifications through one of these instead.
    """

    def __init__(self, name: str = "rpc-dispatch"):
        import queue
        import threading

        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    def submit(self, fn, *args) -> None:
        if not self._closed:
            self._queue.put((fn, args))

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, args = item
            try:
                fn(*args)
            except Exception:  # noqa: BLE001 - callbacks must not kill us
                pass

    def close(self) -> None:
        self._closed = True
        self._queue.put(None)


def classify(message: dict) -> str:
    """'request' | 'notification' | 'response' (raises on junk)."""
    if not isinstance(message, dict):
        raise ProtocolError(f"message is not an object: {message!r}")
    if "method" in message:
        return "notification" if message.get("id") is None else "request"
    if "id" in message:
        return "response"
    raise ProtocolError(f"unclassifiable message: {message!r}")
