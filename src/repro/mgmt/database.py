"""The management-plane row store with atomic transactions.

A :class:`Database` holds rows per table, keyed by UUID.  All writes go
through :meth:`Database.transact`, which executes a list of operations
atomically (all-or-nothing) against a staged copy, enforces schema
constraints and unique indexes, commits, and notifies monitors with the
transaction's net row changes.
"""

from __future__ import annotations

import threading
import uuid as uuidlib
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.errors import SchemaError, TransactionError
from repro.mgmt import lease as leaselib
from repro.mgmt.monitor import Monitor, MonitorSpec, RowUpdate, TableUpdates
from repro.mgmt.schema import DatabaseSchema
from repro.mgmt.values import check_value


class Row:
    """A committed row: its uuid plus column values (read-only view)."""

    __slots__ = ("uuid", "values")

    def __init__(self, uuid: str, values: dict):
        self.uuid = uuid
        self.values = values

    def __getitem__(self, column: str):
        if column == "_uuid":
            return self.uuid
        return self.values[column]

    def get(self, column: str, default=None):
        if column == "_uuid":
            return self.uuid
        return self.values.get(column, default)

    def __repr__(self):
        return f"Row({self.uuid[:8]}, {self.values!r})"


class _Staged:
    """Copy-on-write view of the database during one transaction."""

    def __init__(self, db: "Database"):
        self.db = db
        # table -> uuid -> row dict (None marks deletion)
        self.changes: Dict[str, Dict[str, Optional[dict]]] = {}
        self.named_uuids: Dict[str, str] = {}

    def rows(self, table: str) -> Dict[str, dict]:
        base = dict(self.db._tables[table])
        for uuid, row in self.changes.get(table, {}).items():
            if row is None:
                base.pop(uuid, None)
            else:
                base[uuid] = row
        return base

    def get(self, table: str, uuid: str) -> Optional[dict]:
        staged = self.changes.get(table, {})
        if uuid in staged:
            return staged[uuid]
        return self.db._tables[table].get(uuid)

    def put(self, table: str, uuid: str, row: dict) -> None:
        self.changes.setdefault(table, {})[uuid] = row

    def delete(self, table: str, uuid: str) -> None:
        self.changes.setdefault(table, {})[uuid] = None


class Database:
    """An in-memory, monitorable, transactional database."""

    def __init__(
        self,
        schema: DatabaseSchema,
        uuid_factory: Optional[Callable[[], str]] = None,
    ):
        self.schema = schema
        # Every database carries the reserved lease table so leader
        # election (repro.mgmt.lease / repro.core.ha) works through the
        # ordinary transact/monitor machinery with no side channel.
        leaselib.ensure_lease_table(schema)
        self._tables: Dict[str, Dict[str, dict]] = {
            name: {} for name in schema.tables
        }
        self._monitors: List[Monitor] = []
        self._uuid_factory = uuid_factory or (lambda: uuidlib.uuid4().hex)
        self._lock = threading.RLock()
        # Hands monitor deliveries off in commit order: acquired while
        # the commit still holds ``_lock``, released only after
        # ``_notify`` returns.  Without it two concurrent transactions
        # could notify out of commit order — fatal for consumers (the
        # controller's coalescing pipeline) that fold the stream into
        # net row effects.  RLock so a callback may itself transact.
        self._notify_lock = threading.RLock()
        self.txn_counter = 0

    # -- reads ---------------------------------------------------------------

    def tables(self) -> List[str]:
        return list(self._tables)

    def rows(self, table: str) -> List[Row]:
        self.schema.table(table)
        with self._lock:
            return [Row(u, dict(v)) for u, v in self._tables[table].items()]

    def get_row(self, table: str, uuid: str) -> Optional[Row]:
        self.schema.table(table)
        with self._lock:
            values = self._tables[table].get(uuid)
            return Row(uuid, dict(values)) if values is not None else None

    def count(self, table: str) -> int:
        return len(self._tables[table])

    # -- transactions -------------------------------------------------------------

    def transact(self, operations: Sequence[dict]) -> List[dict]:
        """Execute operations atomically; returns one result per op.

        Raises :class:`TransactionError` (nothing committed) on any
        failure, including an explicit ``abort`` op or an unsatisfied
        ``wait``.
        """
        from repro.mgmt.transact import execute_operations

        if not obs.enabled():
            with self._lock:
                staged = _Staged(self)
                results = execute_operations(self, staged, operations)
                self._check_constraints(staged)
                updates = self._commit(staged)
                self._notify_lock.acquire()
            try:
                self._notify(updates)
            finally:
                self._notify_lock.release()
            return results

        # Mint the update-id that names this config change end-to-end;
        # _notify runs inside its scope so every downstream plane
        # (controller sync, engine delta, device writes) inherits it.
        uid = obs.mint_update_id()
        with obs.TRACER.span(
            "mgmt.transact", update_id=uid, ops=len(operations)
        ) as span:
            with self._lock:
                staged = _Staged(self)
                results = execute_operations(self, staged, operations)
                self._check_constraints(staged)
                updates = self._commit(staged)
                self._notify_lock.acquire()
            try:
                span.set(changed_rows=sum(len(rows) for _, rows in updates))
                with obs.use_update_id(uid):
                    self._notify(updates)
            finally:
                self._notify_lock.release()
        obs.REGISTRY.counter("mgmt_txns_total").inc()
        return results

    def new_uuid(self) -> str:
        return self._uuid_factory()

    def validate_row(
        self, table: str, values: dict, partial: bool = False
    ) -> dict:
        """Validate (and normalize) column values for a table.

        ``partial=True`` allows a subset of columns (updates); otherwise
        missing columns are filled with schema defaults.
        """
        tschema = self.schema.table(table)
        out = {}
        for col, value in values.items():
            if col == "_uuid":
                raise TransactionError("_uuid cannot be written")
            try:
                cschema = tschema.column(col)
                out[col] = check_value(cschema.type, value)
            except SchemaError as exc:
                raise TransactionError(f"{table}.{col}: {exc}") from exc
        if not partial:
            for col, cschema in tschema.columns.items():
                if col not in out:
                    out[col] = cschema.type.default()
        return out

    def _check_constraints(self, staged: _Staged) -> None:
        for table, changes in staged.changes.items():
            tschema = self.schema.table(table)
            if not tschema.indexes or not any(
                row is not None for row in changes.values()
            ):
                continue
            rows = staged.rows(table)
            for index in tschema.indexes:
                seen: Dict[tuple, str] = {}
                for uuid, row in rows.items():
                    key = tuple(_freeze(row[c]) for c in index)
                    other = seen.get(key)
                    if other is not None:
                        raise TransactionError(
                            f"{table}: unique index {index} violated by rows "
                            f"{other[:8]} and {uuid[:8]}"
                        )
                    seen[key] = uuid

    def _commit(self, staged: _Staged) -> TableUpdates:
        updates = TableUpdates()
        for table, changes in staged.changes.items():
            store = self._tables[table]
            for uuid, row in changes.items():
                old = store.get(uuid)
                if row is None:
                    if old is not None:
                        del store[uuid]
                        updates.add(table, uuid, RowUpdate(dict(old), None))
                elif old is None:
                    store[uuid] = row
                    updates.add(table, uuid, RowUpdate(None, dict(row)))
                else:
                    changed_old = {
                        c: v for c, v in old.items() if row.get(c) != v
                    }
                    if changed_old:
                        store[uuid] = row
                        updates.add(
                            table, uuid, RowUpdate(changed_old, dict(row))
                        )
        if updates:
            self.txn_counter += 1
        return updates

    # -- leases (leader election; see repro.mgmt.lease) -----------------------------

    def lease_acquire(
        self,
        name: str,
        owner: str,
        ttl: float,
        now: Optional[float] = None,
        steal: bool = False,
    ) -> Optional[dict]:
        return leaselib.acquire(self.transact, name, owner, ttl, now, steal)

    def lease_renew(
        self,
        name: str,
        owner: str,
        epoch: int,
        ttl: float,
        now: Optional[float] = None,
    ) -> bool:
        return leaselib.renew(self.transact, name, owner, epoch, ttl, now)

    def lease_release(self, name: str, owner: str) -> bool:
        return leaselib.release(self.transact, name, owner)

    def lease_get(self, name: str) -> Optional[dict]:
        return leaselib.peek(self.transact, name)

    # -- monitors --------------------------------------------------------------------

    def add_monitor(
        self,
        spec: MonitorSpec,
        callback: Callable[[TableUpdates], None],
    ) -> tuple:
        """Register a monitor; returns ``(monitor, initial_snapshot)``.

        The snapshot is a :class:`TableUpdates` containing every current
        row as an insert, projected to the monitored columns.
        """
        for table in spec.tables:
            self.schema.table(table)
        monitor = Monitor(spec, callback)
        with self._lock:
            initial = TableUpdates()
            for table in spec.tables:
                for uuid, row in self._tables[table].items():
                    initial.add(
                        table, uuid, RowUpdate(None, spec.project(table, row))
                    )
            self._monitors.append(monitor)
        return monitor, initial

    def remove_monitor(self, monitor: Monitor) -> None:
        with self._lock:
            if monitor in self._monitors:
                self._monitors.remove(monitor)

    def _notify(self, updates: TableUpdates) -> None:
        if not updates:
            return
        for monitor in list(self._monitors):
            filtered = TableUpdates()
            for table, rows in updates:
                if not monitor.spec.watches(table):
                    continue
                for uuid, update in rows.items():
                    old = (
                        monitor.spec.project(table, update.old)
                        if update.old is not None
                        else None
                    )
                    new = (
                        monitor.spec.project(table, update.new)
                        if update.new is not None
                        else None
                    )
                    if update.kind == "modify" and not old:
                        continue  # no monitored column changed
                    filtered.add(table, uuid, RowUpdate(old, new))
            monitor.notify(filtered)


def _freeze(value):
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value
