"""Value model and wire encoding for the management database.

In-memory representation per column type:

==============  =========================
column type     Python value
==============  =========================
integer         int
real            float
boolean         bool
string          str
uuid            str (hex uuid)
optional T      T or None
set of T        frozenset of T
map of K->V     dict (copied on read)
==============  =========================

The wire (JSON) encoding follows RFC 7047 §5.1: sets are
``["set", [...]]``, maps ``["map", [[k, v], ...]]``, uuids
``["uuid", "..."]``, and an absent optional is the empty set.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.mgmt.schema import ColumnType

_PY_ATOMS = {
    "integer": int,
    "real": float,
    "boolean": bool,
    "string": str,
    "uuid": str,
}


def check_atom(atom_type: str, value) -> None:
    expected = _PY_ATOMS[atom_type]
    if atom_type == "integer" and isinstance(value, bool):
        raise SchemaError(f"expected integer, got bool {value!r}")
    if not isinstance(value, expected):
        raise SchemaError(f"expected {atom_type}, got {value!r}")


def check_value(ctype: ColumnType, value) -> object:
    """Validate and normalize an in-memory value for a column."""
    if ctype.is_scalar:
        check_atom(ctype.key, value)
        return value
    if ctype.is_optional:
        if value is None:
            return None
        check_atom(ctype.key, value)
        return value
    if ctype.is_map:
        if not isinstance(value, dict):
            raise SchemaError(f"expected map, got {value!r}")
        for k, v in value.items():
            check_atom(ctype.key, k)
            check_atom(ctype.value, v)
        if ctype.max != "unlimited" and len(value) > ctype.max:
            raise SchemaError(f"map exceeds max size {ctype.max}")
        return dict(value)
    # set
    if isinstance(value, (set, frozenset, list, tuple)):
        items = frozenset(value)
    else:
        # A bare scalar is accepted as a singleton set (RFC behaviour).
        items = frozenset([value])
    for item in items:
        check_atom(ctype.key, item)
    if ctype.max != "unlimited" and len(items) > ctype.max:
        raise SchemaError(f"set exceeds max size {ctype.max}")
    if len(items) < ctype.min:
        raise SchemaError(f"set below min size {ctype.min}")
    return items


def encode_atom(atom_type: str, value):
    if atom_type == "uuid":
        return ["uuid", value]
    return value


def decode_atom(atom_type: str, data):
    if atom_type == "uuid":
        if (
            isinstance(data, list)
            and len(data) == 2
            and data[0] == "uuid"
            and isinstance(data[1], str)
        ):
            return data[1]
        if isinstance(data, str):
            return data
        raise SchemaError(f"bad uuid encoding {data!r}")
    check_atom(atom_type, data)
    return data


def encode_value(ctype: ColumnType, value):
    """In-memory value -> JSON-compatible wire value."""
    if ctype.is_scalar:
        return encode_atom(ctype.key, value)
    if ctype.is_optional:
        if value is None:
            return ["set", []]
        return encode_atom(ctype.key, value)
    if ctype.is_map:
        return [
            "map",
            sorted(
                [[encode_atom(ctype.key, k), encode_atom(ctype.value, v)]
                 for k, v in value.items()],
                key=repr,
            ),
        ]
    return ["set", sorted((encode_atom(ctype.key, v) for v in value), key=repr)]


def decode_value(ctype: ColumnType, data):
    """JSON wire value -> validated in-memory value."""
    if ctype.is_map:
        if isinstance(data, list) and len(data) == 2 and data[0] == "map":
            out = {}
            for pair in data[1]:
                if not isinstance(pair, list) or len(pair) != 2:
                    raise SchemaError(f"bad map pair {pair!r}")
                out[decode_atom(ctype.key, pair[0])] = decode_atom(
                    ctype.value, pair[1]
                )
            return check_value(ctype, out)
        if isinstance(data, dict):
            return check_value(ctype, data)
        raise SchemaError(f"bad map encoding {data!r}")
    if isinstance(data, list) and len(data) == 2 and data[0] == "set":
        items = [decode_atom(ctype.key, item) for item in data[1]]
        if ctype.is_optional:
            if len(items) > 1:
                raise SchemaError("optional column given multiple values")
            return items[0] if items else None
        if ctype.is_scalar:
            if len(items) != 1:
                raise SchemaError("scalar column given a non-singleton set")
            return items[0]
        return check_value(ctype, items)
    # Bare atom.
    return check_value(ctype, decode_atom(ctype.key, data))


def row_to_wire(schema_table, row: dict) -> dict:
    """Encode a row's columns per the table schema (skips None deltas)."""
    out = {}
    for col, value in row.items():
        if col == "_uuid":
            out[col] = ["uuid", value]
        else:
            out[col] = encode_value(schema_table.column(col).type, value)
    return out


def row_from_wire(schema_table, data: dict) -> dict:
    out = {}
    for col, value in data.items():
        if col == "_uuid":
            out[col] = decode_atom("uuid", value)
        else:
            out[col] = decode_value(schema_table.column(col).type, value)
    return out
