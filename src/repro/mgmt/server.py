"""TCP server exposing a management database.

Methods (mirroring OVSDB's protocol surface):

* ``get_schema []`` — the database schema JSON;
* ``transact [op, ...]`` — atomic operation list; rows in results are
  wire-encoded;
* ``monitor [{table: columns-or-null, ...}]`` — returns the initial
  snapshot and subscribes the connection to ``update`` notifications;
* ``monitor_cancel [monitor-id]``;
* ``echo [...]`` — returns its params (keepalive).

Update notifications: ``{"method": "update", "params": [monitor_id,
{table: {uuid: {"old": {...}?, "new": {...}?}}}], "id": null}``.

The server is threaded (one reader thread per connection) so it can run
alongside the synchronous controller without an event loop;
``ManagementServer.start()`` returns once the listening socket is bound.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError, ReproError
from repro.mgmt.database import Database
from repro.obs.trace import current_update_id
from repro.mgmt.jsonrpc import (
    classify,
    make_error,
    make_notification,
    make_response,
    recv_message,
    send_message,
)
from repro.mgmt.monitor import Monitor, MonitorSpec, TableUpdates
from repro.mgmt.values import row_to_wire


def updates_to_wire(db: Database, updates: TableUpdates) -> dict:
    out: Dict[str, Dict[str, dict]] = {}
    for table, rows in updates:
        tschema = db.schema.table(table)
        tout = out.setdefault(table, {})
        for uuid, update in rows.items():
            entry = {}
            if update.old is not None:
                entry["old"] = row_to_wire(tschema, update.old)
            if update.new is not None:
                entry["new"] = row_to_wire(tschema, update.new)
            tout[uuid] = entry
    return out


class _Connection:
    def __init__(self, server: "ManagementServer", sock: socket.socket, peer):
        self.server = server
        self.sock = sock
        self.peer = peer
        self.monitors: Dict[str, Monitor] = {}
        self.send_lock = threading.Lock()
        self.alive = True

    def send(self, message: dict) -> None:
        with self.send_lock:
            try:
                send_message(self.sock, message)
            except OSError:
                self.alive = False

    def close(self) -> None:
        self.alive = False
        for monitor in self.monitors.values():
            self.server.db.remove_monitor(monitor)
        self.monitors.clear()
        # shutdown() both wakes this connection's reader thread out of
        # recv() and sends the peer a FIN; close() alone does neither
        # while the reader holds the fd in a blocked syscall.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def serve(self) -> None:
        try:
            while self.alive:
                message = recv_message(self.sock)
                if message is None:
                    break
                self._dispatch(message)
        except (ProtocolError, OSError):
            pass
        finally:
            self.close()
            self.server._forget(self)

    def _dispatch(self, message: dict) -> None:
        kind = classify(message)
        if kind != "request":
            return  # this server sends but never awaits notifications
        method = message["method"]
        params = message.get("params", [])
        request_id = message["id"]
        try:
            result = self._handle(method, params)
            self.send(make_response(result, request_id))
        except ReproError as exc:
            self.send(make_error({"error": str(exc)}, request_id))
        except Exception as exc:  # noqa: BLE001 - report, don't kill conn
            self.send(make_error({"error": f"internal: {exc}"}, request_id))

    def _handle(self, method: str, params):
        db = self.server.db
        if method == "echo":
            return params
        if method == "get_schema":
            return db.schema.to_json()
        if method == "transact":
            results = db.transact(params)
            return [self._encode_result(r) for r in results]
        if method == "monitor":
            if len(params) != 1 or not isinstance(params[0], dict):
                raise ProtocolError("monitor expects [spec]")
            spec = MonitorSpec(
                {t: cols for t, cols in params[0].items()}
            )
            # The monitor id is only known after registration; the
            # notification closure reads it through a cell.
            id_cell: List[Optional[str]] = [None]
            monitor, initial = db.add_monitor(
                spec, self._push_updates_factory(id_cell)
            )
            id_cell[0] = monitor.monitor_id
            self.monitors[monitor.monitor_id] = monitor
            return {
                "monitor_id": monitor.monitor_id,
                "initial": updates_to_wire(db, initial),
            }
        if method == "monitor_cancel":
            (monitor_id,) = params
            monitor = self.monitors.pop(monitor_id, None)
            if monitor is not None:
                db.remove_monitor(monitor)
            return {}
        # Lease methods (RFC 7047's lock/steal/unlock shape): thin
        # wrappers over the database's transact-based lease ops, so a
        # remote standby needs no knowledge of the op-list encoding.
        if method == "lease_acquire":
            name, owner, ttl, now, steal = params
            return {"lease": db.lease_acquire(name, owner, ttl, now, steal)}
        if method == "lease_renew":
            name, owner, epoch, ttl, now = params
            return {"renewed": db.lease_renew(name, owner, epoch, ttl, now)}
        if method == "lease_release":
            name, owner = params
            return {"released": db.lease_release(name, owner)}
        if method == "lease_get":
            (name,) = params
            return {"lease": db.lease_get(name)}
        raise ProtocolError(f"unknown method {method!r}")

    def _encode_result(self, result: dict) -> dict:
        if "rows" in result:
            encoded = []
            for row in result["rows"]:
                out = {}
                for col, value in row.items():
                    out[col] = value  # rows from select are already plain
                encoded.append(out)
            return {"rows": encoded}
        return result

    def _push_updates_factory(self, id_cell: List[Optional[str]]):
        def push(updates: TableUpdates) -> None:
            if not self.alive:
                return
            params = [id_cell[0], updates_to_wire(self.server.db, updates)]
            # push runs inside Database._notify, i.e. inside the
            # transact's update-id scope; forward the id on the wire so
            # remote controllers keep the trace.
            uid = current_update_id()
            if uid is not None:
                params.append(uid)
            self.send(make_notification("update", params))

        return push


class ManagementServer:
    """Serves one :class:`Database` over TCP."""

    def __init__(self, db: Database, host: str = "127.0.0.1", port: int = 0):
        self.db = db
        self.host = host
        self.port = port
        self._listener: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._connections: List[_Connection] = []
        self._conn_lock = threading.Lock()
        self._running = False

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "ManagementServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(32)
        self._listener = listener
        self._running = True
        self._thread = threading.Thread(
            target=self._accept_loop, name="mgmt-server", daemon=True
        )
        self._thread.start()
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                break
            if not self._running:  # raced with stop()
                sock.close()
                break
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Accepted sockets must carry SO_REUSEADDR themselves: their
            # lingering close states (FIN_WAIT, TIME_WAIT) would
            # otherwise block an immediate restart of this server on
            # the same port.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            conn = _Connection(self, sock, peer)
            with self._conn_lock:
                self._connections.append(conn)
            threading.Thread(
                target=conn.serve, name=f"mgmt-conn-{peer}", daemon=True
            ).start()

    def _forget(self, conn: _Connection) -> None:
        with self._conn_lock:
            if conn in self._connections:
                self._connections.remove(conn)

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            # shutdown() wakes a thread blocked in accept(); close()
            # alone leaves the kernel LISTEN socket alive (held by the
            # in-flight accept) and the port unbindable.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._connections)
        for conn in conns:
            conn.close()

    def __enter__(self) -> "ManagementServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
