"""The management-plane operation set (RFC 7047 §5.2 flavor).

``execute_operations`` runs a list of operation dicts against a staged
transaction view.  Supported operations::

    {"op": "insert",  "table": T, "row": {...}, "uuid-name": name?}
    {"op": "select",  "table": T, "where": [...], "columns": [...]?}
    {"op": "update",  "table": T, "where": [...], "row": {...}}
    {"op": "mutate",  "table": T, "where": [...],
                      "mutations": [[column, mutator, value], ...]}
    {"op": "delete",  "table": T, "where": [...]}
    {"op": "wait",    "table": T, "where": [...], "until": "==" | "!=",
                      "rows": [...]}
    {"op": "abort"}
    {"op": "comment", "comment": "..."}

``where`` is a list of ``[column, function, value]`` clauses (all must
hold): ``==  !=  <  <=  >  >=  includes  excludes``.  A later operation
may reference a row inserted earlier in the same transaction via
``["named-uuid", name]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import TransactionError
from repro.mgmt.schema import TableSchema

_COMPARE = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def execute_operations(db, staged, operations: Sequence[dict]) -> List[dict]:
    results: List[dict] = []
    for i, op in enumerate(operations):
        if not isinstance(op, dict) or "op" not in op:
            raise TransactionError(f"operation {i}: not an operation: {op!r}")
        kind = op["op"]
        handler = _HANDLERS.get(kind)
        if handler is None:
            raise TransactionError(f"operation {i}: unknown op {kind!r}")
        try:
            results.append(handler(db, staged, op))
        except TransactionError as exc:
            raise TransactionError(f"operation {i} ({kind}): {exc}") from None
    return results


def _table_schema(db, op) -> TableSchema:
    table = op.get("table")
    if not isinstance(table, str):
        raise TransactionError("missing table")
    return db.schema.table(table)


def _resolve_uuid_refs(staged, value):
    """Resolve ``["named-uuid", name]`` references to real uuids."""
    if (
        isinstance(value, (list, tuple))
        and len(value) == 2
        and value[0] == "named-uuid"
    ):
        name = value[1]
        if name not in staged.named_uuids:
            raise TransactionError(f"unknown named-uuid {name!r}")
        return staged.named_uuids[name]
    if isinstance(value, (list, tuple)):
        return type(value)(_resolve_uuid_refs(staged, v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_resolve_uuid_refs(staged, v) for v in value)
    if isinstance(value, dict):
        return {
            _resolve_uuid_refs(staged, k): _resolve_uuid_refs(staged, v)
            for k, v in value.items()
        }
    return value


def _match_where(tschema: TableSchema, uuid: str, row: dict, where) -> bool:
    if where is None:
        return True
    if not isinstance(where, (list, tuple)):
        raise TransactionError(f"bad where clause {where!r}")
    for clause in where:
        if not isinstance(clause, (list, tuple)) or len(clause) != 3:
            raise TransactionError(f"bad where clause {clause!r}")
        column, func, expected = clause
        if column == "_uuid":
            actual = uuid
        else:
            tschema.column(column)  # validates existence
            actual = row[column]
        if func in _COMPARE:
            try:
                if not _COMPARE[func](actual, expected):
                    return False
            except TypeError:
                raise TransactionError(
                    f"cannot compare {actual!r} with {expected!r}"
                ) from None
        elif func == "includes":
            if isinstance(actual, dict):
                ok = all(
                    k in actual and actual[k] == v
                    for k, v in (expected or {}).items()
                )
            elif isinstance(actual, frozenset):
                ok = expected in actual
            else:
                ok = actual == expected
            if not ok:
                return False
        elif func == "excludes":
            if isinstance(actual, dict):
                ok = not any(
                    k in actual and actual[k] == v
                    for k, v in (expected or {}).items()
                )
            elif isinstance(actual, frozenset):
                ok = expected not in actual
            else:
                ok = actual != expected
            if not ok:
                return False
        else:
            raise TransactionError(f"unknown where function {func!r}")
    return True


def _select_rows(db, staged, op) -> Dict[str, dict]:
    tschema = _table_schema(db, op)
    where = _resolve_uuid_refs(staged, op.get("where"))
    return {
        uuid: row
        for uuid, row in staged.rows(tschema.name).items()
        if _match_where(tschema, uuid, row, where)
    }


def _op_insert(db, staged, op) -> dict:
    tschema = _table_schema(db, op)
    raw = _resolve_uuid_refs(staged, op.get("row", {}))
    row = db.validate_row(tschema.name, raw)
    uuid = db.new_uuid()
    staged.put(tschema.name, uuid, row)
    name = op.get("uuid-name")
    if name is not None:
        if name in staged.named_uuids:
            raise TransactionError(f"duplicate uuid-name {name!r}")
        staged.named_uuids[name] = uuid
    return {"uuid": uuid}


def _op_select(db, staged, op) -> dict:
    tschema = _table_schema(db, op)
    columns: Optional[Sequence[str]] = op.get("columns")
    if columns is not None:
        for c in columns:
            if c != "_uuid":
                tschema.column(c)
    rows = []
    for uuid, row in sorted(_select_rows(db, staged, op).items()):
        full = {"_uuid": uuid, **row}
        if columns is not None:
            full = {c: full[c] for c in columns}
        rows.append(full)
    return {"rows": rows}


def _op_update(db, staged, op) -> dict:
    tschema = _table_schema(db, op)
    raw = _resolve_uuid_refs(staged, op.get("row", {}))
    new_values = db.validate_row(tschema.name, raw, partial=True)
    for col in new_values:
        if not tschema.column(col).mutable:
            raise TransactionError(f"column {col} is immutable")
    count = 0
    for uuid, row in _select_rows(db, staged, op).items():
        merged = dict(row)
        merged.update(new_values)
        staged.put(tschema.name, uuid, merged)
        count += 1
    return {"count": count}


_NUMERIC_MUTATORS = {
    "+=": lambda a, b: a + b,
    "-=": lambda a, b: a - b,
    "*=": lambda a, b: a * b,
}


def _op_mutate(db, staged, op) -> dict:
    tschema = _table_schema(db, op)
    mutations = _resolve_uuid_refs(staged, op.get("mutations", []))
    count = 0
    for uuid, row in _select_rows(db, staged, op).items():
        merged = dict(row)
        for mutation in mutations:
            if not isinstance(mutation, (list, tuple)) or len(mutation) != 3:
                raise TransactionError(f"bad mutation {mutation!r}")
            column, mutator, value = mutation
            cschema = tschema.column(column)
            if not cschema.mutable:
                raise TransactionError(f"column {column} is immutable")
            current = merged[column]
            if mutator in _NUMERIC_MUTATORS:
                if not isinstance(current, (int, float)) or isinstance(
                    current, bool
                ):
                    raise TransactionError(
                        f"{mutator} applies to numeric columns, "
                        f"{column} is {current!r}"
                    )
                merged[column] = _NUMERIC_MUTATORS[mutator](current, value)
            elif mutator == "insert":
                if isinstance(current, dict):
                    updated = dict(current)
                    updated.update(value)
                    merged[column] = updated
                elif isinstance(current, frozenset):
                    additions = (
                        value
                        if isinstance(value, (set, frozenset, list, tuple))
                        else [value]
                    )
                    merged[column] = current | frozenset(additions)
                else:
                    raise TransactionError(
                        f"insert mutator applies to sets/maps, "
                        f"{column} is scalar"
                    )
            elif mutator == "delete":
                if isinstance(current, dict):
                    keys = (
                        value
                        if isinstance(value, (set, frozenset, list, tuple))
                        else [value]
                    )
                    merged[column] = {
                        k: v for k, v in current.items() if k not in set(keys)
                    }
                elif isinstance(current, frozenset):
                    removals = (
                        value
                        if isinstance(value, (set, frozenset, list, tuple))
                        else [value]
                    )
                    merged[column] = current - frozenset(removals)
                else:
                    raise TransactionError(
                        f"delete mutator applies to sets/maps, "
                        f"{column} is scalar"
                    )
            else:
                raise TransactionError(f"unknown mutator {mutator!r}")
            merged[column] = db.validate_row(
                tschema.name, {column: merged[column]}, partial=True
            )[column]
        staged.put(tschema.name, uuid, merged)
        count += 1
    return {"count": count}


def _op_delete(db, staged, op) -> dict:
    tschema = _table_schema(db, op)
    count = 0
    for uuid in list(_select_rows(db, staged, op)):
        staged.delete(tschema.name, uuid)
        count += 1
    return {"count": count}


def _op_wait(db, staged, op) -> dict:
    tschema = _table_schema(db, op)
    until = op.get("until")
    if until not in ("==", "!="):
        raise TransactionError(f"wait until must be '==' or '!=', got {until!r}")
    expected = [
        db.validate_row(tschema.name, _resolve_uuid_refs(staged, r), partial=True)
        for r in op.get("rows", [])
    ]
    columns = op.get("columns")
    actual = []
    for _, row in sorted(_select_rows(db, staged, op).items()):
        if columns is not None:
            actual.append({c: row[c] for c in columns})
        else:
            actual.append(dict(row))

    def contains_all():
        return all(
            any(all(row.get(c) == v for c, v in want.items()) for row in actual)
            for want in expected
        )

    satisfied = contains_all() if until == "==" else not contains_all()
    if not satisfied:
        raise TransactionError("wait condition not satisfied")
    return {}


def _op_abort(db, staged, op) -> dict:
    raise TransactionError("aborted by abort operation")


def _op_comment(db, staged, op) -> dict:
    return {}


_HANDLERS = {
    "insert": _op_insert,
    "select": _op_select,
    "update": _op_update,
    "mutate": _op_mutate,
    "delete": _op_delete,
    "wait": _op_wait,
    "abort": _op_abort,
    "comment": _op_comment,
}
