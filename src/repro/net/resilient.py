"""A JSON-RPC connection that survives its transport.

:class:`ResilientConnection` owns everything both protocol clients used
to duplicate — the socket, the reader thread, the pending-call table,
and the notification dispatcher — and adds the part neither had: when
the transport dies it reconnects with exponential backoff (per a
:class:`~repro.net.retry.RetryPolicy`), fails the calls that were in
flight, and replays registered ``on_reconnect`` hooks so higher layers
can rebuild session state (monitor subscriptions, digest subscriptions,
device table contents).

State machine::

    connected --transport error--> retrying --success--> connected
         |                            |
         |                            +--attempts exhausted--> broken
         +----------- close() from any state ----------------> closed

Liveness is probed with the wire protocol's ``echo`` method when the
policy enables a heartbeat; a failed probe aborts the socket so the
reader notices immediately instead of waiting for TCP timeouts.
"""

from __future__ import annotations

import select
import socket
import threading
import time
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.errors import ConnectionLostError, ProtocolError, ReproError
from repro.mgmt.jsonrpc import (
    NotificationDispatcher,
    classify,
    encode_frame,
    make_request,
    recv_message,
)
from repro.net.retry import RetryPolicy

#: Sentinel stored in a pending call's error slot when the transport
#: died before a response arrived (distinguishes transport loss from a
#: real error response sent by the peer).
_LOST = object()

# Per-send non-blocking flag (0 where unsupported, degrading to the
# old blocking behavior; see _send_bounded for why it matters).
_MSG_DONTWAIT = getattr(socket, "MSG_DONTWAIT", 0)

CONNECTED = "connected"
RETRYING = "retrying"
BROKEN = "broken"
CLOSED = "closed"


class _PendingCall:
    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error = None


class ResilientConnection:
    """Reconnecting request/response + notification transport.

    ``on_notification`` receives each notification message (a dict) on
    the dispatcher thread — it may issue calls on this connection.
    ``error_type`` is the exception class raised when the peer returns
    an error response (``TransactionError`` for the management plane,
    ``RuntimeApiError`` for P4Runtime).
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[RetryPolicy] = None,
        name: str = "rpc",
        on_notification: Optional[Callable[[dict], None]] = None,
        error_type: type = ReproError,
    ):
        self.host = host
        self.port = port
        self.policy = policy or RetryPolicy()
        self.name = name
        self.error_type = error_type
        self._on_notification = on_notification
        self._on_reconnect: List[Callable[[], None]] = []

        self._send_lock = threading.Lock()
        self._sock_lock = threading.Lock()
        self._pending: Dict[int, _PendingCall] = {}
        self._pending_lock = threading.Lock()
        self._next_id = 0

        self._closed = False
        self._close_lock = threading.Lock()
        self._closed_event = threading.Event()
        self._connected_event = threading.Event()

        # Observability: state history + counters for health reports.
        self._state = RETRYING
        self.transitions: List[str] = []
        self.connect_attempts = 0
        self.reconnects = 0
        self.retry_count = 0
        self.last_error: Optional[str] = None

        # First connect is synchronous and non-retrying so a bad
        # address fails loudly at construction time (legacy behavior).
        self.sock = self._connect()
        self._set_state(CONNECTED)
        self._connected_event.set()

        self._dispatcher = NotificationDispatcher(f"{name}-dispatch")
        self._reader = threading.Thread(
            target=self._run, name=f"{name}-reader", daemon=True
        )
        self._reader.start()
        if self.policy.heartbeat_interval > 0:
            threading.Thread(
                target=self._heartbeat_loop,
                name=f"{name}-heartbeat",
                daemon=True,
            ).start()

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def connected(self) -> bool:
        return self._state == CONNECTED

    def wait_connected(self, timeout: Optional[float] = None) -> bool:
        """Block until the transport is usable (or ``timeout`` passes).

        Lets backpressure-aware producers (the controller's per-device
        writer threads) park on a reconnecting transport instead of
        burning a full call timeout per queued batch."""
        return self._connected_event.wait(timeout)

    def _set_state(self, state: str) -> None:
        if state != self._state:
            self._state = state
            self.transitions.append(state)
            if obs.enabled():
                obs.REGISTRY.counter(
                    "net_transitions_total", conn=self.name, state=state
                ).inc()

    def note_event(self, tag: str) -> None:
        """Record a caller-level event (e.g. ``quarantined``) in the
        transition history, chronologically merged with state changes."""
        self.transitions.append(tag)

    def health(self) -> Dict[str, object]:
        return {
            "peer": f"{self.host}:{self.port}",
            "state": self._state,
            "transitions": list(self.transitions),
            "connect_attempts": self.connect_attempts,
            "reconnects": self.reconnects,
            "retry_count": self.retry_count,
            "last_error": self.last_error,
        }

    def on_reconnect(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` (on the dispatcher thread) after each
        successful reconnect.  It may issue calls on this connection."""
        self._on_reconnect.append(callback)

    # -- calls ---------------------------------------------------------------

    def call(self, method: str, params, retryable: bool = False) -> object:
        """Send a request, wait for its response.

        ``retryable=True`` marks the method safe to re-send if the
        transport dies mid-call (idempotent reads, echo).  Mutating
        calls are never auto-retried — a lost response leaves it
        unknown whether they applied, and recovery for those is the
        controller's reconcile path, not blind resend.
        """
        deadline = time.monotonic() + self.policy.call_timeout
        while True:
            self._check_usable(method)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ProtocolError(f"timeout waiting for {method} response")
            if not self._connected_event.wait(remaining):
                self._check_usable(method)
                raise ProtocolError(f"timeout waiting for {method} response")
            with self._pending_lock:
                if self._closed:
                    raise ConnectionLostError(
                        f"connection closed (calling {method})"
                    )
                self._next_id += 1
                request_id = self._next_id
                pending = _PendingCall()
                self._pending[request_id] = pending
            try:
                with self._sock_lock:
                    sock = self.sock
                with self._send_lock:
                    self._send_bounded(
                        sock, make_request(method, params, request_id), method
                    )
            except OSError as exc:
                with self._pending_lock:
                    self._pending.pop(request_id, None)
                self._note_error(exc)
                self._abort_socket()
                if retryable:
                    continue
                raise ConnectionLostError(
                    f"connection lost sending {method}: {exc}"
                ) from exc
            remaining = deadline - time.monotonic()
            if not pending.event.wait(max(0.0, remaining)):
                with self._pending_lock:
                    self._pending.pop(request_id, None)
                raise ProtocolError(f"timeout waiting for {method} response")
            if pending.error is _LOST:
                if retryable:
                    continue
                raise ConnectionLostError(
                    f"connection lost awaiting {method} response"
                )
            if pending.error is not None:
                raise self.error_type(str(pending.error))
            return pending.result

    def _send_bounded(self, sock, message: dict, method: str) -> None:
        """``sendall`` with a stall bound.

        A peer that accepted the connection but stopped reading lets
        the kernel send buffer fill; a bare ``sendall`` then blocks the
        caller forever (the reader thread sees nothing wrong — the
        connection is "up", just wedged).  Instead, wait for
        writability with ``select`` and send chunk by chunk under a
        deadline from ``RetryPolicy.send_timeout`` (default: the call
        timeout).  Expiry raises ``socket.timeout`` — an ``OSError`` —
        so the caller's transport-failure path aborts the socket into
        reconnect exactly as for any other send failure.
        """
        timeout = self.policy.send_timeout
        if timeout is None:
            timeout = self.policy.call_timeout
        deadline = time.monotonic() + timeout
        view = memoryview(encode_frame(message))
        while view.nbytes:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout(
                    f"send of {method} stalled for {timeout:.1f}s "
                    f"(peer not reading)"
                )
            try:
                _, writable, _ = select.select([], [sock], [], remaining)
            except ValueError as exc:
                # Socket torn down under us (concurrent abort): surface
                # as OSError so the caller's transport path handles it.
                raise OSError(f"socket closed during send: {exc}") from exc
            if not writable:
                raise socket.timeout(
                    f"send of {method} stalled for {timeout:.1f}s "
                    f"(peer not reading)"
                )
            # MSG_DONTWAIT is load-bearing: on a blocking socket, a
            # plain ``send`` of a buffer larger than the free kernel
            # space has sendall semantics on Linux — it returns only
            # once *everything* is queued, so a peer that stalls
            # mid-payload wedges the caller inside the send and the
            # deadline above never gets another look.  Non-blocking
            # per-attempt sends return partial progress instead.
            try:
                sent = sock.send(view, _MSG_DONTWAIT)
            except (BlockingIOError, InterruptedError):
                continue  # lost the race for buffer space; re-check deadline
            view = view[sent:]

    def _check_usable(self, method: str) -> None:
        """Fail fast instead of blocking when no response can ever come."""
        if self._closed:
            raise ConnectionLostError(f"connection closed (calling {method})")
        if self._state == BROKEN:
            raise ConnectionLostError(
                f"connection broken after {self.retry_count} "
                f"reconnect attempt(s) (calling {method}): {self.last_error}"
            )

    # -- transport lifecycle -------------------------------------------------

    def _connect(self) -> socket.socket:
        self.connect_attempts += 1
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.policy.connect_timeout
        )
        if sock.getsockname() == sock.getpeername():
            # TCP self-connection: rapidly retrying an ephemeral-range
            # port with no listener can simultaneous-open onto itself.
            # The "connection" would echo our own bytes back AND hold
            # the port hostage against the real server's bind.
            sock.close()
            raise ConnectionError("refusing TCP self-connection")
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        return sock

    def _run(self) -> None:
        while True:
            try:
                self._read_until_failure()
            except (ProtocolError, OSError) as exc:
                self._note_error(exc)
            if self._closed:
                self._fail_all_pending()
                return
            # Order matters: flip to ``retrying`` BEFORE failing pending
            # calls, so callers unblocked by the failure observe (and
            # log, e.g. quarantine decisions) a consistent history.
            self._connected_event.clear()
            self._set_state(RETRYING)
            self._fail_all_pending()
            if not self._reconnect():
                return

    def _read_until_failure(self) -> None:
        with self._sock_lock:
            sock = self.sock
        while not self._closed:
            message = recv_message(sock)
            if message is None:
                self._note_error(ConnectionLostError("peer closed connection"))
                return
            kind = classify(message)
            if kind == "response":
                with self._pending_lock:
                    pending = self._pending.pop(message["id"], None)
                if pending is not None:
                    pending.result = message.get("result")
                    pending.error = message.get("error")
                    pending.event.set()
            elif kind == "notification" and self._on_notification is not None:
                self._dispatcher.submit(self._on_notification, message)

    def _reconnect(self) -> bool:
        delays = self.policy.delays()
        while not self._closed:
            try:
                sock = self._connect()
            except OSError as exc:
                self.retry_count += 1
                self._note_error(exc)
                try:
                    delay = next(delays)
                except StopIteration:
                    self._set_state(BROKEN)
                    self._fail_all_pending()
                    return False
                if self._closed_event.wait(delay):
                    return False
                continue
            with self._sock_lock:
                self.sock = sock
            self.reconnects += 1
            if obs.enabled():
                obs.REGISTRY.counter(
                    "net_reconnects_total", conn=self.name
                ).inc()
            self._set_state(CONNECTED)
            self._connected_event.set()
            for callback in list(self._on_reconnect):
                self._dispatcher.submit(self._run_reconnect_hook, callback)
            return True
        return False

    def _run_reconnect_hook(self, callback: Callable[[], None]) -> None:
        try:
            callback()
        except ReproError as exc:
            # A hook racing a second failure is normal; the next
            # successful reconnect will run it again.
            self._note_error(exc)

    def _heartbeat_loop(self) -> None:
        while not self._closed_event.wait(self.policy.heartbeat_interval):
            if self._state != CONNECTED:
                continue
            try:
                self.call("echo", ["heartbeat"], retryable=False)
            except ReproError as exc:
                self._note_error(exc)
                self._abort_socket()

    def _note_error(self, exc: BaseException) -> None:
        self.last_error = str(exc) or type(exc).__name__

    def _abort_socket(self) -> None:
        """Force the reader out of ``recv`` so reconnection starts now."""
        with self._sock_lock:
            sock = self.sock
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _fail_all_pending(self) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for p in pending:
            p.error = _LOST
            p.event.set()

    def close(self) -> None:
        """Idempotent; fails all pending calls immediately."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._closed_event.set()
        self._set_state(CLOSED)
        self._dispatcher.close()
        self._fail_all_pending()
        self._abort_socket()
