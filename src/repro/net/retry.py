"""Retry policy: how hard to try before declaring a peer dead.

One :class:`RetryPolicy` value parameterizes every transport decision a
:class:`~repro.net.resilient.ResilientConnection` makes — connect
timeout, per-call timeout, reconnect attempts, and the exponential
backoff curve between them.  Keeping it a frozen dataclass means a
policy can be shared between clients and compared in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Connect/call retry behavior for a resilient connection.

    ``connect_timeout``     seconds allowed for one TCP connect attempt;
    ``call_timeout``        seconds a blocked caller waits for a response;
    ``max_reconnect_attempts``  consecutive failed reconnects before the
                            connection gives up and turns ``broken``
                            (``None`` = retry forever);
    ``base_delay`` / ``max_delay`` / ``multiplier``  the exponential
                            backoff curve between reconnect attempts;
    ``jitter``              fraction of each delay randomized away to
                            avoid thundering-herd reconnects;
    ``heartbeat_interval``  seconds between liveness ``echo`` probes
                            (0 disables the heartbeat thread);
    ``send_timeout``        seconds a single outbound send may stall
                            before the socket is aborted into reconnect
                            (``None`` = fall back to ``call_timeout``).
                            A peer that accepts the connection but stops
                            reading lets the kernel send buffer fill;
                            without this bound ``sendall`` wedges the
                            caller indefinitely.
    """

    connect_timeout: float = 10.0
    call_timeout: float = 30.0
    send_timeout: Optional[float] = None
    max_reconnect_attempts: Optional[int] = 8
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    heartbeat_interval: float = 0.0

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """Yield backoff delays, jittered, capped at ``max_delay``.

        Yields ``max_reconnect_attempts`` values (infinitely many when
        that is ``None``).
        """
        rng = rng or random
        attempt = 0
        delay = self.base_delay
        while (
            self.max_reconnect_attempts is None
            or attempt < self.max_reconnect_attempts
        ):
            capped = min(delay, self.max_delay)
            if self.jitter:
                capped *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, capped)
            delay *= self.multiplier
            attempt += 1


#: Policy tuned for tests: fast backoff, bounded retries, no heartbeat.
FAST_TEST_POLICY = RetryPolicy(
    connect_timeout=2.0,
    call_timeout=5.0,
    max_reconnect_attempts=40,
    base_delay=0.02,
    max_delay=0.2,
)
