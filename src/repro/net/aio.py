"""Event-loop transport: one reactor multiplexing thousands of peers.

:class:`Reactor` is a selector-based event loop on a single thread —
readiness callbacks, cross-thread ``submit``, and ``call_later`` timers
— sized so that *connections are cheap*: an :class:`AioConnection`
costs two buffers and a selector registration, not the reader thread +
heartbeat thread + dispatcher thread a
:class:`~repro.net.resilient.ResilientConnection` spends.  That is the
difference between a fleet of hundreds of devices (one OS thread each)
and thousands (one loop for all of them).

:class:`AioConnection` ports the resilient transport's semantics onto
the loop:

* the same framed JSON-RPC protocol (``repro.mgmt.jsonrpc``);
* **write buffering with high/low watermarks** — sends append to an
  outbound buffer flushed on socket writability; past the high
  watermark the connection reports itself unwritable and fires
  ``on_drain`` callbacks once the buffer falls under the low one, so
  producers can flow-control instead of ballooning memory;
* **pending-call correlation** — requests carry ids; responses resolve
  callbacks on the loop thread, per-call deadlines fire as timers;
* **reconnect with backoff, heartbeat, and state history** ported from
  ``ResilientConnection`` (same ``connected → retrying → broken``
  lattice, same :class:`~repro.net.retry.RetryPolicy` knobs), all
  implemented as timers instead of threads.

Loop discipline: everything suffixed ``_on_loop`` (and every readiness
or timer callback) runs on the reactor thread and must not block.
Blocking work — notification fan-out, reconnect hooks that resync a
device — is handed to the reactor's dispatcher thread or hook pool.
The public surface (``call``, ``call_async``, ``close``, ``health``,
``wait_connected``) is thread-safe.
"""

from __future__ import annotations

import errno
import itertools
import heapq
import selectors
import socket
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.errors import ConnectionLostError, ProtocolError, ReproError
from repro.mgmt.jsonrpc import (
    NotificationDispatcher,
    classify,
    decode_frames,
    encode_frame,
    make_request,
)
from repro.net.resilient import BROKEN, CLOSED, CONNECTED, RETRYING
from repro.net.retry import RetryPolicy

_RECV_CHUNK = 1 << 18

#: Default write-buffer watermarks: past ``HIGH`` the connection stops
#: reporting itself writable; ``on_drain`` callbacks fire once the
#: buffer empties below ``LOW``.
HIGH_WATERMARK = 256 * 1024
LOW_WATERMARK = 64 * 1024

_EINPROGRESS = {errno.EINPROGRESS, errno.EWOULDBLOCK, errno.EALREADY}


class Timer:
    """A cancellable ``call_later`` handle."""

    __slots__ = ("when", "fn", "cancelled")

    def __init__(self, when: float, fn: Callable[[], None]):
        self.when = when
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Reactor:
    """A selector event loop plus its helper executors.

    One reactor serves any number of connections and fan-out channels.
    It owns three things callbacks must never do on the loop thread:

    * ``dispatcher`` — a single FIFO thread for notification callbacks
      (digests, packet-ins), mirroring the resilient transport's
      per-connection dispatcher but shared loop-wide;
    * ``run_hook`` — a small pool for reconnect hooks, which block for
      whole resync round trips and must not serialize behind each
      other during a fleet-wide reconnect storm;
    * the loop-lag histogram ``reactor_loop_lag_seconds`` — how late
      submitted callbacks and timers run versus when they were due,
      the canonical "is the loop overloaded" signal.
    """

    def __init__(self, name: str = "aio"):
        self.name = name
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(
            self._wake_r, selectors.EVENT_READ, self._drain_wakeup
        )
        self._pending: deque = deque()  # (fn, args, enqueued_at)
        self._lock = threading.Lock()
        self._timers: list = []  # heap of (when, tiebreak, Timer)
        self._timer_seq = itertools.count()
        self._closed = False
        self._started = False
        self._thread = threading.Thread(
            target=self._run, name=f"{name}-reactor", daemon=True
        )
        self.dispatcher = NotificationDispatcher(f"{name}-dispatch")
        self._hook_pool = None
        self._hook_pool_lock = threading.Lock()
        #: Loop iterations served (coarse liveness counter for tests).
        self.loops = 0
        #: Last exception raised by a readiness/timer/submitted
        #: callback (callbacks must not kill the loop; this is the
        #: debugging breadcrumb when one misbehaves).
        self.last_callback_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Reactor":
        with self._lock:
            if self._started or self._closed:
                return self
            self._started = True
        self._thread.start()
        return self

    @property
    def closed(self) -> bool:
        return self._closed

    def in_loop(self) -> bool:
        return threading.current_thread() is self._thread

    def stop(self) -> None:
        """Stop the loop and its executors; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wakeup()
        if self._started and not self.in_loop():
            self._thread.join(timeout=5.0)
        self.dispatcher.close()
        with self._hook_pool_lock:
            pool = self._hook_pool
            self._hook_pool = None
        if pool is not None:
            pool.shutdown(wait=False)
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass

    # -- scheduling ----------------------------------------------------------

    def submit(self, fn: Callable, *args) -> bool:
        """Schedule ``fn(*args)`` on the loop thread.

        Returns False (and does nothing) once the reactor is stopped —
        shutdown is best-effort, like a closed queue's ``put``.
        """
        with self._lock:
            if self._closed:
                return False
            self._pending.append((fn, args, time.perf_counter()))
        self._wakeup()
        return True

    def call_later(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn()`` on the loop thread after ``delay`` seconds."""
        timer = Timer(time.monotonic() + max(0.0, delay), fn)
        with self._lock:
            if self._closed:
                timer.cancelled = True
                return timer
            heapq.heappush(
                self._timers, (timer.when, next(self._timer_seq), timer)
            )
        self._wakeup()
        return timer

    def run_hook(self, fn: Callable, *args) -> None:
        """Run a potentially-blocking callback on the hook pool."""
        from concurrent.futures import ThreadPoolExecutor

        with self._hook_pool_lock:
            if self._closed:
                return
            if self._hook_pool is None:
                self._hook_pool = ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix=f"{self.name}-hook"
                )
            self._hook_pool.submit(fn, *args)

    # -- fd registration (loop thread only) ----------------------------------

    def register(self, sock, events: int, callback) -> None:
        self._selector.register(sock, events, callback)

    def modify(self, sock, events: int, callback) -> None:
        self._selector.modify(sock, events, callback)

    def unregister(self, sock) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass

    # -- the loop ------------------------------------------------------------

    def _wakeup(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (OSError, ValueError):
            pass

    def _drain_wakeup(self, mask: int) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    def _next_timeout(self) -> Optional[float]:
        with self._lock:
            if self._pending:
                return 0.0
            while self._timers and self._timers[0][2].cancelled:
                heapq.heappop(self._timers)
            if self._timers:
                return max(0.0, self._timers[0][0] - time.monotonic())
        return None

    def _run(self) -> None:
        while not self._closed:
            timeout = self._next_timeout()
            try:
                events = self._selector.select(timeout)
            except OSError:
                if self._closed:
                    return
                continue
            self.loops += 1
            if self._closed:
                return
            for key, mask in events:
                try:
                    key.data(mask)
                except Exception as exc:  # noqa: BLE001 - loop must survive
                    self._note_callback_error(exc)
            self._run_timers()
            self._run_pending()

    def _run_timers(self) -> None:
        now = time.monotonic()
        due: List[Timer] = []
        with self._lock:
            while self._timers and self._timers[0][0] <= now:
                _, _, timer = heapq.heappop(self._timers)
                if not timer.cancelled:
                    due.append(timer)
        record = obs.enabled()
        for timer in due:
            if record:
                obs.REGISTRY.histogram("reactor_loop_lag_seconds").observe(
                    max(0.0, now - timer.when)
                )
            try:
                timer.fn()
            except Exception as exc:  # noqa: BLE001 - loop must survive
                self._note_callback_error(exc)

    def _run_pending(self) -> None:
        with self._lock:
            batch = list(self._pending)
            self._pending.clear()
        record = obs.enabled()
        started = time.perf_counter()
        for fn, args, enqueued in batch:
            if record:
                obs.REGISTRY.histogram("reactor_loop_lag_seconds").observe(
                    max(0.0, started - enqueued)
                )
            try:
                fn(*args)
            except Exception as exc:  # noqa: BLE001 - loop must survive
                self._note_callback_error(exc)

    def _note_callback_error(self, exc: BaseException) -> None:
        if obs.enabled():
            obs.REGISTRY.counter(
                "reactor_callback_errors_total", reactor=self.name
            ).inc()
        self.last_callback_error = exc


class _AsyncCall:
    __slots__ = ("method", "callback", "timer")

    def __init__(self, method: str, callback, timer: Optional[Timer]):
        self.method = method
        self.callback = callback
        self.timer = timer


class AioConnection:
    """A reconnecting framed JSON-RPC peer on a :class:`Reactor`.

    Callback contract: ``call_async`` callbacks run **on the loop
    thread** as ``callback(result, error)`` with exactly one of the two
    set (``error`` is an exception instance).  ``on_notification`` runs
    on the reactor's dispatcher thread; ``on_reconnect`` hooks run on
    the hook pool (they may issue blocking calls on this connection).
    """

    def __init__(
        self,
        host: str,
        port: int,
        reactor: Reactor,
        policy: Optional[RetryPolicy] = None,
        name: str = "aio-rpc",
        on_notification: Optional[Callable[[dict], None]] = None,
        on_connect: Optional[Callable[[], None]] = None,
        error_type: type = ReproError,
        high_watermark: int = HIGH_WATERMARK,
        low_watermark: int = LOW_WATERMARK,
    ):
        self.host = host
        self.port = port
        self.reactor = reactor
        self.policy = policy or RetryPolicy()
        self.name = name
        self.error_type = error_type
        self._on_notification = on_notification
        #: ``on_connect(conn)`` runs on the **loop thread** immediately
        #: after every successful connect (first and re-), before any
        #: queued producer calls are dispatched — session setup issued
        #: here via :meth:`call_now` is guaranteed to be the first
        #: frames on the fresh connection (e.g. the farm's
        #: ``bind_device``).  It receives the connection because the
        #: first connect can complete before the constructor returns.
        self._on_connect = on_connect
        self._on_reconnect: List[Callable[[], None]] = []
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark

        # Loop-thread state.
        self._sock: Optional[socket.socket] = None
        self._connecting = False
        self._connect_timer: Optional[Timer] = None
        self._inbuf = b""
        self._outbuf = bytearray()
        self._paused = False
        self._drain_cbs: List[Callable[[], None]] = []
        self._pending: Dict[int, _AsyncCall] = {}
        self._next_id = 0
        self._delays = None
        self._ever_connected = False
        self._hb_inflight = False

        # Cross-thread state.
        self._cond = threading.Condition()
        self._state = RETRYING
        self._closed = False

        # Health history, mirroring ResilientConnection.
        self.transitions: List[str] = []
        self.connect_attempts = 0
        self.reconnects = 0
        self.retry_count = 0
        self.last_error: Optional[str] = None

        reactor.start()
        reactor.submit(self._begin_connect)
        if self.policy.heartbeat_interval > 0:
            reactor.call_later(
                self.policy.heartbeat_interval, self._heartbeat
            )

    # -- state (thread-safe) -------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def connected(self) -> bool:
        return self._state == CONNECTED

    @property
    def send_buffer_bytes(self) -> int:
        """Unsent outbound bytes (the per-device backlog gauge)."""
        return len(self._outbuf)

    @property
    def writable(self) -> bool:
        """False while the outbound buffer is past the high watermark."""
        return len(self._outbuf) < self.high_watermark

    def wait_connected(self, timeout: Optional[float] = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._state not in (CONNECTED, BROKEN, CLOSED):
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return self._state == CONNECTED

    def note_event(self, tag: str) -> None:
        self.transitions.append(tag)

    def health(self) -> Dict[str, object]:
        return {
            "peer": f"{self.host}:{self.port}",
            "state": self._state,
            "transitions": list(self.transitions),
            "connect_attempts": self.connect_attempts,
            "reconnects": self.reconnects,
            "retry_count": self.retry_count,
            "last_error": self.last_error,
            "send_buffer_bytes": len(self._outbuf),
        }

    def on_reconnect(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` (on the hook pool) after each successful
        *re*-connect; it may issue blocking calls on this connection."""
        self._on_reconnect.append(callback)

    def on_drain(self, callback: Callable[[], None]) -> None:
        """One-shot: run ``callback`` on the loop thread once the write
        buffer falls below the low watermark (immediately if already
        there)."""

        def arm():
            if self.writable and not self._paused:
                callback()
            else:
                self._drain_cbs.append(callback)

        self.reactor.submit(arm)

    def _set_state(self, state: str) -> None:
        with self._cond:
            if state == self._state:
                return
            self._state = state
            self.transitions.append(state)
            self._cond.notify_all()
        if obs.enabled():
            obs.REGISTRY.counter(
                "net_transitions_total", conn=self.name, state=state
            ).inc()

    def _note_error(self, exc: BaseException) -> None:
        self.last_error = str(exc) or type(exc).__name__

    # -- calls (thread-safe) -------------------------------------------------

    def call_async(
        self,
        method: str,
        params,
        callback: Callable,
        timeout: Optional[float] = None,
    ) -> None:
        """Issue a request; ``callback(result, error)`` fires on the
        loop thread when the response, a per-call deadline, or a
        transport loss resolves it.  A connection that is not currently
        usable fails the call immediately with
        :class:`ConnectionLostError` — backpressure-aware callers park
        on :meth:`wait_connected` or a reconnect hook instead."""
        self.reactor.submit(
            self._start_call_on_loop, method, params, callback, timeout
        )

    def call_now(
        self,
        method: str,
        params,
        callback: Callable,
        timeout: Optional[float] = None,
    ) -> None:
        """:meth:`call_async` without the cross-thread hop — **loop
        thread only**.  From an ``on_connect`` hook this puts the
        request on the wire ahead of anything queued via ``submit``."""
        self._start_call_on_loop(method, params, callback, timeout)

    def call(
        self,
        method: str,
        params,
        retryable: bool = False,
        timeout: Optional[float] = None,
    ) -> object:
        """Blocking wrapper over :meth:`call_async` with the resilient
        transport's contract: waits out reconnects up to the call
        timeout, auto-reissues ``retryable`` (idempotent) methods whose
        transport died mid-call, never auto-retries mutations."""
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.policy.call_timeout
        )
        while True:
            self._check_usable(method)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ProtocolError(f"timeout waiting for {method} response")
            if not self.wait_connected(remaining):
                self._check_usable(method)
                raise ProtocolError(f"timeout waiting for {method} response")
            box: dict = {}
            done = threading.Event()

            def resolve(result, error, box=box, done=done):
                box["result"] = result
                box["error"] = error
                done.set()

            remaining = max(0.001, deadline - time.monotonic())
            self.call_async(method, params, resolve, timeout=remaining)
            # The reactor owns the per-call deadline; the grace margin
            # only covers a stopped reactor.
            if not done.wait(remaining + 2.0):
                raise ProtocolError(f"timeout waiting for {method} response")
            error = box.get("error")
            if error is None:
                return box.get("result")
            if isinstance(error, ConnectionLostError) and retryable:
                continue
            raise error

    def _check_usable(self, method: str) -> None:
        if self._closed or self._state == CLOSED:
            raise ConnectionLostError(f"connection closed (calling {method})")
        if self._state == BROKEN:
            raise ConnectionLostError(
                f"connection broken after {self.retry_count} "
                f"reconnect attempt(s) (calling {method}): {self.last_error}"
            )

    # -- loop-side call machinery --------------------------------------------

    def _start_call_on_loop(self, method, params, callback, timeout) -> None:
        if self._closed or self._state in (BROKEN, CLOSED):
            callback(
                None,
                ConnectionLostError(f"connection closed (calling {method})"),
            )
            return
        if self._state != CONNECTED or self._sock is None:
            callback(
                None,
                ConnectionLostError(
                    f"connection lost sending {method} (reconnecting)"
                ),
            )
            return
        self._next_id += 1
        request_id = self._next_id
        timer = None
        if timeout is not None:
            timer = self.reactor.call_later(
                timeout, lambda: self._call_timed_out(request_id)
            )
        self._pending[request_id] = _AsyncCall(method, callback, timer)
        try:
            self._send_on_loop(make_request(method, params, request_id))
        except ProtocolError as exc:
            # Frame too large — a caller bug, not a transport fault.
            call = self._pending.pop(request_id, None)
            if call is not None:
                if call.timer is not None:
                    call.timer.cancel()
                callback(None, exc)

    def _call_timed_out(self, request_id: int) -> None:
        call = self._pending.pop(request_id, None)
        if call is not None:
            call.callback(
                None,
                ProtocolError(
                    f"timeout waiting for {call.method} response"
                ),
            )

    def _resolve_call(self, request_id, result, error) -> None:
        call = self._pending.pop(request_id, None)
        if call is None:
            return
        if call.timer is not None:
            call.timer.cancel()
        if error is not None:
            call.callback(None, self.error_type(str(error)))
        else:
            call.callback(result, None)

    def _fail_pending(self, why: str) -> None:
        pending = list(self._pending.items())
        self._pending.clear()
        for _, call in pending:
            if call.timer is not None:
                call.timer.cancel()
            call.callback(
                None,
                ConnectionLostError(
                    f"connection lost awaiting {call.method} response: {why}"
                ),
            )

    # -- transport (loop thread only) ----------------------------------------

    def _begin_connect(self) -> None:
        if self._closed:
            return
        self.connect_attempts += 1
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        err = sock.connect_ex((self.host, self.port))
        if err != 0 and err not in _EINPROGRESS:
            sock.close()
            self._retry_later(OSError(err, errno.errorcode.get(err, "?")))
            return
        self._sock = sock
        self._connecting = True
        self.reactor.register(sock, selectors.EVENT_WRITE, self._on_io)
        self._connect_timer = self.reactor.call_later(
            self.policy.connect_timeout, self._connect_timed_out
        )

    def _connect_timed_out(self) -> None:
        if self._connecting:
            self._transport_error(
                OSError(errno.ETIMEDOUT, "connect timed out")
            )

    def _finish_connect(self) -> None:
        sock = self._sock
        err = sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
        if err != 0:
            self._transport_error(
                OSError(err, errno.errorcode.get(err, "?"))
            )
            return
        if sock.getsockname() == sock.getpeername():
            # TCP self-connection (see ResilientConnection._connect).
            self._transport_error(
                ConnectionError("refusing TCP self-connection")
            )
            return
        self._connecting = False
        if self._connect_timer is not None:
            self._connect_timer.cancel()
            self._connect_timer = None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._delays = None
        was_reconnect = self._ever_connected
        self._ever_connected = True
        if was_reconnect:
            self.reconnects += 1
            if obs.enabled():
                obs.REGISTRY.counter(
                    "net_reconnects_total", conn=self.name
                ).inc()
        self._update_interest()
        self._set_state(CONNECTED)
        if self._on_connect is not None:
            # Synchronous, on the loop thread: frames issued here (via
            # call_now) precede every call queued behind the reconnect.
            self._on_connect(self)
        if was_reconnect:
            for callback in list(self._on_reconnect):
                self.reactor.run_hook(self._run_reconnect_hook, callback)

    def _run_reconnect_hook(self, callback: Callable[[], None]) -> None:
        try:
            callback()
        except ReproError as exc:
            # Racing a second failure is normal; the next successful
            # reconnect runs the hook again.
            self._note_error(exc)

    def _update_interest(self) -> None:
        if self._sock is None:
            return
        events = selectors.EVENT_READ
        if self._outbuf or self._connecting:
            events |= selectors.EVENT_WRITE
        self.reactor.modify(self._sock, events, self._on_io)

    def _on_io(self, mask: int) -> None:
        if self._sock is None:
            return
        if self._connecting:
            if mask & selectors.EVENT_WRITE:
                self._finish_connect()
            return
        if mask & selectors.EVENT_READ:
            self._do_read()
        if self._sock is not None and (mask & selectors.EVENT_WRITE):
            self._do_write()

    def _do_read(self) -> None:
        try:
            data = self._sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self._transport_error(exc)
            return
        if not data:
            self._transport_error(
                ConnectionLostError("peer closed connection")
            )
            return
        try:
            messages, self._inbuf = decode_frames(self._inbuf + data)
        except ProtocolError as exc:
            self._transport_error(exc)
            return
        for message in messages:
            try:
                kind = classify(message)
            except ProtocolError:
                continue
            if kind == "response":
                self._resolve_call(
                    message["id"],
                    message.get("result"),
                    message.get("error"),
                )
            elif kind == "notification" and self._on_notification is not None:
                self.reactor.dispatcher.submit(
                    self._on_notification, message
                )

    def _do_write(self) -> None:
        if not self._outbuf:
            self._update_interest()
            return
        try:
            sent = self._sock.send(memoryview(self._outbuf))
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self._transport_error(exc)
            return
        del self._outbuf[:sent]
        if not self._outbuf:
            self._update_interest()
        if self._paused and len(self._outbuf) <= self.low_watermark:
            self._paused = False
            drains, self._drain_cbs = self._drain_cbs, []
            for cb in drains:
                cb()

    def _send_on_loop(self, message: dict) -> None:
        frame = encode_frame(message)
        was_empty = not self._outbuf
        self._outbuf.extend(frame)
        if len(self._outbuf) >= self.high_watermark:
            self._paused = True
        if was_empty:
            self._update_interest()

    def _transport_error(self, exc: BaseException) -> None:
        self._note_error(exc)
        self._teardown_socket()
        self._fail_pending(str(exc) or type(exc).__name__)
        if self._closed:
            return
        self._set_state(RETRYING)
        if self._delays is None:
            self._delays = self.policy.delays()
        try:
            delay = next(self._delays)
        except StopIteration:
            self._set_state(BROKEN)
            return
        self.retry_count += 1
        self.reactor.call_later(delay, self._begin_connect)

    def _teardown_socket(self) -> None:
        if self._connect_timer is not None:
            self._connect_timer.cancel()
            self._connect_timer = None
        self._connecting = False
        sock, self._sock = self._sock, None
        self._inbuf = b""
        self._outbuf = bytearray()
        self._paused = False
        drains, self._drain_cbs = self._drain_cbs, []
        if sock is not None:
            self.reactor.unregister(sock)
            try:
                sock.close()
            except OSError:
                pass
        # Producers parked on the watermark must not wedge when the
        # transport dies: the buffer is gone, so they are "drained" —
        # their next send fails fast into the reconnect/breaker path.
        for cb in drains:
            cb()

    # -- heartbeat (loop thread only) ----------------------------------------

    def _heartbeat(self) -> None:
        if self._closed:
            return
        if self._state == CONNECTED and not self._hb_inflight:
            self._hb_inflight = True

            def done(result, error):
                self._hb_inflight = False
                if error is not None and self._state == CONNECTED:
                    self._note_error(error)
                    self._transport_error(error)

            self._start_call_on_loop(
                "echo",
                ["heartbeat"],
                done,
                min(self.policy.call_timeout, self.policy.heartbeat_interval),
            )
        self.reactor.call_later(
            self.policy.heartbeat_interval, self._heartbeat
        )

    # -- shutdown ------------------------------------------------------------

    def close(self) -> None:
        """Idempotent; fails all pending calls."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
        submitted = self.reactor.submit(self._close_on_loop)
        if not submitted:
            # Reactor already stopped: tear down inline (no loop-thread
            # races remain once the loop is gone).
            self._close_on_loop()

    def _close_on_loop(self) -> None:
        self._set_state(CLOSED)
        self._fail_pending("connection closed")
        self._teardown_socket()
