"""Fault-tolerant transport layer shared by all wire-protocol clients.

``repro.net`` packages the robustness mechanics the paper's
"full-stack" pitch presumes but the original prototype leaves to the
operator: retry policies with exponential backoff
(:class:`~repro.net.retry.RetryPolicy`), reconnecting RPC transport
(:class:`~repro.net.resilient.ResilientConnection`), and controlled
fault injection for tests and benchmarks
(:class:`~repro.net.faults.FaultInjector`), plus the event-loop
transport (:class:`~repro.net.aio.Reactor` /
:class:`~repro.net.aio.AioConnection`) that multiplexes thousands of
peer connections on one thread for fleet-scale fan-out.
"""

from repro.net.aio import AioConnection, Reactor
from repro.net.faults import FaultInjector
from repro.net.resilient import (
    BROKEN,
    CLOSED,
    CONNECTED,
    RETRYING,
    ResilientConnection,
)
from repro.net.retry import FAST_TEST_POLICY, RetryPolicy

__all__ = [
    "BROKEN",
    "CLOSED",
    "CONNECTED",
    "RETRYING",
    "FAST_TEST_POLICY",
    "AioConnection",
    "FaultInjector",
    "Reactor",
    "ResilientConnection",
    "RetryPolicy",
]
