"""Fault-tolerant transport layer shared by all wire-protocol clients.

``repro.net`` packages the robustness mechanics the paper's
"full-stack" pitch presumes but the original prototype leaves to the
operator: retry policies with exponential backoff
(:class:`~repro.net.retry.RetryPolicy`), reconnecting RPC transport
(:class:`~repro.net.resilient.ResilientConnection`), and controlled
fault injection for tests and benchmarks
(:class:`~repro.net.faults.FaultInjector`).
"""

from repro.net.faults import FaultInjector
from repro.net.resilient import (
    BROKEN,
    CLOSED,
    CONNECTED,
    RETRYING,
    ResilientConnection,
)
from repro.net.retry import FAST_TEST_POLICY, RetryPolicy

__all__ = [
    "BROKEN",
    "CLOSED",
    "CONNECTED",
    "RETRYING",
    "FAST_TEST_POLICY",
    "FaultInjector",
    "ResilientConnection",
    "RetryPolicy",
]
