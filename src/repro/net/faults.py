"""Toxiproxy-style fault injection for the wire protocols.

:class:`FaultInjector` is a TCP proxy that sits between a client and a
real server and misbehaves on command:

* ``set_latency`` — delay every forwarded chunk (slow network);
* ``set_blackhole`` — swallow bytes while keeping connections open
  (the worst failure mode: neither end sees an error);
* ``set_stall`` — stop *reading* from both ends while keeping
  connections open, so the peers' kernel send buffers fill and their
  ``send``/``sendall`` calls wedge (a peer that went catatonic —
  distinct from blackhole, which still drains the sender);
* ``sever`` — abruptly close every live connection (peer crash);
* ``close_after`` — close each new connection after N forwarded bytes,
  guaranteeing a cut mid-message;
* ``garble_next`` — overwrite the next 4 bytes of a stream, corrupting
  a frame's length prefix so the receiver sees a framing error.

Tests point a :class:`~repro.net.resilient.ResilientConnection` at the
injector's address instead of the server's; benchmarks use it to
measure recovery latency under controlled failures.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional, Tuple

_CHUNK = 65536


class _Pipe:
    """One proxied connection: two pump threads, shared fault state."""

    def __init__(
        self,
        injector: "FaultInjector",
        client: socket.socket,
        upstream: socket.socket,
    ):
        self.injector = injector
        self.client = client
        self.upstream = upstream
        self.alive = True
        # Per-connection close-after budget, captured at accept time.
        self.close_budget = injector._take_close_budget()

    def start(self) -> None:
        threading.Thread(
            target=self._pump, args=(self.client, self.upstream, "up"),
            daemon=True,
        ).start()
        threading.Thread(
            target=self._pump, args=(self.upstream, self.client, "down"),
            daemon=True,
        ).start()

    def _pump(self, src: socket.socket, dst: socket.socket, direction: str) -> None:
        try:
            while self.alive:
                # Stall: stop reading entirely.  TCP flow control does
                # the rest — the peer's send buffer fills and its sends
                # block, with the connection still "up".
                while self.alive and self.injector._stalled:
                    time.sleep(0.01)
                if not self.alive:
                    break
                try:
                    chunk = src.recv(_CHUNK)
                except OSError:
                    break
                if not chunk:
                    break
                chunk = self.injector._apply_faults(self, chunk, direction)
                if chunk is None:  # close_after tripped mid-chunk
                    break
                if not chunk:  # blackholed
                    continue
                try:
                    dst.sendall(chunk)
                except OSError:
                    break
        finally:
            self.close()

    def close(self) -> None:
        self.alive = False
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self.injector._forget(self)


class FaultInjector:
    """TCP proxy with switchable faults; see module docstring."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream = (upstream_host, upstream_port)
        self.host = host
        self.port = port
        self._listener: Optional[socket.socket] = None
        self._pipes: List[_Pipe] = []
        self._lock = threading.Lock()
        self._running = False

        self._latency = 0.0
        self._blackhole = False
        self._stalled = False
        self._garble: dict = {"up": 0, "down": 0}
        self._close_after: Optional[int] = None

        self.connections_accepted = 0
        self.bytes_up = 0
        self.bytes_down = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("injector not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "FaultInjector":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(32)
        self._listener = listener
        self._running = True
        threading.Thread(
            target=self._accept_loop, name="fault-injector", daemon=True
        ).start()
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                client, _ = self._listener.accept()
            except OSError:
                break
            try:
                upstream = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                client.close()
                continue
            for sock in (client, upstream):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            pipe = _Pipe(self, client, upstream)
            with self._lock:
                self._pipes.append(pipe)
                self.connections_accepted += 1
            pipe.start()

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            pipes = list(self._pipes)
        for pipe in pipes:
            pipe.close()

    def _forget(self, pipe: _Pipe) -> None:
        with self._lock:
            if pipe in self._pipes:
                self._pipes.remove(pipe)

    def __enter__(self) -> "FaultInjector":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- fault controls ------------------------------------------------------

    def set_latency(self, seconds: float) -> None:
        self._latency = max(0.0, seconds)

    def set_blackhole(self, enabled: bool) -> None:
        self._blackhole = enabled

    def set_stall(self, enabled: bool) -> None:
        """Freeze the proxy: stop reading from both ends (connections
        stay open).  Peers' sends back up into their kernel buffers and
        eventually wedge — the failure mode a bounded send timeout
        exists to catch."""
        self._stalled = enabled

    def sever(self) -> int:
        """Abruptly close every live proxied connection; returns count."""
        with self._lock:
            pipes = list(self._pipes)
        for pipe in pipes:
            pipe.close()
        return len(pipes)

    def garble_next(self, direction: str = "down") -> None:
        """Corrupt the next 4 bytes flowing ``direction`` ('up' toward
        the server, 'down' toward the client) — a frame length prefix
        becomes garbage and the receiver sees a framing error."""
        with self._lock:
            self._garble[direction] += 1

    def close_after(self, n_bytes: int) -> None:
        """Each subsequently accepted connection is cut after forwarding
        ``n_bytes`` upstream — guaranteed mid-message for any frame that
        straddles the budget."""
        self._close_after = n_bytes

    # -- pump hooks ----------------------------------------------------------

    def _take_close_budget(self) -> Optional[int]:
        return self._close_after

    def _apply_faults(self, pipe: _Pipe, chunk: bytes, direction: str):
        if self._latency > 0:
            time.sleep(self._latency)
        if direction == "up":
            self.bytes_up += len(chunk)
        else:
            self.bytes_down += len(chunk)
        with self._lock:
            if self._garble[direction] > 0:
                self._garble[direction] -= 1
                chunk = b"\xff\xff\xff\xff" + chunk[4:]
        if direction == "up" and pipe.close_budget is not None:
            if len(chunk) >= pipe.close_budget:
                # Forward a partial chunk, then cut the connection so
                # the peer is left holding a truncated frame.
                partial = chunk[: max(0, pipe.close_budget - 1)]
                if partial:
                    try:
                        pipe.upstream.sendall(partial)
                    except OSError:
                        pass
                return None
            pipe.close_budget -= len(chunk)
        if self._blackhole:
            return b""
        return chunk
