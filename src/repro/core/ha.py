"""Multi-controller HA: leased leadership and warm-standby takeover.

Two pieces, composable with everything the stack already has:

* :class:`CheckpointFollower` — a **warm standby's engine**.  It tails
  the shared ``state_dir`` checkpoint chain the leader writes
  (:meth:`~repro.core.controller.NerpaController.save_checkpoint`):
  the full snapshot restores a runtime, each new delta segment is
  replayed through the normal transaction path as the leader cuts it.
  The follower opens the chain **read-only** (``heal=False`` — see
  :class:`~repro.dlog.checkpoint.CheckpointStore`): it must never
  unlink a segment, because an "invalid" tail may be the anchor of a
  newer chain the concurrent writer just compacted.

* :class:`HAController` — the **leader-election state machine** around
  a :class:`~repro.core.controller.NerpaController`.  Leadership is a
  lease row in the management database's reserved ``_Lease`` table
  (:mod:`repro.mgmt.lease` — RFC 7047 ``lock``/``steal``/``unlock``
  semantics over plain ``transact``), watched with an ordinary
  monitor for fast takeover on graceful release.  Every acquisition
  increments the **fencing epoch**; the promoted controller stamps it
  on all device writes, and devices reject epochs older than the
  highest seen — so a paused-then-resumed deposed leader cannot
  corrupt device state (its writes fail with
  :class:`~repro.p4runtime.api.FencedWriteError`, surfaced at its own
  ``drain()``).

Roles::

        acquire lease (epoch N)
    standby ──────────────────────► leader
        ▲   follower.detach() →         │ renew every renew_interval
        │   NerpaController(            │
        │     fencing_epoch=N,          │ renew fails (deposed)
        │     warm_source=...)          ▼
        └────────────────────────── demoted
             fresh follower,  controller.stop()

Timestamps for lease operations come from an injectable ``clock`` so
tests drive expiry deterministically; all waiting is event-based
(``poke()`` / the lease-table monitor), never bare sleeps.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.controller import NerpaController
from repro.core.pipeline import NerpaProject
from repro.dlog import checkpoint as ckpt
from repro.errors import ReproError, TransactionError
from repro.mgmt.lease import LEASE_TABLE
from repro.mgmt.monitor import MonitorSpec

_CKPT_NAME = "controller.ckpt"


class CheckpointFollower:
    """Keeps a runtime warm by tailing a shared checkpoint chain.

    ``poll()`` absorbs whatever the leader has persisted since the last
    call: a new full snapshot reloads the runtime from scratch, new
    delta segments replay incrementally.  ``detach()`` hands the warm
    runtime (plus the chain's controller bookkeeping) to a promoting
    :class:`~repro.core.controller.NerpaController` via its
    ``warm_source`` parameter.
    """

    def __init__(
        self,
        project: NerpaProject,
        state_dir: str,
        shards: int = 1,
        shard_workers: str = "process",
    ):
        self.project = project
        self.state_dir = state_dir
        self.shards = shards
        self.shard_workers = shard_workers
        # Read-only view of the chain: a follower must never heal.
        self.store = ckpt.CheckpointStore(
            state_dir, _CKPT_NAME, project.program.program_hash, heal=False
        )
        self.runtime = None
        #: Controller bookkeeping (mcast/seq/device_epochs) as of the
        #: newest absorbed checkpoint — what a warm takeover restores.
        self.warm_state: Optional[dict] = None
        self._full_sig: Optional[Tuple[int, int, int]] = None
        self._applied_txns = 0
        self._next_segment = 1
        # Metrics.
        self.polls = 0
        self.full_reloads = 0
        self.segments_replayed = 0

    @property
    def ready(self) -> bool:
        """True once a compatible checkpoint has been absorbed."""
        return self.runtime is not None

    def _full_signature(self) -> Optional[Tuple[int, int, int]]:
        # Atomic replace gives the snapshot a fresh inode; (inode,
        # mtime_ns, size) therefore changes on every save_full and the
        # stat itself never reads a torn file.
        try:
            stat = os.stat(self.store.full_path)
        except OSError:
            return None
        return (stat.st_ino, stat.st_mtime_ns, stat.st_size)

    def poll(self) -> bool:
        """Absorb new checkpoint state; True if anything was applied."""
        self.polls += 1
        sig = self._full_signature()
        if sig is None:
            return False
        if sig != self._full_sig:
            return self._reload_full(sig)
        if self.runtime is None:
            return False
        return self._tail_segments()

    def _reload_full(self, sig: Tuple[int, int, int]) -> bool:
        try:
            full, segments = self.store.load_chain(
                lambda data: int(data.get("engine_txns", 0))
            )
        except ckpt.CheckpointError:
            return False
        if full is None:
            return False
        engine_ckpt = full.get("engine")
        if segments:
            engine_ckpt = {
                "delta_chain": True,
                "full": engine_ckpt,
                "segments": segments,
            }
        runtime = self.project.program.start(
            checkpoint=engine_ckpt,
            shards=self.shards,
            shard_workers=self.shard_workers,
        )
        if not runtime.restored:
            # Hash mismatch (program changed under us): keep whatever
            # we had; a takeover will cold-start and still be correct.
            self._close_runtime(runtime)
            return False
        self._close_runtime(self.runtime)
        self.runtime = runtime
        self._full_sig = sig
        self.full_reloads += 1
        warm = {
            key: full[key]
            for key in ("mcast", "seq", "device_epochs")
            if key in full
        }
        self._absorb_meta(warm, segments)
        self.warm_state = warm
        # load_chain anchored the store at the chain's end; remember
        # where the tail continues.
        self._applied_txns = self.store._anchor or 0
        self._next_segment = self.store._next_index
        if obs.enabled():
            obs.REGISTRY.counter("ha_follower_full_reloads_total").inc()
        return True

    def _tail_segments(self) -> bool:
        segments = self.store.load_segments(
            self._applied_txns, start_index=self._next_segment
        )
        if not segments:
            return False
        ckpt.replay_segments(
            self.runtime, segments, self.store.program_hash
        )
        self.segments_replayed += len(segments)
        self._absorb_meta(self.warm_state, segments)
        self._applied_txns = self.store._anchor or self._applied_txns
        self._next_segment = self.store._next_index
        if obs.enabled():
            obs.REGISTRY.counter("ha_follower_segments_total").inc(
                len(segments)
            )
        return True

    @staticmethod
    def _absorb_meta(warm: Optional[dict], segments: List[dict]) -> None:
        if warm is None or not segments:
            return
        meta = segments[-1].get("meta") or {}
        for key in ("mcast", "seq", "device_epochs"):
            if key in meta:
                warm[key] = meta[key]

    def detach(self) -> Tuple[object, dict]:
        """Hand over ``(runtime, warm_state)`` for a promotion and
        forget them (the controller owns the runtime's lifecycle now).
        ``(None, {})`` when nothing was absorbed — the promotion then
        cold-starts with reconcile, which is always correct."""
        runtime, warm = self.runtime, self.warm_state
        self.runtime = None
        self.warm_state = None
        return runtime, dict(warm or {})

    @staticmethod
    def _close_runtime(runtime) -> None:
        if runtime is None:
            return
        close = getattr(runtime, "close", None)
        if close is not None:
            try:
                close()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass

    def close(self) -> None:
        self._close_runtime(self.runtime)
        self.runtime = None
        self.warm_state = None


class HAController:
    """One replica of a highly-available controller pair (or fleet).

    Runs a loop thread that is either **standby** — tailing the shared
    checkpoint chain and trying to acquire the leadership lease every
    ``poll_interval`` — or **leader** — renewing the lease every
    ``renew_interval`` behind a running
    :class:`~repro.core.controller.NerpaController`.  A failed renewal
    demotes immediately (stop the controller, resume following); a
    successful acquisition promotes via the controller's warm-start
    path with the follower's runtime as ``warm_source``.

    ``mgmt`` is a :class:`~repro.mgmt.database.Database` or
    :class:`~repro.mgmt.client.ManagementClient` — both expose the
    ``lease_*`` operations and a lease-table monitor, and both are
    accepted by ``NerpaController`` directly.
    """

    def __init__(
        self,
        project: NerpaProject,
        mgmt,
        devices,
        state_dir: str,
        lease_name: str = "nerpa-leader",
        owner: Optional[str] = None,
        ttl: float = 2.0,
        renew_interval: Optional[float] = None,
        poll_interval: Optional[float] = None,
        clock=time.time,
        controller_kwargs: Optional[dict] = None,
    ):
        self.project = project
        self.mgmt = mgmt
        self.devices = devices
        self.state_dir = state_dir
        self.lease_name = lease_name
        self.owner = owner or f"nerpa-{uuid.uuid4().hex[:8]}"
        self.ttl = ttl
        self.renew_interval = (
            renew_interval if renew_interval is not None else ttl / 3.0
        )
        self.poll_interval = (
            poll_interval if poll_interval is not None else ttl / 3.0
        )
        self.clock = clock
        self.controller_kwargs = dict(controller_kwargs or {})
        shards = self.controller_kwargs.get("shards", 1)
        shard_workers = self.controller_kwargs.get(
            "shard_workers", "process"
        )
        self._follower_args = (shards, shard_workers)

        self.controller: Optional[NerpaController] = None
        self.follower: Optional[CheckpointFollower] = None
        self.role = "standby"
        self.epoch: Optional[int] = None
        # Metrics.
        self.takeovers = 0
        self.takeover_seconds: Optional[float] = None
        self.renewals = 0
        self.lost_leaderships = 0

        self._wake = threading.Event()
        self._stop_event = threading.Event()
        self._role_events: Dict[str, threading.Event] = {
            "standby": threading.Event(),
            "leader": threading.Event(),
        }
        self._thread: Optional[threading.Thread] = None
        self._lease_monitor: Optional[Tuple[str, object]] = None
        self._release_on_stop = True

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "HAController":
        if self._thread is not None:
            raise ReproError("HA controller already started")
        self.follower = self._make_follower()
        self._watch_lease()
        self._set_role("standby")
        self._thread = threading.Thread(
            target=self._loop, name=f"nerpa-ha-{self.owner}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: the controller's stop hook releases the
        lease, so a standby takes over without waiting out the TTL."""
        self._shutdown(release=True)

    def kill(self) -> None:
        """Crash simulation: tear everything down **without** releasing
        the lease — a standby must wait out the TTL, exactly as it
        would for a dead process."""
        self._shutdown(release=False)

    def _shutdown(self, release: bool) -> None:
        self._release_on_stop = release
        self._stop_event.set()
        self._wake.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)
        self._thread = None
        self._unwatch_lease()
        controller, self.controller = self.controller, None
        if controller is not None:
            try:
                controller.stop()  # runs the lease-release hook
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
        if self.follower is not None:
            self.follower.close()
            self.follower = None

    def poke(self) -> None:
        """Wake the loop now (tests use this instead of sleeping)."""
        self._wake.set()

    @property
    def is_leader(self) -> bool:
        return self.role == "leader"

    def wait_for_role(self, role: str, timeout: float = 10.0) -> bool:
        return self._role_events[role].wait(timeout)

    def metrics(self) -> Dict[str, object]:
        out = {
            "role": self.role,
            "owner": self.owner,
            "epoch": self.epoch,
            "takeovers": self.takeovers,
            "takeover_seconds": self.takeover_seconds,
            "renewals": self.renewals,
            "lost_leaderships": self.lost_leaderships,
        }
        follower = self.follower
        if follower is not None:
            out["follower"] = {
                "ready": follower.ready,
                "polls": follower.polls,
                "full_reloads": follower.full_reloads,
                "segments_replayed": follower.segments_replayed,
            }
        return out

    # -- the role loop -------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop_event.is_set():
            if self.role == "standby":
                self._standby_tick()
            else:
                self._leader_tick()

    def _standby_tick(self) -> None:
        follower = self.follower
        if follower is not None:
            try:
                follower.poll()
            except Exception:  # noqa: BLE001 - keep following
                pass
        lease = None
        try:
            lease = self.mgmt.lease_acquire(
                self.lease_name, self.owner, self.ttl, now=self.clock()
            )
        except (ReproError, TransactionError, OSError):
            lease = None
        if self._stop_event.is_set():
            return
        if lease is not None and lease["owner"] == self.owner:
            self._promote(lease)
            return
        self._wake.clear()
        self._wake.wait(self.poll_interval)

    def _leader_tick(self) -> None:
        self._wake.clear()
        self._wake.wait(self.renew_interval)
        if self._stop_event.is_set():
            return
        renewed = False
        try:
            renewed = self.mgmt.lease_renew(
                self.lease_name,
                self.owner,
                self.epoch,
                self.ttl,
                now=self.clock(),
            )
        except (ReproError, TransactionError, OSError):
            renewed = False
        if renewed:
            self.renewals += 1
            if obs.enabled():
                obs.REGISTRY.counter("ha_lease_renewals_total").inc()
        else:
            self._demote()

    def _promote(self, lease: dict) -> None:
        started = time.perf_counter()
        self.epoch = int(lease["epoch"])
        runtime, warm = self.follower.detach()
        controller = NerpaController(
            self.project,
            self.mgmt,
            self.devices,
            state_dir=self.state_dir,
            fencing_epoch=self.epoch,
            warm_source=(runtime, warm),
            **self.controller_kwargs,
        )
        controller.on_stop(self._release_lease)
        try:
            controller.start(warm=True)
        except Exception:
            # A failed takeover must not wedge the replica as a
            # half-leader: drop the lease and resume following.
            try:
                controller.stop()
            except Exception:  # noqa: BLE001
                pass
            self._release_lease()
            self.epoch = None
            self.follower = self._make_follower()
            return
        self.controller = controller
        self.takeovers += 1
        self.takeover_seconds = time.perf_counter() - started
        if obs.enabled():
            obs.REGISTRY.counter("ha_takeovers_total").inc()
            obs.REGISTRY.histogram("ha_takeover_seconds").observe(
                self.takeover_seconds
            )
            obs.REGISTRY.gauge("ha_is_leader", owner=self.owner).set(1)
            obs.REGISTRY.gauge("ha_fencing_epoch").set(self.epoch)
        self._set_role("leader")

    def _demote(self) -> None:
        """The lease was lost (expired under us, or another replica's
        acquisition deposed this one): stop acting as leader *now* and
        resume following.  The stopped controller's writes were fenced
        the moment the successor acquired, so even in-flight batches
        cannot corrupt device state."""
        self.lost_leaderships += 1
        if obs.enabled():
            obs.REGISTRY.counter("ha_lease_losses_total").inc()
            obs.REGISTRY.gauge("ha_is_leader", owner=self.owner).set(0)
        controller, self.controller = self.controller, None
        self.epoch = None
        if controller is not None:
            try:
                controller.stop()
            except Exception:  # noqa: BLE001 - must reach standby
                pass
        self.follower = self._make_follower()
        self._set_role("standby")

    # -- plumbing ------------------------------------------------------------

    def _make_follower(self) -> CheckpointFollower:
        shards, shard_workers = self._follower_args
        return CheckpointFollower(
            self.project,
            self.state_dir,
            shards=shards,
            shard_workers=shard_workers,
        )

    def _release_lease(self) -> None:
        if not self._release_on_stop:
            return
        try:
            self.mgmt.lease_release(self.lease_name, self.owner)
        except (ReproError, TransactionError, OSError):
            pass

    def _set_role(self, role: str) -> None:
        self.role = role
        for name, event in self._role_events.items():
            if name == role:
                event.set()
            else:
                event.clear()

    def _on_lease_update(self, _updates) -> None:
        # A lease-table commit: a graceful release or a peer's
        # acquisition.  Wake a standby so takeover latency is bounded
        # by delivery, not by poll_interval.  The leader's own renewals
        # land here too — do not wake it, or renew would busy-loop.
        if self.role != "leader":
            self._wake.set()

    def _watch_lease(self) -> None:
        if hasattr(self.mgmt, "add_monitor"):  # local Database
            monitor, _ = self.mgmt.add_monitor(
                MonitorSpec({LEASE_TABLE: None}), self._on_lease_update
            )
            self._lease_monitor = ("local", monitor)
        else:  # ManagementClient
            monitor_id, _ = self.mgmt.monitor(
                {LEASE_TABLE: None}, self._on_lease_update
            )
            self._lease_monitor = ("remote", monitor_id)

    def _unwatch_lease(self) -> None:
        watch, self._lease_monitor = self._lease_monitor, None
        if watch is None:
            return
        kind, handle = watch
        try:
            if kind == "local":
                self.mgmt.remove_monitor(handle)
            else:
                self.mgmt.monitor_cancel(handle)
        except (ReproError, TransactionError, OSError):
            pass

    def __enter__(self) -> "HAController":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
