"""Bounded coalescing queues connecting the pipeline stages.

A :class:`CoalescingQueue` is a FIFO with three twists:

* **tail coalescing** — if the newest queued item can absorb an
  incoming one (``tail.coalesce(item)`` returns True), the put merges
  instead of appending.  While a consumer is busy, every burst
  collapses into the single pending tail item, which is where the
  pipeline's batching win comes from: a slow device accumulates *one*
  merged batch, not an unbounded backlog.
* **bounded with backpressure** — non-mergeable items block the
  producer once ``maxlen`` distinct items are pending (coalescible
  traffic effectively never fills the queue, so in practice only a
  flood of control items can push back).
* **join accounting** — ``queue.Queue``-style ``task_done``/``join``
  so :meth:`NerpaController.drain` can wait for quiescence stage by
  stage.

Control items (engine tasks, device resyncs) simply return ``False``
from ``coalesce`` and act as barriers: later write batches never merge
across them, preserving order.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, List, Optional

from repro.errors import ReproError


class PipelineStalledError(ReproError):
    """A drain deadline expired with work still in flight."""


class CoalescingQueue:
    """Bounded FIFO with tail coalescing and join accounting."""

    def __init__(
        self,
        name: str = "queue",
        maxlen: int = 512,
        merge: bool = True,
        on_ready: Optional[Callable[[], None]] = None,
    ):
        self.name = name
        self.maxlen = maxlen
        #: ``merge=False`` turns tail coalescing off (every put appends)
        #: — the unbatched baseline for the pipeline benchmark.
        self.merge = merge
        #: Called (outside the queue lock) after a put appends a new
        #: distinct item.  The async apply plane uses this to schedule
        #: the device's state machine on the reactor instead of parking
        #: a writer thread in :meth:`pop`.  A merge into the queued
        #: tail does not notify: the tail's own append already did, and
        #: its consumer has not popped it yet.
        self.on_ready = on_ready
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._all_done = threading.Condition(self._lock)
        self._unfinished = 0
        self._closed = False
        #: Number of puts absorbed by a queued tail item (coalescing
        #: effectiveness; surfaced through controller metrics).
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def unfinished(self) -> int:
        return self._unfinished

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item, supersedes: Optional[Callable] = None) -> None:
        """Enqueue ``item``, merging into the tail when possible.

        ``supersedes`` (a predicate over queued items) drops every
        pending item it matches before enqueueing — used by resync
        tasks, whose full-sync subsumes any queued incremental batches.
        Blocks while the queue holds ``maxlen`` distinct items; puts on
        a closed queue are dropped (shutdown is best-effort).
        """
        with self._lock:
            if self._closed:
                return
            if supersedes is not None:
                kept = deque()
                for queued in self._items:
                    if supersedes(queued):
                        self._unfinished -= 1
                    else:
                        kept.append(queued)
                if len(kept) < len(self._items):
                    self._items = kept
                    # Freed space: wake producers blocked on a full
                    # queue (they would otherwise sleep until the
                    # consumer's next pop).
                    self._not_full.notify_all()
            # The coalesce attempt must be re-run every time the
            # producer wakes from backpressure: the tail it saw before
            # sleeping may have been popped, and another producer may
            # have appended a mergeable one — appending unconditionally
            # after the wait would give a mergeable batch a distinct
            # slot (and a spurious extra wire write).
            while True:
                if self.merge and self._items:
                    tail = self._items[-1]
                    fold = getattr(tail, "coalesce", None)
                    if fold is not None and fold(item):
                        self.coalesced += 1
                        return
                if len(self._items) < self.maxlen or self._closed:
                    break
                self._not_full.wait()
            if self._closed:
                return
            self._items.append(item)
            self._unfinished += 1
            self._not_empty.notify()
        ready = self.on_ready
        if ready is not None:
            ready()

    def pop(self, timeout: Optional[float] = None):
        """Dequeue the head; blocks. Returns ``None`` once the queue is
        closed and empty (or on timeout)."""
        with self._lock:
            while not self._items and not self._closed:
                if not self._not_empty.wait(timeout):
                    return None
            if not self._items:
                return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def pop_nowait(self):
        """Dequeue the head without blocking; ``None`` when empty.

        The async apply plane's per-device state machines use this from
        the reactor thread — they must never park the event loop.
        """
        with self._lock:
            if not self._items:
                return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def task_done(self) -> None:
        with self._lock:
            self._unfinished -= 1
            if self._unfinished <= 0:
                self._all_done.notify_all()

    def join(self, deadline: float) -> None:
        """Wait until every item ever put has been processed.

        ``deadline`` is an absolute ``time.monotonic`` instant; raises
        :class:`PipelineStalledError` when it passes first.
        """
        with self._lock:
            while self._unfinished > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise PipelineStalledError(
                        f"pipeline queue {self.name!r} did not drain "
                        f"({self._unfinished} item(s) in flight)"
                    )
                self._all_done.wait(remaining)

    def close(self) -> None:
        """Wake all waiters; pending items are abandoned."""
        with self._lock:
            self._closed = True
            self._items.clear()
            self._unfinished = 0
            self._not_empty.notify_all()
            self._not_full.notify_all()
            self._all_done.notify_all()

    def snapshot(self) -> List[object]:
        with self._lock:
            return list(self._items)
