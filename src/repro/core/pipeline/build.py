"""``nerpa_build``: compile the whole stack as one unit.

Takes the three artifacts the network programmer writes, generates the
bridging declarations, and typechecks everything together — the paper's
claim that "in the compilation process, Nerpa typechecks the data
definitions and database schema, ensuring that only well-formed
messages are exchanged" lands here: a P4 table whose key width doesn't
match what the rules produce, a rule writing a column that doesn't
exist, or a digest consumed with the wrong arity all fail the build
with a source-located diagnostic.
"""

from __future__ import annotations

from typing import Dict

from repro.core.codegen import GeneratedBindings, generate_declarations
from repro.dlog.engine import CompiledProgram, compile_program
from repro.errors import TypeCheckError
from repro.mgmt.schema import DatabaseSchema
from repro.p4.ir import Pipeline, compile_p4


class NerpaProject:
    """A compiled full-stack program.

    Attributes:
        schema: the management-plane schema.
        pipeline: the compiled data-plane pipeline (shared P4Info).
        program: the compiled control-plane program (generated
            declarations + the programmer's rules).
        bindings: runtime value-conversion metadata.
        generated_source: the dlog text codegen produced (for LoC
            accounting and debugging).
        user_source: the programmer's dlog text.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        pipeline: Pipeline,
        program: CompiledProgram,
        bindings: GeneratedBindings,
        generated_source: str,
        user_source: str,
    ):
        self.schema = schema
        self.pipeline = pipeline
        self.program = program
        self.bindings = bindings
        self.generated_source = generated_source
        self.user_source = user_source

    def new_simulator(self, n_ports: int = 64, **kwargs):
        """Convenience: a fresh data plane running this project's pipeline."""
        from repro.p4.simulator import Simulator

        return Simulator(self.pipeline, n_ports=n_ports, **kwargs)

    def loc_report(self) -> Dict[str, int]:
        """Non-blank source lines per artifact (the §4.3 accounting)."""
        from repro.analysis.loc import count_loc

        return {
            "dlog_rules": count_loc(self.user_source, kind="dlog"),
            "dlog_generated": count_loc(self.generated_source, kind="dlog"),
            # Reserved "_" tables (e.g. the lease table a Database
            # injects in place) are runtime infrastructure, not part of
            # the application the paper's accounting measures.
            "schema_tables": sum(
                1
                for name in self.schema.tables
                if not name.startswith("_")
            ),
        }


def nerpa_build(
    ovsdb_schema,
    dlog_source: str,
    p4_source: str,
    dlog_name: str = "<rules>",
    p4_name: str = "<p4>",
    recursive_mode: str = "dred",
) -> NerpaProject:
    """Compile a full-stack program.

    ``ovsdb_schema`` may be a :class:`DatabaseSchema` or its JSON dict.
    Raises :class:`~repro.errors.TypeCheckError` (or a parse error) if
    any plane — or any *seam between planes* — is ill-typed.
    """
    if isinstance(ovsdb_schema, dict):
        ovsdb_schema = DatabaseSchema.from_json(ovsdb_schema)

    pipeline = compile_p4(p4_source, p4_name)
    generated, bindings = generate_declarations(ovsdb_schema, pipeline.p4info)

    full_source = generated + "\n" + dlog_source
    program = compile_program(
        full_source, source=dlog_name, recursive_mode=recursive_mode
    )

    _check_outputs_covered(program, bindings)
    return NerpaProject(
        ovsdb_schema, pipeline, program, bindings, generated, dlog_source
    )


# Output relations the controller interprets itself rather than mapping
# to a P4 table.  MulticastGroup(group, port) configures packet
# replication (flooding), which P4Runtime models as separate config.
MULTICAST_RELATION = "MulticastGroup"


def _check_outputs_covered(
    program: CompiledProgram, bindings: GeneratedBindings
) -> None:
    for name in program.output_relations:
        if name in bindings.table_relations:
            continue
        if name == MULTICAST_RELATION:
            decl = program.relation_decl(name)
            if decl.arity != 2:
                raise TypeCheckError(
                    f"{MULTICAST_RELATION} must have exactly two columns "
                    "(group, port)"
                )
            continue
        raise TypeCheckError(
            f"output relation {name} does not correspond to any P4 table "
            "(tables present: "
            f"{sorted(bindings.table_relations)}); declare it as a plain "
            "'relation' if it is internal"
        )
