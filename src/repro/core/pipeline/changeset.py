"""The staged pipeline's intermediate representations.

The controller's update path is a three-stage pipeline (see
``docs/ARCHITECTURE.md``):

1. **ingest** turns monitor deliveries and digest feedback into a
   :class:`Changeset` — the net row-level effect of one or more
   management-plane transactions, keyed per row so that bursts
   coalesce;
2. **evaluate** (single engine thread) turns a changeset into an
   engine transaction and fans the output deltas out as one
   :class:`DeviceBatch` per device;
3. **apply** (one writer thread per device) merges queued batches and
   issues them as a single batched P4Runtime write.

Both IRs share the same *coalescing algebra*.  Per key (a row uuid at
the changeset level, a ``(table, match key)`` pair at the device
level) the net effect of any op sequence is at most "delete the
oldest value, insert the newest":

=============================  ==============================
sequence observed              net effect
=============================  ==============================
insert(a)                      insert(a)
delete(a)                      delete(a)
delete(a), insert(b)           delete(a) + insert(b)  [modify]
insert(a), delete(a)           nothing      [cancelled]
insert(a), delete(a), ins(b)   insert(b)    [last writer wins]
delete(a), insert(a)           nothing      [round trip]
=============================  ==============================

Each key's state is a two-slot cell ``[delete_value, insert_value]``;
:func:`_record_delete` / :func:`_record_insert` implement the
transitions above and are shared by both IR classes.

**Ordering invariant** (preserved and tested): merging batches never
reorders engine transactions — a merged batch carries the contiguous
``seq`` range it covers, and emission always puts deletes before
inserts so a changed entry (delete + insert under one match key)
never collides inside the atomic device write.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Tuple

#: Cap on how many update-ids a coalesced changeset/batch drags along
#: (trace bookkeeping must not grow without bound under a flood).
_MAX_UPDATE_IDS = 128


def _record_delete(cell: list, value) -> None:
    """Fold ``delete(value)`` into a two-slot ``[delete, insert]`` cell."""
    if cell[1] is not None:
        cell[1] = None  # cancels the pending insert
    elif cell[0] is None:
        cell[0] = value  # first delete pins the oldest value
    # else: delete after delete for one key cannot happen in a
    # well-formed stream; keeping the oldest value is still correct.


def _record_insert(cell: list, value) -> None:
    cell[1] = value  # last writer wins


def _merge_update_ids(target: List[str], extra: List[str]) -> None:
    """Append ``extra``, evicting the *oldest* ids past the cap —
    ``update_ids[-1]`` must always be the newest merged id (it names
    the coalesced sync and stamps the device's config epoch)."""
    target.extend(extra)
    if len(target) > _MAX_UPDATE_IDS:
        del target[: len(target) - _MAX_UPDATE_IDS]


class Changeset:
    """Stage-1 IR: the net row changes of >= 1 management transactions.

    ``ops`` maps ``relation -> row key -> [delete_row, insert_row]``.
    The row key is ``(table, uuid)`` for OVSDB-derived rows and the row
    tuple itself for digest insertions (digests have no uuid).
    """

    __slots__ = (
        "source",
        "ops",
        "update_ids",
        "parent",
        "link",
        "digest_name",
        "txns",
        "digests",
        "first_enqueued",
    )

    def __init__(self, source: str = "mgmt"):
        self.source = source
        self.ops: Dict[str, Dict[Hashable, list]] = {}
        self.update_ids: List[str] = []
        #: The span (e.g. ``mgmt.transact``) the evaluation should nest
        #: under — carried across the thread hop, adopted by stage 2.
        self.parent = None
        #: For digest changesets: update-id of the config change whose
        #: entries produced the digest (the device's config epoch).
        self.link: Optional[str] = None
        self.digest_name: Optional[str] = None
        self.txns = 0
        self.digests = 0
        self.first_enqueued = time.perf_counter()

    def record_insert(self, relation: str, key: Hashable, row: tuple) -> None:
        cell = self.ops.setdefault(relation, {}).setdefault(key, [None, None])
        _record_insert(cell, row)

    def record_delete(self, relation: str, key: Hashable, row: tuple) -> None:
        cell = self.ops.setdefault(relation, {}).setdefault(key, [None, None])
        _record_delete(cell, row)

    @property
    def update_id(self) -> Optional[str]:
        """The newest merged update-id (names the coalesced sync)."""
        return self.update_ids[-1] if self.update_ids else None

    def row_count(self) -> int:
        return sum(len(keys) for keys in self.ops.values())

    def is_empty(self) -> bool:
        return all(
            cell[0] is None and cell[1] is None
            for keys in self.ops.values()
            for cell in keys.values()
        )

    def to_transaction(self) -> Tuple[Dict[str, list], Dict[str, list]]:
        """Net ``(inserts, deletes)`` for one engine transaction.

        A key whose delete and insert carry the same row is a round
        trip and is dropped entirely.
        """
        inserts: Dict[str, list] = {}
        deletes: Dict[str, list] = {}
        for relation, keys in self.ops.items():
            for cell in keys.values():
                dead, live = cell
                if dead is not None and dead == live:
                    continue
                if dead is not None:
                    deletes.setdefault(relation, []).append(dead)
                if live is not None:
                    inserts.setdefault(relation, []).append(live)
        return inserts, deletes

    def coalesce(self, other: "Changeset") -> bool:
        """Fold a newer changeset into this one (queue-tail merge).

        Only changesets from the same source merge — mixing digest
        feedback into a management changeset would blur the digest
        trace-link bookkeeping.
        """
        if not isinstance(other, Changeset) or other.source != self.source:
            return False
        for relation, keys in other.ops.items():
            for key, (dead, live) in keys.items():
                if dead is not None:
                    self.record_delete(relation, key, dead)
                if live is not None:
                    self.record_insert(relation, key, live)
        _merge_update_ids(self.update_ids, other.update_ids)
        if other.parent is not None:
            self.parent = other.parent
        if other.link is not None:
            self.link = other.link
        if other.digest_name is not None:
            self.digest_name = other.digest_name
        self.txns += other.txns
        self.digests += other.digests
        return True


class DeviceBatch:
    """Stage-3 IR: the net table writes of >= 1 engine transactions.

    ``ops`` maps ``(table, match_key) -> [delete_entry, insert_entry]``
    (:class:`~repro.p4.tables.TableEntry` values); ``mcast`` maps
    ``group -> port list`` (``None`` = delete the group), last writer
    wins.  ``seq``/``last_seq`` are the engine-transaction range the
    batch covers — merge only ever extends it forward, which is what
    keeps per-device application in engine-transaction order.
    """

    __slots__ = (
        "seq",
        "last_seq",
        "ops",
        "mcast",
        "update_ids",
        "parent",
        "txns",
        "first_enqueued",
    )

    def __init__(self, seq: int):
        self.seq = seq
        self.last_seq = seq
        self.ops: Dict[Tuple[str, tuple], list] = {}
        self.mcast: Dict[int, Optional[List[int]]] = {}
        self.update_ids: List[str] = []
        self.parent = None
        self.txns = 1
        self.first_enqueued = time.perf_counter()

    def record_insert(self, table: str, match_key: tuple, entry) -> None:
        cell = self.ops.setdefault((table, match_key), [None, None])
        _record_insert(cell, entry)

    def record_delete(self, table: str, match_key: tuple, entry) -> None:
        cell = self.ops.setdefault((table, match_key), [None, None])
        _record_delete(cell, entry)

    @property
    def update_id(self) -> Optional[str]:
        return self.update_ids[-1] if self.update_ids else None

    def copy_for_device(self) -> "DeviceBatch":
        """Per-device instance of an evaluation's fan-out template
        (merging mutates, so queues must not share one object)."""
        clone = DeviceBatch(self.seq)
        clone.last_seq = self.last_seq
        clone.ops = {key: cell[:] for key, cell in self.ops.items()}
        clone.mcast = dict(self.mcast)
        clone.update_ids = list(self.update_ids)
        clone.parent = self.parent
        clone.txns = self.txns
        clone.first_enqueued = self.first_enqueued
        return clone

    def emit_writes(self) -> list:
        """The batch as one write list: deletes first, then inserts.

        An entry deleted and re-inserted unchanged (same action,
        params, and priority) is a round trip and is dropped.
        """
        from repro.p4runtime.api import TableWrite

        deletes = []
        inserts = []
        for (table, _), (dead, live) in self.ops.items():
            if (
                dead is not None
                and live is not None
                and dead.action == live.action
                and list(dead.action_params) == list(live.action_params)
                and dead.priority == live.priority
            ):
                continue
            if dead is not None:
                deletes.append(TableWrite.delete(table, dead))
            if live is not None:
                inserts.append(TableWrite.insert(table, live))
        return deletes + inserts

    def is_empty(self) -> bool:
        return not self.mcast and all(
            cell[0] is None and cell[1] is None for cell in self.ops.values()
        )

    def coalesce(self, other: "DeviceBatch") -> bool:
        """Fold a strictly newer batch in, so the merged batch covers
        a forward, in-order span of engine transactions (gaps are
        transactions that produced no writes for this device)."""
        if not isinstance(other, DeviceBatch):
            return False
        if other.seq <= self.last_seq:
            return False
        for (table, match_key), (dead, live) in other.ops.items():
            if dead is not None:
                self.record_delete(table, match_key, dead)
            if live is not None:
                self.record_insert(table, match_key, live)
        self.mcast.update(other.mcast)
        _merge_update_ids(self.update_ids, other.update_ids)
        if other.parent is not None:
            self.parent = other.parent
        self.last_seq = other.last_seq
        self.txns += other.txns
        return True
