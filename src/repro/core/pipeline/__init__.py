"""``repro.core.pipeline``: full-stack build + the staged update path.

Two halves live here:

* :mod:`repro.core.pipeline.build` — ``nerpa_build``: compile the
  OVSDB schema, dlog rules, and P4 program as one typechecked unit
  (the original meaning of "pipeline": the P4 dataflow).
* :mod:`repro.core.pipeline.changeset` / ``queues`` — the staged
  *update* pipeline the controller runs at runtime: the
  :class:`Changeset` IR, per-device :class:`DeviceBatch`, and the
  bounded :class:`CoalescingQueue` connecting ingest, evaluate, and
  apply stages.
"""

from repro.core.pipeline.build import (
    MULTICAST_RELATION,
    NerpaProject,
    nerpa_build,
)
from repro.core.pipeline.changeset import Changeset, DeviceBatch
from repro.core.pipeline.queues import CoalescingQueue, PipelineStalledError

__all__ = [
    "MULTICAST_RELATION",
    "NerpaProject",
    "nerpa_build",
    "Changeset",
    "DeviceBatch",
    "CoalescingQueue",
    "PipelineStalledError",
]
