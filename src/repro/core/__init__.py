"""Nerpa: the unified full-stack SDN programming framework.

This package is the paper's contribution proper.  Given the three
artifacts a network programmer writes —

1. an OVSDB-style **management schema** (:mod:`repro.mgmt.schema`),
2. a **control-plane program** in the incremental Datalog dialect
   (:mod:`repro.dlog`),
3. a **data-plane program** in the P4 subset (:mod:`repro.p4`) —

``nerpa_build`` generates the control plane's input/output relation
declarations from the other two planes, typechecks everything together,
and returns a :class:`~repro.core.pipeline.NerpaProject`.  A
:class:`~repro.core.controller.NerpaController` then keeps the planes
synchronized at runtime: management-plane transactions flow through the
incremental control program and come out as P4Runtime table writes;
data-plane digests flow back in as control-plane input changes.
"""

from repro.core.codegen import generate_declarations
from repro.core.controller import NerpaController
from repro.core.pipeline import NerpaProject, nerpa_build

__all__ = [
    "NerpaController",
    "NerpaProject",
    "generate_declarations",
    "nerpa_build",
]
