"""Generation of control-plane declarations from the other two planes.

This automates the glue the paper calls out: "Nerpa's tooling generates
an input relation for the controller for each table in the OVSDB
management plane; it also generates a controller input relation for
each packet digest in the P4 program.  An output relation for the
controller is generated for each match-action table in the P4 program."

The generator emits *dlog source text* (so the result is ordinary code
the same compiler consumes, and counts toward the §4.3 LoC accounting)
plus a :class:`GeneratedBindings` structure the controller uses to move
values between planes at runtime.

Shapes generated:

* OVSDB table ``Port`` with columns ``name, vlan`` becomes::

      input relation Port(uuid: string, name: string, vlan: bigint)

* P4 table ``in_vlan`` with key ``std.ingress_port : exact`` (bit<16>)
  and actions ``set_vlan(bit<12> vid)``, ``drop`` becomes::

      typedef in_vlan_action_t = InVlanActionSetVlan{vid: bit<12>}
                               | InVlanActionDrop
      output relation InVlan(port: bit<16>, action: in_vlan_action_t)

  (ternary tables get a trailing ``priority: bigint`` column;
  lpm/ternary key columns are (value, len/mask) pairs);

* P4 digest struct ``mac_learn_t`` becomes::

      input relation MacLearn(mac: bit<48>, port: bit<16>, vlan: bit<12>)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import typebridge as TB
from repro.errors import TypeCheckError
from repro.mgmt.schema import DatabaseSchema
from repro.p4.p4info import DigestInfo, P4Info, TableInfo


class TableBinding:
    """Runtime mapping between one output relation and one P4 table."""

    def __init__(self, relation: str, info: TableInfo, has_priority: bool):
        self.relation = relation
        self.info = info
        self.has_priority = has_priority
        self.key_columns = TB.table_key_columns(info)
        # constructor name -> (action name, param count)
        self.actions_by_constructor: Dict[str, Tuple[str, int]] = {}

    @property
    def arity(self) -> int:
        return len(self.key_columns) + 1 + (1 if self.has_priority else 0)


class GeneratedBindings:
    """Everything the controller needs to convert values at runtime."""

    def __init__(self):
        # relation name -> OVSDB table name
        self.ovsdb_relations: Dict[str, str] = {}
        # OVSDB table name -> relation name
        self.relation_for_ovsdb: Dict[str, str] = {}
        # relation name -> TableBinding
        self.table_relations: Dict[str, TableBinding] = {}
        # digest struct name -> relation name
        self.digest_relations: Dict[str, str] = {}


def generate_declarations(
    schema: Optional[DatabaseSchema], p4info: Optional[P4Info]
) -> Tuple[str, GeneratedBindings]:
    """Produce (dlog source text, bindings) for the given planes."""
    lines: List[str] = []
    bindings = GeneratedBindings()
    if schema is not None:
        lines.append(f"// Input relations generated from OVSDB schema '{schema.name}'.")
        for table in schema.tables.values():
            if table.name.startswith("_"):
                # Reserved management-plane tables (e.g. the ``_Lease``
                # leader-election table) are not application state: they
                # must not become engine inputs, or every lease
                # heartbeat would churn through the pipeline and bloat
                # delta checkpoints.
                continue
            lines.append(_ovsdb_relation(table, bindings))
        lines.append("")
    if p4info is not None:
        if p4info.digests:
            lines.append("// Input relations generated from P4 digests.")
            for digest in p4info.digests.values():
                lines.append(_digest_relation(digest, bindings))
            lines.append("")
        if p4info.tables:
            lines.append("// Output relations generated from P4 match-action tables.")
            for table in p4info.tables.values():
                lines.extend(_table_relation(table, p4info, bindings))
            lines.append("")
    return "\n".join(lines), bindings


def _ovsdb_relation(table, bindings: GeneratedBindings) -> str:
    relation = table.name
    if relation in bindings.ovsdb_relations:
        raise TypeCheckError(f"duplicate generated relation {relation}")
    columns = ["uuid: string"]
    for column in table.columns.values():
        columns.append(
            f"{column.name}: {TB.ovsdb_column_to_dlog_text(column.type)}"
        )
    bindings.ovsdb_relations[relation] = table.name
    bindings.relation_for_ovsdb[table.name] = relation
    return f"input relation {relation}({', '.join(columns)})"


def _digest_relation(digest: DigestInfo, bindings: GeneratedBindings) -> str:
    relation = TB.relation_name_for_digest(digest.name)
    columns = [f"{f.name}: bit<{f.width}>" for f in digest.fields]
    bindings.digest_relations[digest.name] = relation
    return f"input relation {relation}({', '.join(columns)})"


def _table_relation(
    table: TableInfo, p4info: P4Info, bindings: GeneratedBindings
) -> List[str]:
    relation = TB.relation_name_for_table(table.name)
    binding = TableBinding(
        relation,
        table,
        has_priority=any(
            f.match_kind == "ternary" for f in table.match_fields
        ),
    )

    ctors: List[str] = []
    for action_name in table.action_names:
        ctor = TB.action_constructor_name(table, action_name)
        action_info = p4info.action(action_name)
        binding.actions_by_constructor[ctor] = (
            action_name,
            len(action_info.params),
        )
        if action_info.params:
            fields = ", ".join(
                f"{p.name}: bit<{p.width}>" for p in action_info.params
            )
            ctors.append(f"{ctor}{{{fields}}}")
        else:
            ctors.append(ctor)

    lines = [f"typedef {TB.action_union_name(table)} = {' | '.join(ctors)}"]

    columns = [
        f"{name}: {TB.match_field_to_dlog_text(field)}"
        for name, field in binding.key_columns
    ]
    columns.append(f"action: {TB.action_union_name(table)}")
    if binding.has_priority:
        columns.append("priority: bigint")
    lines.append(f"output relation {relation}({', '.join(columns)})")
    bindings.table_relations[relation] = binding
    return lines
