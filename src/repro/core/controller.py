"""The Nerpa controller: state synchronization across the three planes.

The controller owns the runtime loop the paper describes in §3, run as
a **staged pipeline** (see ``docs/ARCHITECTURE.md``):

* **ingest** (stage 1, caller threads) — each committed management
  transaction becomes a :class:`~repro.core.pipeline.Changeset`; data
  plane **digests** (e.g. MAC learning) become digest changesets — the
  feedback loop.  Changesets land on a bounded coalescing queue, so a
  burst of transactions collapses into one net changeset while the
  engine is busy (modify = delete+insert pairs cancel, last writer
  wins per row key);
* **evaluate** (stage 2, the engine thread) — one engine transaction
  per changeset; the control program's *output deltas* fan out as one
  :class:`~repro.core.pipeline.DeviceBatch` per device.  Rows of the
  reserved ``MulticastGroup(group, port)`` output relation are folded
  into per-group port lists and ride the same batch;
* **apply** (stage 3, the fan-out plane) — batches merge on each
  device's own coalescing queue and go out as a single batched
  P4Runtime write (deletes before inserts, atomic per batch, in
  engine-transaction order).  By default (``apply_plane="aio"``) one
  shared :class:`~repro.net.aio.Reactor` drives a lightweight
  :class:`~repro.core.fanout.DeviceChannel` state machine per device —
  reactor-backed devices write non-blocking, local/classic devices run
  on a small pool — so thousands of devices cost one loop thread, not
  thousands of writer threads; ``apply_plane="threads"`` keeps the
  PR 3 one-thread-per-device plane.  Either way device I/O holds
  **no** controller-wide lock, so a slow or broken device backs up
  only its own queue — never the engine or its peers.

:meth:`NerpaController.drain` waits for end-to-end quiescence and
surfaces semantic errors (``WriteError`` etc.) deferred by the
asynchronous stages; ``start()`` and ``stop()`` drain internally, so
synchronous callers keep their old contract.

**Fault tolerance.**  The control plane is the authoritative copy of
both neighbors' state, so every failure is recovered by *rebuilding
from the engine* — as pipeline work items, never under a global lock:

* management-plane reconnect → an engine-thread task re-issues the
  monitor subscription and diffs the fresh snapshot against the
  engine's input relations (``runtime.dump``); because the task runs
  on the engine thread, monitor updates racing the reconnect are
  ordered strictly after the reconcile;
* device reconnect → a resync task on that device's writer queue
  replays the engine's output relations as a read-diff full sync,
  superseding any queued incremental batches;
* a device that fails ``breaker_threshold`` consecutive syncs with a
  transport error is **quarantined**: its writer drops batches without
  touching the wire until the connection recovers and the resync
  repairs everything it missed.

Per-sync latency — the interval the paper measures in §4.3 between the
controller *reading* a change and the data-plane entry being written —
is recorded end-to-end (ingest enqueue → device apply) in
:attr:`NerpaController.sync_latencies`, and per device in each managed
device's ``latencies``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.analysis.stats import percentile
from repro.core.codegen import TableBinding
from repro.core.fanout import FanoutPlane
from repro.core.pipeline import MULTICAST_RELATION, NerpaProject
from repro.core.pipeline.changeset import Changeset, DeviceBatch
from repro.core.pipeline.queues import CoalescingQueue
from repro.core.typebridge import dlog_value_to_match, ovsdb_value_to_dlog
from repro.dlog import checkpoint as ckpt
from repro.dlog.values import StructValue
from repro.errors import ProtocolError, ReproError, TypeCheckError
from repro.mgmt.database import Database
from repro.mgmt.monitor import MonitorSpec, TableUpdates
from repro.obs.trace import current_update_id, use_update_id
from repro.p4.simulator import Simulator
from repro.p4.tables import TableEntry
from repro.p4runtime.api import DeviceService, TableWrite

#: Exceptions treated as *transport* failures by the circuit breaker.
#: Semantic rejections (``WriteError`` etc.) are deferred to
#: :meth:`NerpaController.drain` — they indicate a controller bug, not
#: a flaky peer.
_TRANSPORT_ERRORS = (ProtocolError, OSError)

#: Samples retained per latency/stage-timing series — bounded so a
#: long-running controller's metrics bookkeeping cannot grow without
#: limit.
_STATS_WINDOW = 8192


def _append_sample(samples: List[float], value: float) -> None:
    """Append to a bounded sample list (caller holds ``_stats_lock``)."""
    samples.append(value)
    if len(samples) > _STATS_WINDOW:
        del samples[: len(samples) - _STATS_WINDOW]


class _LocalMgmt:
    def __init__(self, db: Database):
        self.db = db
        self.monitor = None

    def subscribe(self, tables, callback) -> TableUpdates:
        spec = MonitorSpec({t: None for t in tables})
        self.monitor, initial = self.db.add_monitor(spec, callback)
        return initial

    def unsubscribe(self) -> None:
        if self.monitor is not None:
            self.db.remove_monitor(self.monitor)
            self.monitor = None

    def on_reconnect(self, hook) -> None:
        pass  # in-process databases do not disconnect

    def health(self) -> Dict[str, object]:
        return {"peer": "local-db", "state": "connected", "transitions": []}


class _RemoteMgmt:
    def __init__(self, client):
        self.client = client
        self.monitor_id = None

    def subscribe(self, tables, callback) -> TableUpdates:
        self.monitor_id, initial = self.client.monitor(
            {t: None for t in tables}, callback
        )
        return initial

    def unsubscribe(self) -> None:
        if self.monitor_id is not None:
            self.client.monitor_cancel(self.monitor_id)
            self.monitor_id = None

    def on_reconnect(self, hook) -> None:
        self.client.on_reconnect(hook)

    def health(self) -> Dict[str, object]:
        return self.client.health()


class _LocalDevice:
    def __init__(self, target):
        if isinstance(target, Simulator):
            self.service = DeviceService(target)
        else:
            self.service = target
        self._event_log: List[str] = []

    def write(self, updates, fence=None) -> None:
        self.service.fenced_write(updates, fence)

    def apply_batch(
        self, updates, mcast=None, update_ids=None, fence=None
    ) -> None:
        # The caller (writer thread) binds the batch's update-id on the
        # context, which is how the service stamps the config epoch.
        self.service.fenced_apply_batch(updates, mcast, fence)

    def read_table(self, table: str):
        return [
            TableWrite("INSERT", table, e)
            for e in self.service.read_table(table)
        ]

    def set_multicast_group(self, group_id, ports) -> None:
        self.service.set_multicast_group(group_id, ports)

    def delete_multicast_group(self, group_id) -> None:
        self.service.delete_multicast_group(group_id)

    def get_config_epoch(self):
        return self.service.get_config_epoch()

    def set_config_epoch(self, epoch, fence=None) -> None:
        self.service.fenced_set_config_epoch(epoch, fence)

    def attach_digests(self, callback) -> None:
        sim = self.service.sim
        previous = sim.digest_callback

        def chained(message):
            if previous is not None:
                previous(message)
            # Bind the update-id of the config change that installed
            # the digest-producing entries, so the feedback transaction
            # can link back to it without a signature change.
            uid = getattr(message, "update_id", None)
            if uid is not None:
                with use_update_id(uid):
                    callback(message.name, message.values)
            else:
                callback(message.name, message.values)

        sim.digest_callback = chained

    def on_reconnect(self, hook) -> None:
        pass  # in-process devices do not disconnect

    def wait_ready(self, timeout: float) -> bool:
        return True

    def note_event(self, tag: str) -> None:
        self._event_log.append(tag)

    def health(self) -> Dict[str, object]:
        return {
            "peer": "local-device",
            "state": "connected",
            "transitions": list(self._event_log),
        }


class _RemoteDevice:
    def __init__(self, client):
        self.client = client

    #: Channels route batches through ``apply_batch_async`` when the
    #: backing client supports it (see :class:`_AioRemoteDevice`).
    asynchronous = False

    def write(self, updates, fence=None) -> None:
        self.client.write(updates, fence=fence)

    def apply_batch(
        self, updates, mcast=None, update_ids=None, fence=None
    ) -> None:
        self.client.apply_batch(updates, mcast, update_ids, fence=fence)

    def read_table(self, table: str):
        return self.client.read_table(table)

    def set_multicast_group(self, group_id, ports) -> None:
        self.client.set_multicast_group(group_id, ports)

    def delete_multicast_group(self, group_id) -> None:
        self.client.delete_multicast_group(group_id)

    def get_config_epoch(self):
        return self.client.get_config_epoch()

    def set_config_epoch(self, epoch, fence=None) -> None:
        self.client.set_config_epoch(epoch, fence=fence)

    def attach_digests(self, callback) -> None:
        self.client.subscribe_digests(callback)

    def on_reconnect(self, hook) -> None:
        self.client.on_reconnect(hook)

    def wait_ready(self, timeout: float) -> bool:
        # Backpressure awareness: park until the transport is usable
        # instead of burning a call timeout per queued batch.
        return self.client.conn.wait_connected(timeout)

    def note_event(self, tag: str) -> None:
        self.client.conn.note_event(tag)

    def health(self) -> Dict[str, object]:
        return self.client.health()


class _AioRemoteDevice(_RemoteDevice):
    """A device on the shared reactor: everything `_RemoteDevice` does
    (the blocking surface serves resync tasks, which run on the fan-out
    plane's pool) plus the non-blocking batched-write path the
    :class:`~repro.core.fanout.DeviceChannel` hot loop uses."""

    asynchronous = True

    def apply_batch_async(
        self, updates, mcast, update_ids, callback, seq=None, fence=None
    ) -> None:
        self.client.apply_batch_async(
            updates, mcast, update_ids, callback, seq=seq, fence=fence
        )

    @property
    def writable(self) -> bool:
        return self.client.writable

    @property
    def send_buffer_bytes(self) -> int:
        return self.client.send_buffer_bytes

    def on_drain(self, callback) -> None:
        self.client.on_drain(callback)


class _ManagedDevice:
    """A device plus its circuit-breaker state."""

    def __init__(self, io, name: str):
        self.io = io
        self.name = name
        self.consecutive_failures = 0
        self.quarantined = False
        self.syncs_missed = 0
        self.resyncs = 0
        self.last_error: Optional[str] = None
        #: Round trips issued by this device's writer (a coalesced
        #: batch counts once — the batching win is visible here).
        self.writes_issued = 0
        #: End-to-end latencies (ingest enqueue → applied) per batch.
        self.latencies: List[float] = []
        #: Wire round-trip latencies (issue → ack) per batch — the
        #: device's own service time, excluding queue wait.  A slow
        #: peer shows up here *and* in ``latencies``; fleet-wide queue
        #: pressure only in ``latencies``.
        self.io_latencies: List[float] = []
        #: The update-id of the last batch/resync this controller saw
        #: applied to the device — the device's config epoch as the
        #: controller believes it.  Checkpointed for warm restarts.
        self.config_epoch: Optional[str] = None

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self, exc: BaseException, threshold: int) -> bool:
        """Returns True if this failure tripped the breaker."""
        self.consecutive_failures += 1
        self.last_error = str(exc) or type(exc).__name__
        if not self.quarantined and self.consecutive_failures >= threshold:
            self.quarantined = True
            self.io.note_event("quarantined")
            return True
        return False

    def recover(self) -> None:
        if self.quarantined:
            self.io.note_event("recovered")
        self.quarantined = False
        self.consecutive_failures = 0
        self.resyncs += 1

    def health(self) -> Dict[str, object]:
        report = dict(self.io.health())
        report.update(
            {
                "name": self.name,
                "quarantined": self.quarantined,
                "consecutive_failures": self.consecutive_failures,
                "syncs_missed": self.syncs_missed,
                "resyncs": self.resyncs,
            }
        )
        if self.last_error is not None:
            report["last_device_error"] = self.last_error
        return report


class _EngineTask:
    """A control item for the engine thread (reconciles, snapshots)."""

    __slots__ = ("fn", "event", "result", "error")

    def __init__(self, fn):
        self.fn = fn
        self.event = threading.Event()
        self.result = None
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self.result = self.fn()
        except BaseException as exc:  # noqa: BLE001 - handed to waiter
            self.error = exc
        finally:
            self.event.set()


class _WriterTask:
    """A control item for one device's writer thread (resyncs)."""

    __slots__ = ("fn", "event", "error")

    def __init__(self, fn):
        self.fn = fn
        self.event = threading.Event()
        self.error: Optional[BaseException] = None

    def run(self, device: "_ManagedDevice") -> None:
        try:
            self.fn(device)
        except BaseException as exc:  # noqa: BLE001 - handed to waiter
            self.error = exc
        finally:
            self.event.set()


class _DeviceWriter:
    """Stage 3: one device's coalescing queue plus its writer thread."""

    def __init__(self, controller: "NerpaController", device: _ManagedDevice):
        self.controller = controller
        self.device = device
        self.queue = CoalescingQueue(
            name=device.name, maxlen=512, merge=controller.coalesce
        )
        self.thread = threading.Thread(
            target=controller._writer_loop,
            args=(self,),
            name=f"nerpa-writer-{device.name}",
            daemon=True,
        )

    def start(self) -> None:
        self.thread.start()


def _wrap_device(target):
    from repro.p4runtime.aio_client import AioP4RuntimeClient
    from repro.p4runtime.client import P4RuntimeClient

    if isinstance(target, AioP4RuntimeClient):
        return _AioRemoteDevice(target)
    if isinstance(target, P4RuntimeClient):
        return _RemoteDevice(target)
    if isinstance(target, (Simulator, DeviceService)):
        return _LocalDevice(target)
    raise TypeError(f"cannot manage device {target!r}")


def _wrap_mgmt(target):
    from repro.mgmt.client import ManagementClient

    if isinstance(target, Database):
        return _LocalMgmt(target)
    if isinstance(target, ManagementClient):
        return _RemoteMgmt(target)
    raise TypeError(f"cannot use {target!r} as a management plane")


class NerpaController:
    """Keeps management, control, and data planes synchronized."""

    def __init__(
        self,
        project: NerpaProject,
        mgmt,
        devices,
        breaker_threshold: int = 3,
        coalesce: bool = True,
        state_dir: Optional[str] = None,
        shards: int = 1,
        shard_workers: str = "process",
        apply_plane: str = "aio",
        reactor=None,
        checkpoint_every: int = 8,
        checkpoint_interval_s: Optional[float] = None,
        fencing_epoch: Optional[int] = None,
        warm_source: Optional[tuple] = None,
    ):
        self.project = project
        #: ``"aio"`` (default) drives stage 3 through one shared
        #: reactor + per-device channels; ``"threads"`` keeps PR 3's
        #: one-writer-thread-per-device plane (the bench baseline and
        #: the differential-test reference).
        if apply_plane not in ("aio", "threads"):
            raise ReproError(f"unknown apply plane {apply_plane!r}")
        self.apply_plane = apply_plane
        #: Optional shared :class:`~repro.net.aio.Reactor` — pass the
        #: one the devices' ``AioP4RuntimeClient``s run on so channel
        #: and connection callbacks share a loop thread.
        self._reactor = reactor
        self.bindings = project.bindings
        #: Directory for the controller checkpoint (engine state +
        #: per-device config epochs), typically beside the mgmt
        #: ``Persister`` directory.  ``None`` disables checkpointing.
        self.state_dir = state_dir
        #: Evaluate-stage shard count; >1 runs a ``ShardedRuntime``
        #: behind the same pipeline (a per-shard-count checkpoint:
        #: changing ``shards`` degrades the next start to cold).
        self.shards = shards
        #: Cut a fresh full snapshot once the chain holds this many
        #: delta segments (``save_checkpoint(mode="auto")`` compaction).
        self.checkpoint_every = checkpoint_every
        #: Background checkpoint cadence in seconds; ``None`` (default)
        #: disables the timer.  When set (and ``state_dir`` is too), a
        #: daemon thread calls ``save_checkpoint(mode="auto")`` every
        #: interval while the pipeline runs; :meth:`stop` cancels it
        #: before closing anything it depends on.
        self.checkpoint_interval_s = checkpoint_interval_s
        self._ckpt_timer_stop: Optional[threading.Event] = None
        self._ckpt_timer_thread: Optional[threading.Thread] = None
        # Serializes save_checkpoint bodies: the background timer and an
        # explicit caller may race, and the store's index/anchor
        # bookkeeping is not concurrency-safe.
        self._ckpt_lock = threading.RLock()
        #: Checkpoints cut by the background timer.
        self.auto_checkpoints = 0
        #: Fencing epoch stamped on every device write this controller
        #: issues (``None`` = unfenced, the single-controller default).
        #: Devices reject writes carrying an epoch older than the
        #: highest they have seen, so a deposed leader — paused, then
        #: resumed after a takeover — cannot corrupt device state.
        self._fencing_epoch: Optional[int] = fencing_epoch
        # Hooks run at the top of stop(), before any transport is torn
        # down (repro.core.ha releases its leadership lease here).
        self._stop_hooks: List = []
        # Warm-start state: if a compatible checkpoint exists, restore
        # the engine from it instead of recomputing the fixpoint.  An
        # unreadable or hash-mismatched checkpoint silently degrades to
        # a cold start — always correct, just slower.  The checkpoint
        # is a *chain* (full snapshot + delta segments, see
        # :class:`repro.dlog.checkpoint.CheckpointStore`); the full
        # snapshot keeps the pre-chain ``controller.ckpt`` name and
        # payload, so checkpoints from older controllers restore fine.
        self._warm_state: Optional[dict] = None
        self._ckpt_store: Optional[ckpt.CheckpointStore] = None
        runtime = None
        if warm_source is not None:
            # A warm standby (repro.core.ha.CheckpointFollower) hands
            # over the runtime it kept hot by tailing the shared chain,
            # plus the warm bookkeeping (mcast/seq/device_epochs) from
            # the chain's tail — no disk load needed.  The store starts
            # unanchored, so the first auto checkpoint cuts a fresh
            # full snapshot (this controller is the chain's writer now).
            runtime, handed_state = warm_source
            if runtime is not None:
                self._warm_state = dict(handed_state or {})
            if state_dir is not None:
                self._ckpt_store = self._make_store()
        elif state_dir is not None:
            self._ckpt_store = self._make_store()
            try:
                full, segments = self._ckpt_store.load_chain(
                    lambda data: int(data.get("engine_txns", 0))
                )
            except ckpt.CheckpointError:
                full, segments = None, []
            if full is not None:
                engine_ckpt = full.get("engine")
                if segments:
                    engine_ckpt = {
                        "delta_chain": True,
                        "full": engine_ckpt,
                        "segments": segments,
                    }
                runtime = project.program.start(
                    checkpoint=engine_ckpt,
                    shards=shards,
                    shard_workers=shard_workers,
                )
                if runtime.restored:
                    self._warm_state = dict(full)
                    if segments:
                        # The chain's tail is the freshest controller
                        # state: each segment's meta snapshots the
                        # mcast/seq/epoch bookkeeping as of its cut.
                        meta = segments[-1].get("meta") or {}
                        for key in ("mcast", "seq", "device_epochs"):
                            if key in meta:
                                self._warm_state[key] = meta[key]
        self.runtime = (
            runtime
            if runtime is not None
            else project.program.start(
                shards=shards, shard_workers=shard_workers
            )
        )
        if self._ckpt_store is not None and self._warm_state is None:
            # The chain (if any) does not describe this runtime's state
            # — cold start or hash mismatch.  Reset to an unanchored
            # store so the next save_checkpoint cuts a full snapshot.
            self._ckpt_store = self._make_store()
        # Journal the engine's normalized input transactions so delta
        # checkpoints can persist just the changes since the last save.
        # Enabled only after any chain replay above, so replayed
        # transactions are not re-journaled.
        self._journal_on = False
        if self.state_dir is not None:
            self.runtime.enable_journal()
            self._journal_on = True
        self.mgmt = _wrap_mgmt(mgmt)
        self.devices = [
            _ManagedDevice(_wrap_device(d), f"device-{i}")
            for i, d in enumerate(devices)
        ]
        self.breaker_threshold = breaker_threshold
        #: ``coalesce=False`` disables queue-tail merging (one wire
        #: write per engine transaction) — the unbatched baseline the
        #: pipeline benchmark compares against.
        self.coalesce = coalesce
        # Multicast membership is engine-thread state: only stage 2
        # reads or mutates it (snapshots are taken via engine tasks).
        self._mcast_members: Dict[int, set] = {}
        self._started = False
        # When not None, the evaluate stage collects table writes here
        # instead of fanning them out (used to compute the desired
        # state on a reconciling restart).  Multicast config is
        # idempotent and is always applied directly.
        self._buffer: Optional[List[TableWrite]] = None

        # Pipeline plumbing (built in start()).  ``_writers`` holds
        # either `_DeviceWriter`s (threads plane) or `DeviceChannel`s
        # (aio plane) — both expose ``.queue``/``.device``/``.start()``,
        # which is all drain/resync/health/metrics touch.
        self._engine_queue: Optional[CoalescingQueue] = None
        self._engine_thread: Optional[threading.Thread] = None
        self._writers: List = []
        self._fanout_plane: Optional[FanoutPlane] = None
        self._seq = 0
        self._errors: List[BaseException] = []
        self._stats_lock = threading.Lock()

        # Config epochs: every fanned-out batch carries an update-id
        # stamp; when tracing is off none is minted upstream, so the
        # fan-out mints one from this process-unique run id (a restarted
        # controller must never reuse a prior run's ids — epoch equality
        # means "device state is exactly what I checkpointed").
        self._run_id = uuid.uuid4().hex[:8]
        self._epoch_counter = itertools.count(1)
        if self._warm_state is not None:
            self._seq = int(self._warm_state.get("seq", 0))
            self._mcast_members = {
                int(group): set(members)
                for group, members in self._warm_state.get(
                    "mcast", {}
                ).items()
            }

        # Metrics.
        self.sync_count = 0
        self.sync_latencies: List[float] = []
        self.entries_written = 0
        self.digests_processed = 0
        self.mgmt_reconciles = 0
        self.device_resyncs = 0
        self.last_result = None
        #: ``"warm"`` or ``"cold"`` once :meth:`start` has run.
        self.restart_mode: Optional[str] = None
        #: Devices whose reported config epoch matched the checkpoint,
        #: letting the warm start skip their full resync.
        self.warm_skips = 0
        #: Wall-clock seconds of the last :meth:`start` call.
        self.start_seconds = 0.0
        self.checkpoint_bytes = 0
        self.checkpoint_seconds = 0.0
        #: ``"full"`` or ``"delta"`` — what the last
        #: :meth:`save_checkpoint` actually wrote.
        self.last_checkpoint_mode: Optional[str] = None
        self._stage_seconds: Dict[str, List[float]] = {
            "ingest": [],
            "evaluate": [],
            "apply": [],
        }

        self._ovsdb_tables = list(self.bindings.relation_for_ovsdb)
        # Cache of schema column order per OVSDB table.
        self._columns = {
            table: list(project.schema.table(table).columns.values())
            for table in self._ovsdb_tables
        }

    # -- lifecycle ---------------------------------------------------------------

    def start(
        self, reconcile: bool = False, warm: bool = False
    ) -> "NerpaController":
        """Start the pipeline, subscribe to both ends, sync initial state.

        With ``reconcile=True`` the controller assumes it may be
        restarting against devices that already hold entries (e.g. the
        previous controller instance crashed): instead of blindly
        inserting, it computes the desired state from the initial
        snapshot, reads each device's tables, and issues only the
        difference — stale entries are deleted, missing ones inserted,
        already-correct ones left untouched.

        With ``warm=True`` (requires ``state_dir``) the controller
        restarts from the checkpoint written by :meth:`save_checkpoint`:
        the engine state is restored without recompute, only the
        management-DB delta accumulated since the checkpoint runs
        through the pipeline, and devices whose reported config epoch
        matches the checkpointed one skip the full read-diff resync.
        Missing or incompatible checkpoints (and epoch-mismatched
        devices) fall back to the cold ``reconcile`` path, which is
        always correct.

        Blocks until the initial state is applied; semantic write
        failures (e.g. colliding entries without ``reconcile``) are
        raised here.
        """
        if self._started:
            raise ReproError("controller already started")
        started_at = time.perf_counter()
        warm_state = self._warm_state if warm else None
        self._warm_state = None
        if warm and warm_state is None:
            # Asked for warm but there is nothing compatible to restore:
            # behave like a crash restart against possibly-stale devices.
            reconcile = True
        self._started = True
        self._engine_queue = CoalescingQueue(
            name="engine", maxlen=1024, merge=self.coalesce
        )
        self._engine_thread = threading.Thread(
            target=self._engine_loop, name="nerpa-engine", daemon=True
        )
        self._engine_thread.start()
        if self.apply_plane == "aio":
            self._fanout_plane = FanoutPlane(
                reactor=self._reactor,
                max_blocking_workers=min(64, max(8, len(self.devices))),
                on_error=self._defer_error,
            )
            self._writers = [
                self._fanout_plane.channel(
                    device,
                    self._channel_runner,
                    name=device.name,
                    maxlen=512,
                    merge=self.coalesce,
                )
                for device in self.devices
            ]
        else:
            self._writers = [
                _DeviceWriter(self, device) for device in self.devices
            ]
        for writer in self._writers:
            writer.start()
        for device in self.devices:
            device.io.attach_digests(self._on_digest)
            device.io.on_reconnect(self._device_reconnect_hook(device))
        if warm_state is not None:
            self.restart_mode = "warm"
            epochs = dict(warm_state.get("device_epochs", {}))
            tasks = self._submit_engine(
                lambda: self._warm_restore(epochs)
            )
            for task in tasks:
                if not task.event.wait(30.0):
                    raise ReproError("warm device sync timed out")
                if task.error is not None:
                    raise task.error
        elif reconcile:
            self.restart_mode = "cold"
            # Compute desired state silently (buffer the writes), then
            # read-diff every device in parallel on its own writer.
            self._buffer = []
            self._submit_engine(self._push_initial, wait=False)
            initial = self.mgmt.subscribe(self._ovsdb_tables, self._on_updates)
            self._on_updates(initial)
            self.drain()
            desired = self._buffer or []
            self._buffer = None
            epoch = self._mint_epoch("reconcile")
            tasks = []
            for writer in self._writers:
                task = _WriterTask(
                    lambda device, d=desired: self._run_resync(
                        device, d, {}, recover=False, count=False,
                        epoch=epoch,
                    )
                )
                writer.queue.put(task)
                tasks.append(task)
            for task in tasks:
                if not task.event.wait(30.0):
                    raise ReproError("reconciling device sync timed out")
                if task.error is not None:
                    raise task.error
        else:
            self.restart_mode = "cold"
            self._submit_engine(self._push_initial, wait=False)
            initial = self.mgmt.subscribe(self._ovsdb_tables, self._on_updates)
            self._on_updates(initial)
        self.mgmt.on_reconnect(self._on_mgmt_reconnect)
        self.drain()
        if self.state_dir is not None and self.checkpoint_interval_s:
            self._ckpt_timer_stop = threading.Event()
            self._ckpt_timer_thread = threading.Thread(
                target=self._checkpoint_timer_loop,
                name="nerpa-ckpt-timer",
                daemon=True,
            )
            self._ckpt_timer_thread.start()
        self.start_seconds = time.perf_counter() - started_at
        if obs.enabled():
            obs.REGISTRY.counter(
                "controller_restart_total", mode=self.restart_mode
            ).inc()
            if self.restart_mode == "warm":
                obs.REGISTRY.histogram(
                    "controller_warm_start_seconds"
                ).observe(self.start_seconds)
        return self

    def _push_initial(self) -> None:
        """Engine task: fan out the program's initial output state."""
        self._fan_out(
            self.runtime.initial_result,
            update_ids=[],
            parent=None,
            first_enqueued=time.perf_counter(),
            txns=1,
        )

    def drain(self, timeout: float = 30.0) -> "NerpaController":
        """Block until the pipeline is quiescent end to end.

        Every ingested changeset has been evaluated and every resulting
        device batch applied (or skipped by a quarantined device's
        breaker).  Semantic errors deferred by the asynchronous stages
        — a rejected write, an ill-typed action row — are re-raised
        here; transport failures are *not* errors (the breaker and
        resync machinery own those).
        """
        deadline = time.monotonic() + timeout
        while True:
            if self._engine_queue is not None:
                self._engine_queue.join(deadline)
            for writer in self._writers:
                writer.queue.join(deadline)
            error: Optional[BaseException] = None
            with self._stats_lock:
                if self._errors:
                    error = self._errors[0]
                    self._errors.clear()
            if error is not None:
                raise error
            # A digest arriving mid-drain (or a stage handing work to
            # the next) re-fills an earlier queue — loop until a full
            # pass sees everything quiet.
            if (
                self._engine_queue is None
                or self._engine_queue.unfinished == 0
            ) and all(w.queue.unfinished == 0 for w in self._writers):
                return self

    def stop(self) -> None:
        """Drain best-effort, then shut the pipeline down.

        Teardown ordering is load-bearing (audited for the HA path):

        1. cancel the background checkpoint timer — its saves submit
           engine tasks, which must not race the queue close below;
        2. run the registered stop hooks (lease release, etc.) while
           the transports are still up;
        3. drain, unsubscribe, close queues, join threads, stop the
           fan-out plane, close the runtime.

        Re-entrancy: stop() may be invoked from a pipeline thread (an
        engine task or a monitor callback reacting to a lease-table
        update).  Joining the calling thread would deadlock, so joins
        of the current thread are skipped — the daemon thread exits on
        its own once its closed queue drains.  Stopping a stack whose
        management plane is already down must not raise out of
        teardown.
        """
        current = threading.current_thread()
        timer_stop = self._ckpt_timer_stop
        if timer_stop is not None:
            timer_stop.set()
        timer_thread = self._ckpt_timer_thread
        if timer_thread is not None and timer_thread is not current:
            timer_thread.join(timeout=5.0)
        self._ckpt_timer_thread = None
        self._ckpt_timer_stop = None
        for hook in list(self._stop_hooks):
            try:
                hook()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
        self._stop_hooks = []
        on_engine = current is self._engine_thread
        if self._started and not on_engine:
            try:
                self.drain(timeout=10.0)
            except ReproError:
                pass
        try:
            self.mgmt.unsubscribe()
        except (ProtocolError, OSError):
            pass
        self._started = False
        if self._engine_queue is not None:
            self._engine_queue.close()
        for writer in self._writers:
            writer.queue.close()
        if self._engine_thread is not None:
            if not on_engine:
                self._engine_thread.join(timeout=2.0)
            self._engine_thread = None
        for writer in self._writers:
            thread = getattr(writer, "thread", None)
            if thread is not None and thread is not current:
                thread.join(timeout=2.0)
        if self._fanout_plane is not None:
            self._fanout_plane.stop()
            self._fanout_plane = None
        close = getattr(self.runtime, "close", None)
        if close is not None:
            close()

    def on_stop(self, hook) -> None:
        """Register ``hook`` to run at the top of :meth:`stop`, before
        any transport or thread is torn down.  Hooks run once and are
        cleared; exceptions are swallowed (teardown must complete)."""
        self._stop_hooks.append(hook)

    # -- warm-start checkpointing ------------------------------------------------

    def _checkpoint_path(self) -> str:
        return os.path.join(self.state_dir, "controller.ckpt")

    def _make_store(self) -> ckpt.CheckpointStore:
        return ckpt.CheckpointStore(
            self.state_dir, "controller.ckpt",
            self.project.program.program_hash,
        )

    def _mcast_snapshot(self) -> Dict[int, List[int]]:
        return {
            group: sorted(members)
            for group, members in self._mcast_members.items()
            if members
        }

    def _engine_txns(self) -> int:
        return int(getattr(self.runtime, "txn_count", 0))

    def save_checkpoint(self, mode: str = "auto") -> str:
        """Persist the engine state, multicast membership, and per-device
        config epochs to ``state_dir`` (atomic writes, fsynced).

        ``mode`` selects what hits the disk:

        * ``"full"`` — a complete snapshot (engine checkpoint + controller
          bookkeeping) at ``controller.ckpt``, purging any delta segments
          (chain compaction);
        * ``"delta"`` — one append-only segment holding just the journaled
          engine transactions since the previous save, plus the current
          mcast/seq/epoch bookkeeping as segment meta.  Cost tracks the
          change rate, not total state size;
        * ``"auto"`` (default) — ``"delta"`` while the chain holds fewer
          than ``checkpoint_every`` segments, ``"full"`` otherwise (and
          always for the first save, which anchors the chain).

        The engine-owned state is snapshotted via an engine task when
        the pipeline is running, so it is consistent with respect to
        fan-out.  Call after :meth:`drain` so the device epochs reflect
        everything the checkpointed engine state implies.
        """
        if self.state_dir is None:
            raise ReproError("controller has no state_dir to checkpoint to")
        if mode not in ("auto", "full", "delta"):
            raise ReproError(f"unknown checkpoint mode {mode!r}")
        with self._ckpt_lock:
            return self._save_checkpoint_locked(mode)

    def _save_checkpoint_locked(self, mode: str) -> str:
        started = time.perf_counter()
        if self._ckpt_store is None:
            self._ckpt_store = self._make_store()
        store = self._ckpt_store
        effective = mode
        if effective == "auto":
            effective = (
                "delta"
                if self._journal_on
                and not store.should_full(self.checkpoint_every)
                else "full"
            )
        if effective == "delta" and not self._journal_on:
            raise ReproError(
                "delta checkpoint needs a journaling runtime "
                "(controller built without state_dir journaling)"
            )
        os.makedirs(self.state_dir, exist_ok=True)
        epochs = {
            device.name: device.config_epoch for device in self.devices
        }
        if effective == "full":

            def snap() -> dict:
                if self._journal_on:
                    # The snapshot captures everything journaled so far;
                    # the chain restarts here.
                    self.runtime.drain_journal()
                return {
                    "format": ckpt.CHECKPOINT_FORMAT,
                    "engine": self.runtime.checkpoint(),
                    "engine_txns": self._engine_txns(),
                    "mcast": self._mcast_snapshot(),
                    "seq": self._seq,
                }

            data = self._submit_engine(snap) if self._started else snap()
            data["device_epochs"] = epochs
            size = store.save_full(data, data["engine_txns"])
            path = self._checkpoint_path()
        else:

            def snap() -> dict:
                return {
                    "txns": self.runtime.drain_journal(),
                    "engine_txns": self._engine_txns(),
                    "meta": {
                        "mcast": self._mcast_snapshot(),
                        "seq": self._seq,
                    },
                }

            data = self._submit_engine(snap) if self._started else snap()
            data["meta"]["device_epochs"] = epochs
            path = store._segment_path(store._next_index)
            size = store.save_delta(
                data["txns"], data["engine_txns"], meta=data["meta"]
            )
        self.checkpoint_bytes = size
        self.checkpoint_seconds = time.perf_counter() - started
        self.last_checkpoint_mode = effective
        if obs.enabled():
            obs.REGISTRY.gauge(
                "controller_checkpoint_bytes", mode=effective
            ).set(size)
            obs.REGISTRY.gauge("controller_checkpoint_seconds").set(
                self.checkpoint_seconds
            )
        return path

    def _checkpoint_timer_loop(self) -> None:
        """Background-checkpoint thread: ``save_checkpoint("auto")``
        every ``checkpoint_interval_s`` until :meth:`stop` sets the
        event.  A save racing teardown (engine queue closed) degrades
        to a no-op — the explicit stop-path checkpoint, if the caller
        wants one, still runs under :attr:`_ckpt_lock`."""
        stop = self._ckpt_timer_stop
        interval = self.checkpoint_interval_s
        while stop is not None and not stop.wait(interval):
            try:
                self.save_checkpoint(mode="auto")
            except ReproError:
                continue
            self.auto_checkpoints += 1
            if obs.enabled():
                obs.REGISTRY.counter("controller_auto_checkpoints_total").inc()

    def _warm_restore(self, epochs: Dict[str, Optional[str]]):
        """Engine task for a warm start; returns the per-device tasks.

        Order matters: the per-device warm-sync tasks are enqueued
        *before* the post-checkpoint delta fans out, so each writer's
        FIFO queue sees (1) the sync decision against exactly the
        checkpointed state, then (2) the delta batches.  An
        epoch-matched device therefore skips its resync and simply
        applies the delta; a mismatched one is repaired to the
        checkpointed state first and converges the same way.
        """
        # (1) Diff the restored engine inputs against the durable
        # management DB — everything missed while down, computed before
        # anything is transacted so the desired-writes snapshot below
        # still equals the checkpointed state.
        fresh = self.mgmt.subscribe(self._ovsdb_tables, self._on_updates)
        inserts: Dict[str, List[tuple]] = {}
        deletes: Dict[str, List[tuple]] = {}
        for table in self._ovsdb_tables:
            relation = self.bindings.relation_for_ovsdb[table]
            fresh_rows = set()
            for uuid_, update in fresh.table(table).items():
                if update.new is not None:
                    fresh_rows.add(
                        self._row_to_dlog(table, uuid_, update.new)
                    )
            current = self.runtime.dump(relation)
            stale = current - fresh_rows
            missing = fresh_rows - current
            if stale:
                deletes[relation] = list(stale)
            if missing:
                inserts[relation] = list(missing)
        # (2) Probe each device's config epoch.  When every reachable
        # device already reports its checkpointed epoch — the common
        # fast-failover case — the O(state) desired-writes dump below
        # is never taken, which is what keeps takeover latency
        # independent of the derived-state size.  The probe is only an
        # optimization: `_warm_sync` re-checks on the writer thread and
        # falls back to a full `resync_device` if a device moved in
        # between (e.g. a deposed leader wrote before being fenced).
        need_dump = False
        for writer in self._writers:
            expected = epochs.get(writer.device.name)
            if expected is None:
                need_dump = True
                continue
            io = writer.device.io
            if not io.wait_ready(0.0):
                # Unreachable now → it will need a resync once back.
                need_dump = True
                continue
            try:
                if io.get_config_epoch() != expected:
                    need_dump = True
            except _TRANSPORT_ERRORS:
                need_dump = True
        desired = self._desired_writes() if need_dump else None
        mcast = {
            group: sorted(members)
            for group, members in self._mcast_members.items()
            if members
        }
        tasks = []
        for writer in self._writers:
            expected = epochs.get(writer.device.name)
            task = _WriterTask(
                lambda device, e=expected: self._warm_sync(
                    device, e, desired, mcast
                )
            )
            writer.queue.put(task)
            tasks.append(task)
        # (3) Replay the missed delta through the normal pipeline.
        if inserts or deletes:
            result = self.runtime.transaction(
                inserts=inserts, deletes=deletes
            )
            self._fan_out(
                result,
                update_ids=[],
                parent=None,
                first_enqueued=time.perf_counter(),
                txns=1,
            )
            self.sync_count += 1
            self.last_result = result
        return tasks

    def _warm_sync(
        self,
        device: _ManagedDevice,
        expected: Optional[str],
        desired: Optional[List[TableWrite]],
        mcast: Dict[int, List[int]],
    ) -> None:
        """Writer-thread warm-start decision for one device: skip the
        full resync when the device's reported config epoch proves its
        tables already hold the checkpointed desired state.

        ``desired`` is ``None`` when the engine-thread probe saw every
        device epoch-matched and skipped the desired-state dump; a
        mismatch discovered here anyway is repaired through
        :meth:`resync_device`, whose snapshot supersedes the queued
        delta batches."""
        io = device.io
        io.wait_ready(2.0)
        reported: Optional[str] = None
        try:
            reported = io.get_config_epoch()
        except _TRANSPORT_ERRORS:
            reported = None
        if expected is not None and reported == expected:
            device.record_success()
            device.config_epoch = reported
            if self._fencing_epoch is not None:
                # The resync is skipped, but the device must still
                # learn this leader's fencing epoch *during* takeover —
                # otherwise the deposed leader's writes (stamped with
                # the old epoch) would keep passing until our first
                # batch happened to arrive.
                try:
                    io.set_config_epoch(reported, fence=self._fencing_epoch)
                except _TRANSPORT_ERRORS:
                    pass
            with self._stats_lock:
                self.warm_skips += 1
            if obs.enabled():
                obs.REGISTRY.counter(
                    "controller_warm_resync_skips_total", device=device.name
                ).inc()
            return
        if desired is None:
            # The probe said this device matched but it no longer does:
            # something wrote to it in between.  Take a fresh engine
            # snapshot (which by now includes the replayed delta) and
            # repair; the snapshot task supersedes the delta batches
            # queued behind this one, so nothing is applied twice.
            # wait=False: the resync lands on *this* writer queue,
            # behind the task executing right now.
            self.resync_device(device, wait=False)
            return
        self._run_resync(
            device,
            desired,
            mcast,
            recover=False,
            count=True,
            epoch=self._mint_epoch("warmsync"),
        )

    def __enter__(self) -> "NerpaController":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- stage 1: ingest ---------------------------------------------------------

    def _on_updates(self, updates: TableUpdates) -> None:
        """Monitor delivery → changeset → engine queue (caller thread)."""
        started = time.perf_counter()
        changeset = Changeset("mgmt")
        changeset.txns = 1
        for table, rows in updates:
            relation = self.bindings.relation_for_ovsdb.get(table)
            if relation is None:
                continue
            for uuid, update in rows.items():
                key = (table, uuid)
                if update.kind == "insert":
                    changeset.record_insert(
                        relation, key, self._row_to_dlog(table, uuid, update.new)
                    )
                elif update.kind == "delete":
                    changeset.record_delete(
                        relation, key, self._row_to_dlog(table, uuid, update.old)
                    )
                else:  # modify: old carries only the changed columns
                    old_full = dict(update.new)
                    old_full.update(update.old)
                    changeset.record_delete(
                        relation, key, self._row_to_dlog(table, uuid, old_full)
                    )
                    changeset.record_insert(
                        relation, key, self._row_to_dlog(table, uuid, update.new)
                    )
        if not changeset.ops:
            return
        if obs.enabled():
            # Inherit the transact's update-id (bound by the mgmt plane
            # around this callback); the initial snapshot has none, so
            # mint one for it.  The parent span (``mgmt.transact``) is
            # captured so the evaluation can nest under it across the
            # thread hop.
            uid = current_update_id() or obs.mint_update_id()
            changeset.update_ids.append(uid)
            changeset.parent = obs.TRACER.active()
            with obs.TRACER.span(
                "pipeline.ingest", update_id=uid, rows=changeset.row_count()
            ):
                self._enqueue(changeset)
        else:
            self._enqueue(changeset)
        with self._stats_lock:
            _append_sample(
                self._stage_seconds["ingest"], time.perf_counter() - started
            )

    def _on_digest(self, name: str, values: Tuple[int, ...]) -> None:
        """Data-plane feedback → digest changeset → engine queue."""
        relation = self.bindings.digest_relations.get(name)
        if relation is None:
            return
        changeset = Changeset("digest")
        changeset.digests = 1
        changeset.digest_name = name
        # The delivery path bound the update-id of the config change
        # whose entries produced this digest; the feedback transaction
        # gets a fresh id linked back (minted at evaluation).
        changeset.link = current_update_id()
        row = tuple(values)
        changeset.record_insert(relation, (relation, row), row)
        self._enqueue(changeset)

    def _enqueue(self, changeset: Changeset) -> None:
        queue = self._engine_queue
        if queue is None:
            raise ReproError("controller not started")
        queue.put(changeset)
        self._gauge_depth("engine", queue)

    def _row_to_dlog(self, table: str, uuid: str, row: dict) -> tuple:
        values = [uuid]
        for column in self._columns[table]:
            values.append(ovsdb_value_to_dlog(column.type, row[column.name]))
        return tuple(values)

    # -- stage 2: evaluate -------------------------------------------------------

    def _engine_loop(self) -> None:
        queue = self._engine_queue
        while True:
            item = queue.pop()
            if item is None:
                return
            self._gauge_depth("engine", queue)
            try:
                if isinstance(item, _EngineTask):
                    item.run()
                else:
                    self._evaluate(item)
            except Exception as exc:  # noqa: BLE001 - surfaced at drain()
                self._defer_error(exc)
            finally:
                queue.task_done()

    def _submit_engine(self, fn, wait: bool = True, timeout: float = 30.0):
        """Run ``fn`` on the engine thread (it owns runtime + mcast)."""
        queue = self._engine_queue
        if queue is None or queue.closed:
            raise ReproError("controller not started")
        task = _EngineTask(fn)
        queue.put(task)
        if not wait:
            return None
        if not task.event.wait(timeout):
            raise ReproError("engine task timed out")
        if task.error is not None:
            raise task.error
        return task.result

    def _evaluate(self, changeset: Changeset) -> None:
        """One engine transaction for one (possibly coalesced) changeset."""
        started = time.perf_counter()
        inserts, deletes = changeset.to_transaction()
        if not inserts and not deletes:
            return  # burst coalesced away to nothing
        is_digest = changeset.source == "digest"
        if obs.enabled():
            if is_digest:
                uid = obs.mint_update_id()
                span = obs.TRACER.span(
                    "controller.digest",
                    update_id=uid,
                    digest=changeset.digest_name,
                    link=changeset.link,
                )
                update_ids = [uid]
            else:
                uid = changeset.update_id or obs.mint_update_id()
                span = obs.TRACER.span(
                    "controller.sync",
                    update_id=uid,
                    rows=changeset.row_count(),
                    txns=changeset.txns,
                )
                update_ids = changeset.update_ids or [uid]
            with obs.TRACER.adopt(changeset.parent), use_update_id(uid), span:
                result = self.runtime.transaction(
                    inserts=inserts, deletes=deletes
                )
                self._fan_out(
                    result,
                    update_ids=update_ids,
                    parent=span,
                    first_enqueued=changeset.first_enqueued,
                    txns=max(changeset.txns, 1),
                )
            if is_digest:
                obs.REGISTRY.counter(
                    "controller_digests_total",
                    digest=changeset.digest_name or "?",
                ).inc(changeset.digests)
            else:
                obs.REGISTRY.counter("controller_syncs_total").inc()
                obs.REGISTRY.histogram("controller_sync_seconds").observe(
                    time.perf_counter() - started
                )
        else:
            result = self.runtime.transaction(inserts=inserts, deletes=deletes)
            self._fan_out(
                result,
                update_ids=[],
                parent=None,
                first_enqueued=changeset.first_enqueued,
                txns=max(changeset.txns, 1),
            )
        if is_digest:
            self.digests_processed += changeset.digests
            if result.deltas:
                self.sync_count += 1
                self.last_result = result
        else:
            self.sync_count += 1
            self.last_result = result
        with self._stats_lock:
            _append_sample(
                self._stage_seconds["evaluate"], time.perf_counter() - started
            )

    def _fan_out(
        self,
        result,
        update_ids: List[str],
        parent,
        first_enqueued: float,
        txns: int,
    ) -> None:
        """Output deltas → one coalescible batch per device queue."""
        self._seq += 1
        template = DeviceBatch(self._seq)
        template.update_ids = list(update_ids)
        if not template.update_ids:
            # With tracing off no update-id was minted upstream, but the
            # batch still needs a config-epoch stamp for warm restarts.
            template.update_ids = [self._mint_epoch()]
        template.parent = parent
        template.first_enqueued = first_enqueued
        template.txns = txns
        for relation, delta in result.deltas.items():
            binding = self.bindings.table_relations.get(relation)
            if binding is not None:
                table = binding.info.name
                for row, weight in delta.items():
                    entry = self._row_to_entry(binding, row)
                    if weight > 0:
                        template.record_insert(table, entry.match_key(), entry)
                    else:
                        template.record_delete(table, entry.match_key(), entry)
            elif relation == MULTICAST_RELATION:
                template.mcast.update(self._fold_multicast(delta))
        if self._buffer is not None:
            # Reconciling restart: collect the would-be writes; only
            # (idempotent) multicast config goes to the devices now.
            self._buffer.extend(template.emit_writes())
            if not template.mcast:
                return
            template.ops = {}
        if template.is_empty():
            return
        for writer in self._writers:
            writer.queue.put(template.copy_for_device())
            self._gauge_depth(writer.device.name, writer.queue)

    def _fold_multicast(self, delta) -> Dict[int, Optional[List[int]]]:
        """Fold a MulticastGroup delta into per-group port lists.

        Mutates the engine-thread-owned membership map and returns the
        net config ops (``None`` = delete the group) for the batch.
        """
        ops: Dict[int, Optional[List[int]]] = {}
        changed = set()
        for row, weight in delta.items():
            group, port = int(row[0]), int(row[1])
            members = self._mcast_members.setdefault(group, set())
            if weight > 0:
                members.add(port)
            else:
                members.discard(port)
            changed.add(group)
        for group in sorted(changed):
            members = self._mcast_members.get(group, set())
            if members:
                ops[group] = sorted(members)
            else:
                ops[group] = None
                self._mcast_members.pop(group, None)
        return ops

    def _row_to_entry(self, binding: TableBinding, row: tuple) -> TableEntry:
        n_keys = len(binding.key_columns)
        matches = [
            dlog_value_to_match(field, value)
            for (_, field), value in zip(binding.key_columns, row[:n_keys])
        ]
        action_value = row[n_keys]
        if not isinstance(action_value, StructValue):
            raise TypeCheckError(
                f"{binding.relation}: action column must be a constructor "
                f"of {binding.info.name}'s action union, got {action_value!r}"
            )
        resolved = binding.actions_by_constructor.get(action_value.constructor)
        if resolved is None:
            raise TypeCheckError(
                f"{binding.relation}: {action_value.constructor} is not an "
                f"action of table {binding.info.name}"
            )
        action_name, param_count = resolved
        if len(action_value.fields) != param_count:
            raise TypeCheckError(
                f"{binding.relation}: action {action_name} expects "
                f"{param_count} parameter(s)"
            )
        priority = row[n_keys + 1] if binding.has_priority else 0
        return TableEntry(
            matches, action_name, list(action_value.fields), priority
        )

    # -- stage 3: apply ----------------------------------------------------------

    def _writer_loop(self, writer: _DeviceWriter) -> None:
        device, queue = writer.device, writer.queue
        while True:
            item = queue.pop()
            if item is None:
                return
            self._gauge_depth(device.name, queue)
            try:
                if isinstance(item, _WriterTask):
                    item.run(device)
                else:
                    self._apply_device_batch(device, item)
            except Exception as exc:  # noqa: BLE001 - surfaced at drain()
                self._defer_error(exc)
            finally:
                queue.task_done()

    def _prepare_batch(
        self, device: _ManagedDevice, batch: DeviceBatch
    ) -> Optional[List[TableWrite]]:
        """Breaker gate shared by both apply paths: emit the batch's
        writes, or return ``None`` when there is nothing to do (empty
        after coalescing, or the device is quarantined — counted as a
        missed sync either way the breaker requires)."""
        writes = batch.emit_writes()
        if not writes and not batch.mcast:
            return None
        if device.quarantined:
            device.syncs_missed += 1
            if obs.enabled():
                obs.REGISTRY.counter(
                    "controller_syncs_skipped_total", device=device.name
                ).inc()
            return None
        return writes

    def _finish_batch(
        self,
        device: _ManagedDevice,
        batch: DeviceBatch,
        writes: List[TableWrite],
        started: float,
        issued_at: Optional[float] = None,
    ) -> None:
        """Success bookkeeping shared by both apply paths."""
        device.record_success()
        device.writes_issued += 1
        if writes:
            # Mirror the device side exactly: only table writes advance
            # the on-device epoch (a multicast-only batch never reaches
            # ``DeviceService.write``), and warm start's skip decision
            # relies on the two staying equal.
            device.config_epoch = batch.update_id
        applied = time.perf_counter()
        latency = applied - batch.first_enqueued
        with self._stats_lock:
            self.entries_written += len(writes)
            _append_sample(self.sync_latencies, latency)
            _append_sample(device.latencies, latency)
            if issued_at is not None:
                _append_sample(device.io_latencies, applied - issued_at)
            _append_sample(self._stage_seconds["apply"], applied - started)

    def _batch_failed(
        self, device: _ManagedDevice, exc: BaseException
    ) -> None:
        """Transport-failure bookkeeping shared by both apply paths."""
        tripped = device.record_failure(exc, self.breaker_threshold)
        device.syncs_missed += 1
        if obs.enabled():
            obs.REGISTRY.counter(
                "controller_breaker_failures_total", device=device.name
            ).inc()
            if tripped:
                obs.REGISTRY.counter(
                    "controller_breaker_trips_total", device=device.name
                ).inc()

    def _apply_device_batch(
        self, device: _ManagedDevice, batch: DeviceBatch
    ) -> None:
        """Issue one (possibly merged) batch through the breaker —
        the blocking path (writer threads, or the fan-out plane's pool
        for local and classic-client devices).

        Runs with no controller-wide lock held — device I/O never
        blocks the engine or its peers.
        """
        started = time.perf_counter()
        writes = self._prepare_batch(device, batch)
        if writes is None:
            return
        uid = batch.update_id
        issued_at = time.perf_counter()
        try:
            if obs.enabled():
                with obs.TRACER.adopt(batch.parent), use_update_id(
                    uid
                ), obs.TRACER.span(
                    "device.write",
                    update_id=uid,
                    device=device.name,
                    writes=len(writes),
                    txns=batch.txns,
                ) as span:
                    device.io.apply_batch(
                        writes, batch.mcast, batch.update_ids,
                        fence=self._fencing_epoch,
                    )
                    span.set(applied=True)
            else:
                with use_update_id(uid):
                    device.io.apply_batch(
                        writes, batch.mcast, batch.update_ids,
                        fence=self._fencing_epoch,
                    )
        except _TRANSPORT_ERRORS as exc:
            self._batch_failed(device, exc)
            return
        self._finish_batch(device, batch, writes, started, issued_at)

    # -- stage 3, aio plane ------------------------------------------------------

    def _channel_runner(self, channel, item, done) -> None:
        """Execute one queue item for a :class:`DeviceChannel`.

        Loop thread.  Batches for reactor-backed devices go out
        non-blocking; everything else (local simulators, classic
        blocking clients, resync/warm-sync ``_WriterTask``s) runs on
        the plane's pool — with the channel holding the slot either
        way, so per-device FIFO is preserved across both paths.
        """
        device = channel.device
        self._gauge_depth(device.name, channel.queue)
        if isinstance(item, _WriterTask):

            def run_task() -> None:
                item.run(device)
                done(None)

            self._fanout_plane.run_blocking(run_task)
            return
        if getattr(device.io, "asynchronous", False):
            self._apply_batch_async(channel, item, done)
            return

        def run_batch() -> None:
            try:
                self._apply_device_batch(device, item)
            except Exception as exc:  # noqa: BLE001 - surfaced at drain()
                done(exc)
                return
            done(None)

        self._fanout_plane.run_blocking(run_batch)

    def _apply_batch_async(self, channel, batch: DeviceBatch, done) -> None:
        """Non-blocking apply for one batch (loop thread).

        Watermark-aware: a connection whose send buffer is past its
        high watermark parks the channel on ``on_drain`` instead of
        buffering without bound — the device's queue then coalesces
        the backlog, exactly as it does for a slow blocking device.
        """
        device = channel.device
        io = device.io
        started = time.perf_counter()

        def issue() -> None:
            # Re-gated after a potential drain wait: the breaker may
            # have tripped while this channel was parked.
            writes = self._prepare_batch(device, batch)
            if writes is None:
                done(None)
                return
            uid = batch.update_id
            channel.mark_awaiting_ack()
            issued_at = time.perf_counter()
            if obs.enabled():
                obs.REGISTRY.gauge(
                    "fanout_send_buffer_bytes", device=device.name
                ).set(io.send_buffer_bytes)

            def on_ack(applied, error) -> None:
                if obs.enabled():
                    obs.REGISTRY.gauge(
                        "fanout_send_buffer_bytes", device=device.name
                    ).set(io.send_buffer_bytes)
                if error is not None:
                    if isinstance(error, _TRANSPORT_ERRORS):
                        self._batch_failed(device, error)
                        done(None)
                    else:
                        # Semantic rejection — a controller bug, not a
                        # flaky peer: surfaced at drain() like the
                        # blocking path's WriteError.
                        done(error)
                    return
                if obs.enabled():
                    with obs.TRACER.adopt(batch.parent), use_update_id(uid):
                        with obs.TRACER.span(
                            "device.write",
                            update_id=uid,
                            device=device.name,
                            writes=len(writes),
                            txns=batch.txns,
                        ) as span:
                            span.set(applied=True, ack=True)
                    # The span records at ack time; its duration is the
                    # send→ack interval, not the (instant) body above.
                    span.duration = time.perf_counter() - issued_at
                self._finish_batch(device, batch, writes, started, issued_at)
                done(None)

            io.apply_batch_async(
                writes,
                batch.mcast,
                batch.update_ids,
                on_ack,
                seq=(batch.seq, batch.last_seq),
                fence=self._fencing_epoch,
            )

        if io.writable:
            issue()
        else:
            io.on_drain(issue)

    # -- recovery ----------------------------------------------------------------

    def _on_mgmt_reconnect(self) -> None:
        """The management channel came back (possibly to a restarted
        server).  An engine-thread task re-subscribes and reconciles
        the fresh snapshot against the engine's input relations: rows
        that vanished while we were deaf become deletes, new rows
        become inserts, and the deltas fan out through the normal apply
        stage.  Running subscribe + diff *on the engine thread* orders
        the reconcile strictly before any monitor update racing it."""
        if not self._started:
            return
        self._submit_engine(self._reconcile_mgmt, wait=False)

    def _reconcile_mgmt(self) -> None:
        fresh = self.mgmt.subscribe(self._ovsdb_tables, self._on_updates)
        inserts: Dict[str, List[tuple]] = {}
        deletes: Dict[str, List[tuple]] = {}
        for table in self._ovsdb_tables:
            relation = self.bindings.relation_for_ovsdb[table]
            fresh_rows = set()
            for uuid, update in fresh.table(table).items():
                if update.new is not None:
                    fresh_rows.add(self._row_to_dlog(table, uuid, update.new))
            current = self.runtime.dump(relation)
            stale = current - fresh_rows
            missing = fresh_rows - current
            if stale:
                deletes[relation] = list(stale)
            if missing:
                inserts[relation] = list(missing)
        self.mgmt_reconciles += 1
        if not inserts and not deletes:
            return
        result = self.runtime.transaction(inserts=inserts, deletes=deletes)
        self._fan_out(
            result,
            update_ids=[],
            parent=None,
            first_enqueued=time.perf_counter(),
            txns=1,
        )
        self.sync_count += 1
        self.last_result = result

    def _device_reconnect_hook(self, device: _ManagedDevice):
        def hook() -> None:
            self.resync_device(device)

        return hook

    def resync_device(self, device, wait: bool = True) -> None:
        """Full-sync one device from the engine's output relations.

        ``device`` may be a :class:`_ManagedDevice` or an index into
        :attr:`devices`.  The engine is authoritative: a consistent
        snapshot of the desired writes is taken on the engine thread,
        then a resync task on the device's *own* writer queue performs
        the read-diff repair — superseding any queued incremental
        batches, holding no controller-wide lock, and never blocking
        other devices or the engine.  Clears quarantine on success.

        ``wait=False`` only enqueues the resync — required when the
        caller itself runs on this device's writer thread (waiting for
        a task queued behind the current one would deadlock).
        """
        if isinstance(device, int):
            device = self.devices[device]
        if not self._started:
            return
        writer = next(
            (w for w in self._writers if w.device is device), None
        )
        if writer is None:
            raise ReproError(f"unknown device {device.name}")
        def snapshot_and_enqueue() -> _WriterTask:
            # Engine thread: fan-out only ever happens here, so taking
            # the snapshot and superseding the queued batches in one
            # task is atomic w.r.t. fan-out — no batch can land on the
            # writer queue after the snapshot yet be dropped by the
            # supersede without its changes being in the snapshot.
            desired = self._desired_writes()
            mcast = {
                group: sorted(members)
                for group, members in self._mcast_members.items()
                if members
            }
            epoch = self._mint_epoch("resync")
            task = _WriterTask(
                lambda dev: self._run_resync(
                    dev, desired, mcast, recover=True, count=True,
                    epoch=epoch,
                )
            )
            # The full sync subsumes every queued incremental batch.
            writer.queue.put(
                task, supersedes=lambda item: isinstance(item, DeviceBatch)
            )
            return task

        task = self._submit_engine(snapshot_and_enqueue)
        if not wait:
            return
        if not task.event.wait(30.0):
            raise ReproError(f"resync of {device.name} timed out")
        if task.error is not None:
            raise task.error

    def _run_resync(
        self,
        device: _ManagedDevice,
        desired_writes: List[TableWrite],
        mcast: Dict[int, List[int]],
        recover: bool,
        count: bool,
        epoch: Optional[str] = None,
    ) -> bool:
        """Writer-thread body of a full device sync (read-diff repair)."""
        io = device.io
        io.wait_ready(2.0)
        fixes = []
        try:
            fixes = self._compute_fixes(io, desired_writes)
            if fixes:
                io.write(fixes, fence=self._fencing_epoch)
            for group in sorted(mcast):
                io.set_multicast_group(group, mcast[group])
            if epoch is not None:
                # A full sync leaves the device holding exactly the
                # snapshotted desired state; stamp that fact so a later
                # warm restart can recognize it.
                io.set_config_epoch(epoch, fence=self._fencing_epoch)
        except _TRANSPORT_ERRORS as exc:
            # Racing a second failure is normal; the next successful
            # reconnect triggers the resync again.
            device.record_failure(exc, self.breaker_threshold)
            return False
        device.record_success()
        if epoch is not None:
            device.config_epoch = epoch
        if fixes:
            with self._stats_lock:
                self.entries_written += len(fixes)
        if recover:
            device.recover()
        if count:
            with self._stats_lock:
                self.device_resyncs += 1
        return True

    def _compute_fixes(
        self, io, desired_writes: List[TableWrite]
    ) -> List[TableWrite]:
        """Read-diff one device against the desired entry set."""
        desired: Dict[str, Dict[tuple, TableWrite]] = {}
        for write in desired_writes:
            if write.kind == "INSERT":
                desired.setdefault(write.table, {})[
                    write.entry.match_key()
                ] = write
            elif write.kind == "DELETE":
                desired.get(write.table, {}).pop(write.entry.match_key(), None)
        fixes: List[TableWrite] = []
        for binding in self.bindings.table_relations.values():
            table = binding.info.name
            want = dict(desired.get(table, {}))
            for existing in io.read_table(table):
                key = existing.entry.match_key()
                wanted = want.pop(key, None)
                if wanted is None:
                    fixes.append(TableWrite.delete(table, existing.entry))
                elif (
                    wanted.entry.action != existing.entry.action
                    or wanted.entry.action_params
                    != existing.entry.action_params
                ):
                    fixes.append(TableWrite.modify(table, wanted.entry))
            fixes.extend(want.values())  # still-missing entries
        fixes.sort(key=lambda w: 0 if w.kind == "DELETE" else 1)
        return fixes

    def _desired_writes(self) -> List[TableWrite]:
        """Replay the engine's current output relations as inserts —
        the authoritative desired state of every device table.  Engine
        thread only."""
        writes: List[TableWrite] = []
        for relation, binding in self.bindings.table_relations.items():
            for row in self.runtime.dump(relation):
                writes.append(
                    TableWrite.insert(
                        binding.info.name, self._row_to_entry(binding, row)
                    )
                )
        return writes

    # -- shared plumbing ---------------------------------------------------------

    @property
    def fencing_epoch(self) -> Optional[int]:
        return self._fencing_epoch

    def set_fencing_epoch(self, epoch: Optional[int]) -> None:
        """Stamp subsequent device writes with ``epoch`` (monotonically
        increasing across leaderships; see ``repro.mgmt.lease``)."""
        self._fencing_epoch = epoch

    def _mint_epoch(self, tag: str = "") -> str:
        """A process-unique config-epoch id.  The run-id prefix keeps a
        restarted controller from ever reusing a previous run's ids —
        epoch equality must imply identical device state."""
        suffix = f"-{tag}" if tag else ""
        return f"ep-{self._run_id}-{next(self._epoch_counter):08d}{suffix}"

    def _defer_error(self, exc: BaseException) -> None:
        with self._stats_lock:
            if len(self._errors) < 64:
                self._errors.append(exc)

    def _gauge_depth(self, name: str, queue: CoalescingQueue) -> None:
        if obs.enabled():
            obs.REGISTRY.gauge("pipeline_queue_depth", queue=name).set(
                len(queue)
            )

    # -- introspection ---------------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Per-peer connection state, retry counters, and transitions."""
        devices = []
        for i, device in enumerate(self.devices):
            report = device.health()
            if i < len(self._writers):
                report["queue_depth"] = len(self._writers[i].queue)
            devices.append(report)
        return {
            "mgmt": self.mgmt.health(),
            "devices": devices,
            "mgmt_reconciles": self.mgmt_reconciles,
            "device_resyncs": self.device_resyncs,
        }

    @staticmethod
    def _summarize(samples: List[float]) -> Dict[str, float]:
        data = list(samples)
        if not data:
            return {"count": 0, "mean": 0.0, "p95": 0.0}
        return {
            "count": len(data),
            "mean": sum(data) / len(data),
            "p95": percentile(data, 95),
        }

    def metrics(self) -> Dict[str, object]:
        with self._stats_lock:
            latencies = list(self.sync_latencies)
            stage_seconds = {
                stage: list(samples)
                for stage, samples in self._stage_seconds.items()
            }
        out = {
            "syncs": self.sync_count,
            "entries_written": self.entries_written,
            "digests_processed": self.digests_processed,
            "mgmt_reconciles": self.mgmt_reconciles,
            "device_resyncs": self.device_resyncs,
            "mean_sync_latency": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "last_sync_latency": latencies[-1] if latencies else 0.0,
            "sync_latency_p50": percentile(latencies, 50) if latencies else 0.0,
            "sync_latency_p95": percentile(latencies, 95) if latencies else 0.0,
            "restart": {
                "mode": self.restart_mode,
                "warm_skips": self.warm_skips,
                "start_seconds": self.start_seconds,
                "checkpoint_bytes": self.checkpoint_bytes,
                "checkpoint_seconds": self.checkpoint_seconds,
                "auto_checkpoints": self.auto_checkpoints,
                "fencing_epoch": self._fencing_epoch,
            },
            "engine": self.runtime.profile(),
            "pipeline": {
                "engine_queue_depth": (
                    len(self._engine_queue)
                    if self._engine_queue is not None
                    else 0
                ),
                "engine_coalesced": (
                    self._engine_queue.coalesced
                    if self._engine_queue is not None
                    else 0
                ),
                "device_queue_depths": {
                    w.device.name: len(w.queue) for w in self._writers
                },
                "device_coalesced": {
                    w.device.name: w.queue.coalesced for w in self._writers
                },
                "device_writes_issued": {
                    d.name: d.writes_issued for d in self.devices
                },
                "stage_seconds": {
                    stage: self._summarize(samples)
                    for stage, samples in stage_seconds.items()
                },
            },
        }
        if self._fanout_plane is not None:
            states: Dict[str, int] = {}
            for chan in self._fanout_plane.channels:
                states[chan.state] = states.get(chan.state, 0) + 1
            out["pipeline"]["fanout"] = {
                "plane": self.apply_plane,
                "inflight": self._fanout_plane.inflight,
                "channel_states": states,
                "send_buffer_bytes": {
                    d.name: d.io.send_buffer_bytes
                    for d in self.devices
                    if getattr(d.io, "asynchronous", False)
                },
            }
        if obs.enabled():
            out["registry"] = obs.REGISTRY.snapshot()
        return out
