"""The Nerpa controller: state synchronization across the three planes.

The controller owns the runtime loop the paper describes in §3:

* it subscribes to the management database's change stream; each
  committed transaction becomes one control-plane transaction;
* the control program's *output deltas* become P4Runtime table writes,
  pushed to every managed device (deletes before inserts, batched
  atomically per sync);
* data-plane **digests** (e.g. MAC learning) come back as insertions
  into the corresponding generated input relation — the feedback loop;
* rows of the reserved ``MulticastGroup(group, port)`` output relation
  are folded into per-group port lists and applied as multicast
  configuration.

Event processing is synchronous and serialized by a lock, so it works
identically whether the management plane is an in-process
:class:`~repro.mgmt.database.Database` (callbacks arrive on the writing
thread) or a remote :class:`~repro.mgmt.client.ManagementClient`
(callbacks arrive on its reader thread).

Per-sync latency — the interval the paper measures in §4.3 between the
controller *reading* a change and the data-plane entry being written —
is recorded in :attr:`NerpaController.sync_latencies`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.core.codegen import TableBinding
from repro.core.pipeline import MULTICAST_RELATION, NerpaProject
from repro.core.typebridge import dlog_value_to_match, ovsdb_value_to_dlog
from repro.dlog.dataflow.zset import ZSet
from repro.dlog.values import StructValue
from repro.errors import ReproError, TypeCheckError
from repro.mgmt.database import Database
from repro.mgmt.monitor import MonitorSpec, TableUpdates
from repro.p4.simulator import Simulator
from repro.p4.tables import TableEntry
from repro.p4runtime.api import DeviceService, TableWrite


class _LocalMgmt:
    def __init__(self, db: Database):
        self.db = db
        self.monitor = None

    def subscribe(self, tables, callback) -> TableUpdates:
        spec = MonitorSpec({t: None for t in tables})
        self.monitor, initial = self.db.add_monitor(spec, callback)
        return initial

    def unsubscribe(self) -> None:
        if self.monitor is not None:
            self.db.remove_monitor(self.monitor)
            self.monitor = None


class _RemoteMgmt:
    def __init__(self, client):
        self.client = client
        self.monitor_id = None

    def subscribe(self, tables, callback) -> TableUpdates:
        self.monitor_id, initial = self.client.monitor(
            {t: None for t in tables}, callback
        )
        return initial

    def unsubscribe(self) -> None:
        if self.monitor_id is not None:
            self.client.monitor_cancel(self.monitor_id)
            self.monitor_id = None


class _LocalDevice:
    def __init__(self, target):
        if isinstance(target, Simulator):
            self.service = DeviceService(target)
        else:
            self.service = target

    def write(self, updates) -> None:
        self.service.write(updates)

    def read_table(self, table: str):
        return [
            TableWrite("INSERT", table, e)
            for e in self.service.read_table(table)
        ]

    def set_multicast_group(self, group_id, ports) -> None:
        self.service.set_multicast_group(group_id, ports)

    def delete_multicast_group(self, group_id) -> None:
        self.service.delete_multicast_group(group_id)

    def attach_digests(self, callback) -> None:
        sim = self.service.sim
        previous = sim.digest_callback

        def chained(message):
            if previous is not None:
                previous(message)
            callback(message.name, message.values)

        sim.digest_callback = chained


class _RemoteDevice:
    def __init__(self, client):
        self.client = client

    def write(self, updates) -> None:
        self.client.write(updates)

    def read_table(self, table: str):
        return self.client.read_table(table)

    def set_multicast_group(self, group_id, ports) -> None:
        self.client.set_multicast_group(group_id, ports)

    def delete_multicast_group(self, group_id) -> None:
        self.client.delete_multicast_group(group_id)

    def attach_digests(self, callback) -> None:
        self.client.subscribe_digests(callback)


def _wrap_device(target):
    from repro.p4runtime.client import P4RuntimeClient

    if isinstance(target, P4RuntimeClient):
        return _RemoteDevice(target)
    if isinstance(target, (Simulator, DeviceService)):
        return _LocalDevice(target)
    raise TypeError(f"cannot manage device {target!r}")


def _wrap_mgmt(target):
    from repro.mgmt.client import ManagementClient

    if isinstance(target, Database):
        return _LocalMgmt(target)
    if isinstance(target, ManagementClient):
        return _RemoteMgmt(target)
    raise TypeError(f"cannot use {target!r} as a management plane")


class NerpaController:
    """Keeps management, control, and data planes synchronized."""

    def __init__(self, project: NerpaProject, mgmt, devices):
        self.project = project
        self.bindings = project.bindings
        self.runtime = project.program.start()
        self.mgmt = _wrap_mgmt(mgmt)
        self.devices = [_wrap_device(d) for d in devices]
        self._lock = threading.RLock()
        self._mcast_members: Dict[int, set] = {}
        self._started = False
        # When not None, table writes are collected here instead of
        # being sent (used to compute the desired state on a
        # reconciling restart).  Multicast config is idempotent and is
        # always applied directly.
        self._buffer_writes: Optional[List[TableWrite]] = None

        # Metrics.
        self.sync_count = 0
        self.sync_latencies: List[float] = []
        self.entries_written = 0
        self.digests_processed = 0
        self.last_result = None

        self._ovsdb_tables = list(self.bindings.relation_for_ovsdb)
        # Cache of schema column order per OVSDB table.
        self._columns = {
            table: list(project.schema.table(table).columns.values())
            for table in self._ovsdb_tables
        }

    # -- lifecycle ---------------------------------------------------------------

    def start(self, reconcile: bool = False) -> "NerpaController":
        """Subscribe to both ends and sync the initial state.

        With ``reconcile=True`` the controller assumes it may be
        restarting against devices that already hold entries (e.g. the
        previous controller instance crashed): instead of blindly
        inserting, it computes the desired state from the initial
        snapshot, reads each device's tables, and issues only the
        difference — stale entries are deleted, missing ones inserted,
        already-correct ones left untouched.
        """
        if self._started:
            raise ReproError("controller already started")
        self._started = True
        for device in self.devices:
            device.attach_digests(self._on_digest)
        if reconcile:
            # Compute desired state silently (buffer writes), then diff.
            self._buffer_writes = []
            self._push_outputs(self.runtime.initial_result)
            initial = self.mgmt.subscribe(self._ovsdb_tables, self._on_updates)
            self._on_updates(initial)
            desired = self._buffer_writes
            self._buffer_writes = None
            self._reconcile(desired)
        else:
            self._push_outputs(self.runtime.initial_result)
            initial = self.mgmt.subscribe(self._ovsdb_tables, self._on_updates)
            self._on_updates(initial)
        return self

    def _reconcile(self, desired_writes: List[TableWrite]) -> None:
        """Bring every device to exactly the desired entry set."""
        desired: Dict[str, Dict[tuple, TableWrite]] = {}
        for write in desired_writes:
            if write.kind == "INSERT":
                desired.setdefault(write.table, {})[
                    write.entry.match_key()
                ] = write
            elif write.kind == "DELETE":
                desired.get(write.table, {}).pop(write.entry.match_key(), None)
        for device in self.devices:
            fixes: List[TableWrite] = []
            for binding in self.bindings.table_relations.values():
                table = binding.info.name
                want = dict(desired.get(table, {}))
                for existing in device.read_table(table):
                    key = existing.entry.match_key()
                    wanted = want.pop(key, None)
                    if wanted is None:
                        fixes.append(
                            TableWrite.delete(table, existing.entry)
                        )
                    elif (
                        wanted.entry.action != existing.entry.action
                        or wanted.entry.action_params
                        != existing.entry.action_params
                    ):
                        fixes.append(TableWrite.modify(table, wanted.entry))
                fixes.extend(want.values())  # still-missing entries
            fixes.sort(key=lambda w: 0 if w.kind == "DELETE" else 1)
            if fixes:
                device.write(fixes)
                self.entries_written += len(fixes)

    def stop(self) -> None:
        self.mgmt.unsubscribe()
        self._started = False

    def __enter__(self) -> "NerpaController":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- management-plane events ---------------------------------------------------

    def _on_updates(self, updates: TableUpdates) -> None:
        with self._lock:
            started = time.perf_counter()
            inserts: Dict[str, List[tuple]] = {}
            deletes: Dict[str, List[tuple]] = {}
            for table, rows in updates:
                relation = self.bindings.relation_for_ovsdb.get(table)
                if relation is None:
                    continue
                for uuid, update in rows.items():
                    if update.kind == "insert":
                        inserts.setdefault(relation, []).append(
                            self._row_to_dlog(table, uuid, update.new)
                        )
                    elif update.kind == "delete":
                        deletes.setdefault(relation, []).append(
                            self._row_to_dlog(table, uuid, update.old)
                        )
                    else:  # modify: old carries only the changed columns
                        old_full = dict(update.new)
                        old_full.update(update.old)
                        deletes.setdefault(relation, []).append(
                            self._row_to_dlog(table, uuid, old_full)
                        )
                        inserts.setdefault(relation, []).append(
                            self._row_to_dlog(table, uuid, update.new)
                        )
            if not inserts and not deletes:
                return
            result = self.runtime.transaction(inserts=inserts, deletes=deletes)
            self._push_outputs(result)
            self.sync_count += 1
            self.sync_latencies.append(time.perf_counter() - started)
            self.last_result = result

    def _row_to_dlog(self, table: str, uuid: str, row: dict) -> tuple:
        values = [uuid]
        for column in self._columns[table]:
            values.append(ovsdb_value_to_dlog(column.type, row[column.name]))
        return tuple(values)

    # -- data-plane feedback -----------------------------------------------------------

    def _on_digest(self, name: str, values: Tuple[int, ...]) -> None:
        relation = self.bindings.digest_relations.get(name)
        if relation is None:
            return
        with self._lock:
            started = time.perf_counter()
            result = self.runtime.transaction(
                inserts={relation: [tuple(values)]}
            )
            self.digests_processed += 1
            if result.deltas:
                self._push_outputs(result)
                self.sync_count += 1
                self.sync_latencies.append(time.perf_counter() - started)
                self.last_result = result

    # -- output propagation --------------------------------------------------------------

    def _push_outputs(self, result) -> None:
        writes: List[TableWrite] = []
        for relation, delta in result.deltas.items():
            binding = self.bindings.table_relations.get(relation)
            if binding is not None:
                writes.extend(self._delta_to_writes(binding, delta))
            elif relation == MULTICAST_RELATION:
                self._apply_multicast(delta)
        if not writes:
            return
        # Deletes first so a changed entry (delete+insert with the same
        # match key) never collides.
        writes.sort(key=lambda w: 0 if w.kind == "DELETE" else 1)
        if self._buffer_writes is not None:
            self._buffer_writes.extend(writes)
            return
        for device in self.devices:
            device.write(writes)
        self.entries_written += len(writes)

    def _delta_to_writes(self, binding: TableBinding, delta: ZSet) -> List[TableWrite]:
        writes = []
        for row, weight in delta.items():
            entry = self._row_to_entry(binding, row)
            if weight > 0:
                writes.append(TableWrite.insert(binding.info.name, entry))
            else:
                writes.append(TableWrite.delete(binding.info.name, entry))
        return writes

    def _row_to_entry(self, binding: TableBinding, row: tuple) -> TableEntry:
        n_keys = len(binding.key_columns)
        matches = [
            dlog_value_to_match(field, value)
            for (_, field), value in zip(binding.key_columns, row[:n_keys])
        ]
        action_value = row[n_keys]
        if not isinstance(action_value, StructValue):
            raise TypeCheckError(
                f"{binding.relation}: action column must be a constructor "
                f"of {binding.info.name}'s action union, got {action_value!r}"
            )
        resolved = binding.actions_by_constructor.get(action_value.constructor)
        if resolved is None:
            raise TypeCheckError(
                f"{binding.relation}: {action_value.constructor} is not an "
                f"action of table {binding.info.name}"
            )
        action_name, param_count = resolved
        if len(action_value.fields) != param_count:
            raise TypeCheckError(
                f"{binding.relation}: action {action_name} expects "
                f"{param_count} parameter(s)"
            )
        priority = row[n_keys + 1] if binding.has_priority else 0
        return TableEntry(
            matches, action_name, list(action_value.fields), priority
        )

    def _apply_multicast(self, delta: ZSet) -> None:
        changed = set()
        for row, weight in delta.items():
            group, port = int(row[0]), int(row[1])
            members = self._mcast_members.setdefault(group, set())
            if weight > 0:
                members.add(port)
            else:
                members.discard(port)
            changed.add(group)
        for group in sorted(changed):
            members = self._mcast_members.get(group, set())
            for device in self.devices:
                if members:
                    device.set_multicast_group(group, sorted(members))
                else:
                    device.delete_multicast_group(group)
            if not members:
                self._mcast_members.pop(group, None)

    # -- introspection ---------------------------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        latencies = self.sync_latencies
        return {
            "syncs": self.sync_count,
            "entries_written": self.entries_written,
            "digests_processed": self.digests_processed,
            "mean_sync_latency": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "last_sync_latency": latencies[-1] if latencies else 0.0,
        }
