"""The Nerpa controller: state synchronization across the three planes.

The controller owns the runtime loop the paper describes in §3:

* it subscribes to the management database's change stream; each
  committed transaction becomes one control-plane transaction;
* the control program's *output deltas* become P4Runtime table writes,
  pushed to every managed device (deletes before inserts, batched
  atomically per sync);
* data-plane **digests** (e.g. MAC learning) come back as insertions
  into the corresponding generated input relation — the feedback loop;
* rows of the reserved ``MulticastGroup(group, port)`` output relation
  are folded into per-group port lists and applied as multicast
  configuration.

Event processing is synchronous and serialized by a lock, so it works
identically whether the management plane is an in-process
:class:`~repro.mgmt.database.Database` (callbacks arrive on the writing
thread) or a remote :class:`~repro.mgmt.client.ManagementClient`
(callbacks arrive on its dispatcher thread).

**Fault tolerance.**  The control plane is the authoritative copy of
both neighbors' state, so every failure is recovered by *rebuilding
from the engine*:

* management-plane reconnect → re-issue the monitor subscription, diff
  the fresh snapshot against the engine's input relations
  (``runtime.dump``), and push the delete/insert delta through the
  normal sync path;
* device reconnect → replay the engine's current output relations as a
  read-diff full sync (stale entries deleted, missing ones inserted,
  multicast groups re-applied);
* a device that fails ``breaker_threshold`` consecutive syncs with a
  transport error is **quarantined**: the sync loop skips it (healthy
  devices are never blocked behind a dead one) until its connection
  recovers, at which point the reconnect full-sync repairs everything
  it missed.

:meth:`NerpaController.health` reports per-peer connection state,
retry counts, quarantine flags, and the transition history
(``connected → retrying → quarantined → recovered``).

Per-sync latency — the interval the paper measures in §4.3 between the
controller *reading* a change and the data-plane entry being written —
is recorded in :attr:`NerpaController.sync_latencies`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.analysis.stats import percentile
from repro.core.codegen import TableBinding
from repro.core.pipeline import MULTICAST_RELATION, NerpaProject
from repro.core.typebridge import dlog_value_to_match, ovsdb_value_to_dlog
from repro.dlog.dataflow.zset import ZSet
from repro.dlog.values import StructValue
from repro.errors import ProtocolError, ReproError, TypeCheckError
from repro.mgmt.database import Database
from repro.mgmt.monitor import MonitorSpec, TableUpdates
from repro.obs.trace import current_update_id, use_update_id
from repro.p4.simulator import Simulator
from repro.p4.tables import TableEntry
from repro.p4runtime.api import DeviceService, TableWrite

#: Exceptions treated as *transport* failures by the circuit breaker.
#: Semantic rejections (``WriteError`` etc.) still propagate — they
#: indicate a controller bug, not a flaky peer.
_TRANSPORT_ERRORS = (ProtocolError, OSError)


class _LocalMgmt:
    def __init__(self, db: Database):
        self.db = db
        self.monitor = None

    def subscribe(self, tables, callback) -> TableUpdates:
        spec = MonitorSpec({t: None for t in tables})
        self.monitor, initial = self.db.add_monitor(spec, callback)
        return initial

    def unsubscribe(self) -> None:
        if self.monitor is not None:
            self.db.remove_monitor(self.monitor)
            self.monitor = None

    def on_reconnect(self, hook) -> None:
        pass  # in-process databases do not disconnect

    def health(self) -> Dict[str, object]:
        return {"peer": "local-db", "state": "connected", "transitions": []}


class _RemoteMgmt:
    def __init__(self, client):
        self.client = client
        self.monitor_id = None

    def subscribe(self, tables, callback) -> TableUpdates:
        self.monitor_id, initial = self.client.monitor(
            {t: None for t in tables}, callback
        )
        return initial

    def unsubscribe(self) -> None:
        if self.monitor_id is not None:
            self.client.monitor_cancel(self.monitor_id)
            self.monitor_id = None

    def on_reconnect(self, hook) -> None:
        self.client.on_reconnect(hook)

    def health(self) -> Dict[str, object]:
        return self.client.health()


class _LocalDevice:
    def __init__(self, target):
        if isinstance(target, Simulator):
            self.service = DeviceService(target)
        else:
            self.service = target
        self._event_log: List[str] = []

    def write(self, updates) -> None:
        self.service.write(updates)

    def read_table(self, table: str):
        return [
            TableWrite("INSERT", table, e)
            for e in self.service.read_table(table)
        ]

    def set_multicast_group(self, group_id, ports) -> None:
        self.service.set_multicast_group(group_id, ports)

    def delete_multicast_group(self, group_id) -> None:
        self.service.delete_multicast_group(group_id)

    def attach_digests(self, callback) -> None:
        sim = self.service.sim
        previous = sim.digest_callback

        def chained(message):
            if previous is not None:
                previous(message)
            # Bind the update-id of the config change that installed
            # the digest-producing entries, so the feedback transaction
            # can link back to it without a signature change.
            uid = getattr(message, "update_id", None)
            if uid is not None:
                with use_update_id(uid):
                    callback(message.name, message.values)
            else:
                callback(message.name, message.values)

        sim.digest_callback = chained

    def on_reconnect(self, hook) -> None:
        pass  # in-process devices do not disconnect

    def note_event(self, tag: str) -> None:
        self._event_log.append(tag)

    def health(self) -> Dict[str, object]:
        return {
            "peer": "local-device",
            "state": "connected",
            "transitions": list(self._event_log),
        }


class _RemoteDevice:
    def __init__(self, client):
        self.client = client

    def write(self, updates) -> None:
        self.client.write(updates)

    def read_table(self, table: str):
        return self.client.read_table(table)

    def set_multicast_group(self, group_id, ports) -> None:
        self.client.set_multicast_group(group_id, ports)

    def delete_multicast_group(self, group_id) -> None:
        self.client.delete_multicast_group(group_id)

    def attach_digests(self, callback) -> None:
        self.client.subscribe_digests(callback)

    def on_reconnect(self, hook) -> None:
        self.client.on_reconnect(hook)

    def note_event(self, tag: str) -> None:
        self.client.conn.note_event(tag)

    def health(self) -> Dict[str, object]:
        return self.client.health()


class _ManagedDevice:
    """A device plus its circuit-breaker state."""

    def __init__(self, io, name: str):
        self.io = io
        self.name = name
        self.consecutive_failures = 0
        self.quarantined = False
        self.syncs_missed = 0
        self.resyncs = 0
        self.last_error: Optional[str] = None

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self, exc: BaseException, threshold: int) -> bool:
        """Returns True if this failure tripped the breaker."""
        self.consecutive_failures += 1
        self.last_error = str(exc) or type(exc).__name__
        if not self.quarantined and self.consecutive_failures >= threshold:
            self.quarantined = True
            self.io.note_event("quarantined")
            return True
        return False

    def recover(self) -> None:
        if self.quarantined:
            self.io.note_event("recovered")
        self.quarantined = False
        self.consecutive_failures = 0
        self.resyncs += 1

    def health(self) -> Dict[str, object]:
        report = dict(self.io.health())
        report.update(
            {
                "name": self.name,
                "quarantined": self.quarantined,
                "consecutive_failures": self.consecutive_failures,
                "syncs_missed": self.syncs_missed,
                "resyncs": self.resyncs,
            }
        )
        if self.last_error is not None:
            report["last_device_error"] = self.last_error
        return report


def _wrap_device(target):
    from repro.p4runtime.client import P4RuntimeClient

    if isinstance(target, P4RuntimeClient):
        return _RemoteDevice(target)
    if isinstance(target, (Simulator, DeviceService)):
        return _LocalDevice(target)
    raise TypeError(f"cannot manage device {target!r}")


def _wrap_mgmt(target):
    from repro.mgmt.client import ManagementClient

    if isinstance(target, Database):
        return _LocalMgmt(target)
    if isinstance(target, ManagementClient):
        return _RemoteMgmt(target)
    raise TypeError(f"cannot use {target!r} as a management plane")


class NerpaController:
    """Keeps management, control, and data planes synchronized."""

    def __init__(
        self,
        project: NerpaProject,
        mgmt,
        devices,
        breaker_threshold: int = 3,
    ):
        self.project = project
        self.bindings = project.bindings
        self.runtime = project.program.start()
        self.mgmt = _wrap_mgmt(mgmt)
        self.devices = [
            _ManagedDevice(_wrap_device(d), f"device-{i}")
            for i, d in enumerate(devices)
        ]
        self.breaker_threshold = breaker_threshold
        self._lock = threading.RLock()
        self._mcast_members: Dict[int, set] = {}
        self._started = False
        # When not None, table writes are collected here instead of
        # being sent (used to compute the desired state on a
        # reconciling restart).  Multicast config is idempotent and is
        # always applied directly.
        self._buffer_writes: Optional[List[TableWrite]] = None

        # Metrics.
        self.sync_count = 0
        self.sync_latencies: List[float] = []
        self.entries_written = 0
        self.digests_processed = 0
        self.mgmt_reconciles = 0
        self.device_resyncs = 0
        self.last_result = None

        self._ovsdb_tables = list(self.bindings.relation_for_ovsdb)
        # Cache of schema column order per OVSDB table.
        self._columns = {
            table: list(project.schema.table(table).columns.values())
            for table in self._ovsdb_tables
        }

    # -- lifecycle ---------------------------------------------------------------

    def start(self, reconcile: bool = False) -> "NerpaController":
        """Subscribe to both ends and sync the initial state.

        With ``reconcile=True`` the controller assumes it may be
        restarting against devices that already hold entries (e.g. the
        previous controller instance crashed): instead of blindly
        inserting, it computes the desired state from the initial
        snapshot, reads each device's tables, and issues only the
        difference — stale entries are deleted, missing ones inserted,
        already-correct ones left untouched.
        """
        if self._started:
            raise ReproError("controller already started")
        self._started = True
        for device in self.devices:
            device.io.attach_digests(self._on_digest)
            device.io.on_reconnect(self._device_reconnect_hook(device))
        if reconcile:
            # Compute desired state silently (buffer writes), then diff.
            self._buffer_writes = []
            self._push_outputs(self.runtime.initial_result)
            initial = self.mgmt.subscribe(self._ovsdb_tables, self._on_updates)
            self._on_updates(initial)
            desired = self._buffer_writes
            self._buffer_writes = None
            self._reconcile(desired)
        else:
            self._push_outputs(self.runtime.initial_result)
            initial = self.mgmt.subscribe(self._ovsdb_tables, self._on_updates)
            self._on_updates(initial)
        self.mgmt.on_reconnect(self._on_mgmt_reconnect)
        return self

    def _reconcile(
        self,
        desired_writes: List[TableWrite],
        devices: Optional[List[_ManagedDevice]] = None,
    ) -> None:
        """Bring every targeted device to exactly the desired entry set."""
        desired: Dict[str, Dict[tuple, TableWrite]] = {}
        for write in desired_writes:
            if write.kind == "INSERT":
                desired.setdefault(write.table, {})[
                    write.entry.match_key()
                ] = write
            elif write.kind == "DELETE":
                desired.get(write.table, {}).pop(write.entry.match_key(), None)
        for device in devices if devices is not None else self.devices:
            fixes: List[TableWrite] = []
            for binding in self.bindings.table_relations.values():
                table = binding.info.name
                want = dict(desired.get(table, {}))
                for existing in device.io.read_table(table):
                    key = existing.entry.match_key()
                    wanted = want.pop(key, None)
                    if wanted is None:
                        fixes.append(
                            TableWrite.delete(table, existing.entry)
                        )
                    elif (
                        wanted.entry.action != existing.entry.action
                        or wanted.entry.action_params
                        != existing.entry.action_params
                    ):
                        fixes.append(TableWrite.modify(table, wanted.entry))
                fixes.extend(want.values())  # still-missing entries
            fixes.sort(key=lambda w: 0 if w.kind == "DELETE" else 1)
            if fixes:
                device.io.write(fixes)
                self.entries_written += len(fixes)

    def stop(self) -> None:
        # Best-effort: stopping a stack whose management plane is
        # already down must not raise out of teardown.
        try:
            self.mgmt.unsubscribe()
        except (ProtocolError, OSError):
            pass
        self._started = False

    def __enter__(self) -> "NerpaController":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- recovery ----------------------------------------------------------------

    def _on_mgmt_reconnect(self) -> None:
        """The management channel came back (possibly to a restarted
        server).  Re-subscribe, then reconcile the fresh snapshot
        against the engine's input relations: rows that vanished while
        we were deaf become deletes, new rows become inserts, and the
        resulting deltas flow through the normal sync path."""
        with self._lock:
            if not self._started:
                return
            fresh = self.mgmt.subscribe(self._ovsdb_tables, self._on_updates)
            inserts: Dict[str, List[tuple]] = {}
            deletes: Dict[str, List[tuple]] = {}
            for table in self._ovsdb_tables:
                relation = self.bindings.relation_for_ovsdb[table]
                fresh_rows = set()
                for uuid, update in fresh.table(table).items():
                    if update.new is not None:
                        fresh_rows.add(
                            self._row_to_dlog(table, uuid, update.new)
                        )
                current = self.runtime.dump(relation)
                stale = current - fresh_rows
                missing = fresh_rows - current
                if stale:
                    deletes[relation] = list(stale)
                if missing:
                    inserts[relation] = list(missing)
            self.mgmt_reconciles += 1
            if not inserts and not deletes:
                return
            result = self.runtime.transaction(inserts=inserts, deletes=deletes)
            self._push_outputs(result)
            self.sync_count += 1
            self.last_result = result

    def _device_reconnect_hook(self, device: _ManagedDevice):
        def hook() -> None:
            self.resync_device(device)

        return hook

    def resync_device(self, device) -> None:
        """Full-sync one device from the engine's output relations.

        ``device`` may be a :class:`_ManagedDevice` or an index into
        :attr:`devices`.  The engine is authoritative: the device's
        tables are read, diffed against the replayed outputs, and
        repaired; multicast groups are re-applied.  Clears quarantine.
        """
        if isinstance(device, int):
            device = self.devices[device]
        with self._lock:
            self._reconcile(self._desired_writes(), devices=[device])
            for group, members in sorted(self._mcast_members.items()):
                if members:
                    device.io.set_multicast_group(group, sorted(members))
            device.recover()
            self.device_resyncs += 1

    def _desired_writes(self) -> List[TableWrite]:
        """Replay the engine's current output relations as inserts —
        the authoritative desired state of every device table."""
        writes: List[TableWrite] = []
        for relation, binding in self.bindings.table_relations.items():
            for row in self.runtime.dump(relation):
                writes.append(
                    TableWrite.insert(
                        binding.info.name, self._row_to_entry(binding, row)
                    )
                )
        return writes

    # -- management-plane events ---------------------------------------------------

    def _on_updates(self, updates: TableUpdates) -> None:
        with self._lock:
            started = time.perf_counter()
            inserts: Dict[str, List[tuple]] = {}
            deletes: Dict[str, List[tuple]] = {}
            for table, rows in updates:
                relation = self.bindings.relation_for_ovsdb.get(table)
                if relation is None:
                    continue
                for uuid, update in rows.items():
                    if update.kind == "insert":
                        inserts.setdefault(relation, []).append(
                            self._row_to_dlog(table, uuid, update.new)
                        )
                    elif update.kind == "delete":
                        deletes.setdefault(relation, []).append(
                            self._row_to_dlog(table, uuid, update.old)
                        )
                    else:  # modify: old carries only the changed columns
                        old_full = dict(update.new)
                        old_full.update(update.old)
                        deletes.setdefault(relation, []).append(
                            self._row_to_dlog(table, uuid, old_full)
                        )
                        inserts.setdefault(relation, []).append(
                            self._row_to_dlog(table, uuid, update.new)
                        )
            if not inserts and not deletes:
                return
            if obs.enabled():
                # Inherit the transact's update-id (bound by the mgmt
                # plane around this callback); the initial snapshot has
                # none, so mint one for it.
                uid = current_update_id() or obs.mint_update_id()
                rows = sum(map(len, inserts.values())) + sum(
                    map(len, deletes.values())
                )
                with use_update_id(uid), obs.TRACER.span(
                    "controller.sync", update_id=uid, rows=rows
                ):
                    result = self.runtime.transaction(
                        inserts=inserts, deletes=deletes
                    )
                    self._push_outputs(result)
                obs.REGISTRY.counter("controller_syncs_total").inc()
                obs.REGISTRY.histogram("controller_sync_seconds").observe(
                    time.perf_counter() - started
                )
            else:
                result = self.runtime.transaction(
                    inserts=inserts, deletes=deletes
                )
                self._push_outputs(result)
            self.sync_count += 1
            self.sync_latencies.append(time.perf_counter() - started)
            self.last_result = result

    def _row_to_dlog(self, table: str, uuid: str, row: dict) -> tuple:
        values = [uuid]
        for column in self._columns[table]:
            values.append(ovsdb_value_to_dlog(column.type, row[column.name]))
        return tuple(values)

    # -- data-plane feedback -----------------------------------------------------------

    def _on_digest(self, name: str, values: Tuple[int, ...]) -> None:
        relation = self.bindings.digest_relations.get(name)
        if relation is None:
            return
        with self._lock:
            started = time.perf_counter()
            if obs.enabled():
                # The delivery path bound the update-id of the config
                # change whose entries produced this digest; the
                # feedback transaction gets a fresh id linked back.
                link = current_update_id()
                uid = obs.mint_update_id()
                with use_update_id(uid), obs.TRACER.span(
                    "controller.digest",
                    update_id=uid,
                    digest=name,
                    link=link,
                ):
                    result = self.runtime.transaction(
                        inserts={relation: [tuple(values)]}
                    )
                    self.digests_processed += 1
                    pushed = bool(result.deltas)
                    if pushed:
                        self._push_outputs(result)
                obs.REGISTRY.counter(
                    "controller_digests_total", digest=name
                ).inc()
                if pushed:
                    self.sync_count += 1
                    self.sync_latencies.append(
                        time.perf_counter() - started
                    )
                    self.last_result = result
            else:
                result = self.runtime.transaction(
                    inserts={relation: [tuple(values)]}
                )
                self.digests_processed += 1
                if result.deltas:
                    self._push_outputs(result)
                    self.sync_count += 1
                    self.sync_latencies.append(
                        time.perf_counter() - started
                    )
                    self.last_result = result

    # -- output propagation --------------------------------------------------------------

    def _push_outputs(self, result) -> None:
        writes: List[TableWrite] = []
        for relation, delta in result.deltas.items():
            binding = self.bindings.table_relations.get(relation)
            if binding is not None:
                writes.extend(self._delta_to_writes(binding, delta))
            elif relation == MULTICAST_RELATION:
                self._apply_multicast(delta)
        if not writes:
            return
        # Deletes first so a changed entry (delete+insert with the same
        # match key) never collides.
        writes.sort(key=lambda w: 0 if w.kind == "DELETE" else 1)
        if self._buffer_writes is not None:
            self._buffer_writes.extend(writes)
            return
        for device in self.devices:
            if obs.enabled():
                with obs.TRACER.span(
                    "device.write", device=device.name, writes=len(writes)
                ) as span:
                    applied = self._breaker_write(
                        device, lambda io: io.write(writes)
                    )
                    span.set(applied=applied)
            else:
                applied = self._breaker_write(
                    device, lambda io: io.write(writes)
                )
            if applied:
                self.entries_written += len(writes)

    def _breaker_write(self, device: _ManagedDevice, op) -> bool:
        """Apply ``op`` to one device through its circuit breaker.

        Returns True if the write was applied.  Quarantined devices are
        skipped (their state is repaired wholesale on recovery); a
        transport failure counts toward the breaker threshold.  Semantic
        rejections propagate — they are bugs, not outages.
        """
        if device.quarantined:
            device.syncs_missed += 1
            if obs.enabled():
                obs.REGISTRY.counter(
                    "controller_syncs_skipped_total", device=device.name
                ).inc()
            return False
        try:
            op(device.io)
        except _TRANSPORT_ERRORS as exc:
            tripped = device.record_failure(exc, self.breaker_threshold)
            device.syncs_missed += 1
            if obs.enabled():
                obs.REGISTRY.counter(
                    "controller_breaker_failures_total", device=device.name
                ).inc()
                if tripped:
                    obs.REGISTRY.counter(
                        "controller_breaker_trips_total", device=device.name
                    ).inc()
            return False
        device.record_success()
        return True

    def _delta_to_writes(self, binding: TableBinding, delta: ZSet) -> List[TableWrite]:
        writes = []
        for row, weight in delta.items():
            entry = self._row_to_entry(binding, row)
            if weight > 0:
                writes.append(TableWrite.insert(binding.info.name, entry))
            else:
                writes.append(TableWrite.delete(binding.info.name, entry))
        return writes

    def _row_to_entry(self, binding: TableBinding, row: tuple) -> TableEntry:
        n_keys = len(binding.key_columns)
        matches = [
            dlog_value_to_match(field, value)
            for (_, field), value in zip(binding.key_columns, row[:n_keys])
        ]
        action_value = row[n_keys]
        if not isinstance(action_value, StructValue):
            raise TypeCheckError(
                f"{binding.relation}: action column must be a constructor "
                f"of {binding.info.name}'s action union, got {action_value!r}"
            )
        resolved = binding.actions_by_constructor.get(action_value.constructor)
        if resolved is None:
            raise TypeCheckError(
                f"{binding.relation}: {action_value.constructor} is not an "
                f"action of table {binding.info.name}"
            )
        action_name, param_count = resolved
        if len(action_value.fields) != param_count:
            raise TypeCheckError(
                f"{binding.relation}: action {action_name} expects "
                f"{param_count} parameter(s)"
            )
        priority = row[n_keys + 1] if binding.has_priority else 0
        return TableEntry(
            matches, action_name, list(action_value.fields), priority
        )

    def _apply_multicast(self, delta: ZSet) -> None:
        changed = set()
        for row, weight in delta.items():
            group, port = int(row[0]), int(row[1])
            members = self._mcast_members.setdefault(group, set())
            if weight > 0:
                members.add(port)
            else:
                members.discard(port)
            changed.add(group)
        for group in sorted(changed):
            members = self._mcast_members.get(group, set())
            for device in self.devices:
                if members:
                    self._breaker_write(
                        device,
                        lambda io: io.set_multicast_group(
                            group, sorted(members)
                        ),
                    )
                else:
                    self._breaker_write(
                        device, lambda io: io.delete_multicast_group(group)
                    )
            if not members:
                self._mcast_members.pop(group, None)

    # -- introspection ---------------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Per-peer connection state, retry counters, and transitions."""
        return {
            "mgmt": self.mgmt.health(),
            "devices": [device.health() for device in self.devices],
            "mgmt_reconciles": self.mgmt_reconciles,
            "device_resyncs": self.device_resyncs,
        }

    def metrics(self) -> Dict[str, object]:
        latencies = self.sync_latencies
        out = {
            "syncs": self.sync_count,
            "entries_written": self.entries_written,
            "digests_processed": self.digests_processed,
            "mgmt_reconciles": self.mgmt_reconciles,
            "device_resyncs": self.device_resyncs,
            "mean_sync_latency": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "last_sync_latency": latencies[-1] if latencies else 0.0,
            "sync_latency_p50": percentile(latencies, 50) if latencies else 0.0,
            "sync_latency_p95": percentile(latencies, 95) if latencies else 0.0,
            "engine": self.runtime.profile(),
        }
        if obs.enabled():
            out["registry"] = obs.REGISTRY.snapshot()
        return out
