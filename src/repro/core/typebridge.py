"""The shared type system across the three planes.

"To aid correctness, all three parts are type-checked together" — this
module defines the mapping that makes that possible:

===================  ==========================  =====================
management (OVSDB)   control (dlog)              data (P4)
===================  ==========================  =====================
integer              bigint
real                 float
boolean              bool
string / uuid        string
optional T           Option<T>
set of T             Vec<T> (sorted)
map K->V             Map<K,V>
\\-                   bit<N>                      bit<N> field
\\-                   (bit<N>, bigint)            lpm key (value, len)
\\-                   (bit<N>, bit<N>)            ternary key (value, mask)
===================  ==========================  =====================

plus the value converters the controller uses at runtime to move rows
between representations without hand-written glue.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dlog import types as T
from repro.dlog.values import MapValue, StructValue
from repro.errors import TypeCheckError
from repro.mgmt.schema import ColumnType
from repro.p4.p4info import MatchField, TableInfo
from repro.p4.tables import FieldMatch

_ATOM_TO_DLOG: Dict[str, T.Type] = {
    "integer": T.BIGINT,
    "real": T.FLOAT,
    "boolean": T.BOOL,
    "string": T.STRING,
    "uuid": T.STRING,
}

_ATOM_TO_DLOG_TEXT: Dict[str, str] = {
    "integer": "bigint",
    "real": "float",
    "boolean": "bool",
    "string": "string",
    "uuid": "string",
}


def ovsdb_column_to_dlog(ctype: ColumnType) -> T.Type:
    """The dlog type of an OVSDB column."""
    key = _ATOM_TO_DLOG[ctype.key]
    if ctype.is_scalar:
        return key
    if ctype.is_optional:
        return T.TUser("Option", [key])
    if ctype.is_map:
        return T.TMap(key, _ATOM_TO_DLOG[ctype.value])
    return T.TVec(key)


def ovsdb_column_to_dlog_text(ctype: ColumnType) -> str:
    """Same mapping, as dlog source text (for generated declarations)."""
    key = _ATOM_TO_DLOG_TEXT[ctype.key]
    if ctype.is_scalar:
        return key
    if ctype.is_optional:
        return f"Option<{key}>"
    if ctype.is_map:
        return f"Map<{key}, {_ATOM_TO_DLOG_TEXT[ctype.value]}>"
    return f"Vec<{key}>"


def ovsdb_value_to_dlog(ctype: ColumnType, value) -> object:
    """Convert a committed OVSDB value into a dlog runtime value."""
    if ctype.is_scalar:
        return value
    if ctype.is_optional:
        if value is None:
            return StructValue("None", ())
        return StructValue("Some", (value,))
    if ctype.is_map:
        return MapValue(value.items())
    return tuple(sorted(value, key=repr))


def match_field_to_dlog(field: MatchField) -> T.Type:
    """The dlog type of one P4 table key column."""
    value = T.TBit(field.width)
    if field.match_kind == "exact":
        return value
    if field.match_kind == "lpm":
        return T.TTuple([value, T.BIGINT])
    return T.TTuple([value, T.TBit(field.width)])


def match_field_to_dlog_text(field: MatchField) -> str:
    if field.match_kind == "exact":
        return f"bit<{field.width}>"
    if field.match_kind == "lpm":
        return f"(bit<{field.width}>, bigint)"
    return f"(bit<{field.width}>, bit<{field.width}>)"


def dlog_value_to_match(field: MatchField, value) -> FieldMatch:
    """Convert a relation column value into a P4Runtime field match."""
    if field.match_kind == "exact":
        if not isinstance(value, int):
            raise TypeCheckError(
                f"{field.name}: exact match expects an integer, got {value!r}"
            )
        return FieldMatch.exact(value)
    if not isinstance(value, tuple) or len(value) != 2:
        raise TypeCheckError(
            f"{field.name}: {field.match_kind} match expects a pair, "
            f"got {value!r}"
        )
    if field.match_kind == "lpm":
        return FieldMatch.lpm(value[0], value[1])
    return FieldMatch.ternary(value[0], value[1])


def action_constructor_name(table: TableInfo, action_name: str) -> str:
    """Constructor name for one action of a table's action union."""
    return f"{camel(table.name)}Action{camel(action_name)}"


def action_union_name(table: TableInfo) -> str:
    return f"{table.name}_action_t"


def relation_name_for_table(table_name: str) -> str:
    """P4 table name -> generated output relation name (CamelCase)."""
    return camel(table_name)


def relation_name_for_digest(digest_name: str) -> str:
    name = digest_name[:-2] if digest_name.endswith("_t") else digest_name
    return camel(name)


def camel(name: str) -> str:
    """snake_case -> CamelCase, preserving interior capitals
    (``no_action`` -> ``NoAction``, ``NoAction`` -> ``NoAction``)."""
    return "".join(
        part[0].upper() + part[1:] for part in name.split("_") if part
    )


def table_key_columns(table: TableInfo) -> List[Tuple[str, MatchField]]:
    """Sanitized, unique column names for a table's key fields."""
    used: Dict[str, int] = {}
    out: List[Tuple[str, MatchField]] = []
    for field in table.match_fields:
        base = field.name.split(".")[-1]
        base = "".join(c if (c.isalnum() or c == "_") else "_" for c in base)
        if not base or not (base[0].isalpha() or base[0] == "_"):
            base = f"k_{base}"
        count = used.get(base, 0)
        used[base] = count + 1
        out.append((base if count == 0 else f"{base}_{count}", field))
    return out


def dlog_action_value(
    table: TableInfo, action_name: str, params: Tuple[int, ...]
) -> StructValue:
    """Build the action-union runtime value for a table entry."""
    return StructValue(action_constructor_name(table, action_name), params)
