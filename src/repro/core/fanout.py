"""Stage 3 as an event-loop plane: one reactor, N device state machines.

PR 3's apply stage spent one OS thread + one blocking socket per
device, capping the fleet at a few hundred switches.  This module keeps
every *semantic* of that design — per-device FIFO, tail coalescing,
barrier/supersede on the :class:`~repro.core.pipeline.queues.
CoalescingQueue`, the circuit breaker, ``drain()`` accounting — but
replaces the thread-per-device execution with:

* a shared :class:`~repro.net.aio.Reactor` multiplexing every device
  connection, and
* one :class:`DeviceChannel` per device — a lightweight state machine
  (``idle → batch-in-flight → awaiting-ack``, with the breaker's
  quarantine visible alongside) driven by the queue's ``on_ready``
  callback instead of a thread parked in ``pop()``.

Two execution paths per channel:

* **async** — devices backed by an
  :class:`~repro.p4runtime.aio_client.AioP4RuntimeClient` issue the
  batched write through the reactor (non-blocking, watermark-aware:
  a channel whose connection is past its high watermark parks on
  ``on_drain`` instead of buffering unboundedly) and complete on the
  ack.  Thousands of such devices cost zero threads.
* **blocking** — local simulators and classic blocking clients run
  each operation on a small shared pool.  At most one operation per
  device is ever in flight (that is what preserves FIFO), so the pool
  serves as a concurrency cap, not a correctness mechanism.

Control items (:class:`_WriterTask` resyncs, warm syncs) always take
the blocking path — they perform read-diff round trips and must never
run on the loop thread.

Obs: ``fanout_inflight`` (operations between pop and completion),
``fanout_send_buffer_bytes{device=}`` (async channels' outbound
backlog), plus the reactor's own ``reactor_loop_lag_seconds``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional

from repro import obs
from repro.core.pipeline.queues import CoalescingQueue
from repro.net.aio import Reactor

#: Channel states (``quarantined`` is the breaker's view, reported
#: alongside rather than replacing the I/O state).
IDLE = "idle"
IN_FLIGHT = "batch-in-flight"
AWAITING_ACK = "awaiting-ack"


class FanoutPlane:
    """The shared machinery behind every :class:`DeviceChannel`.

    ``reactor=None`` creates (and owns) a private reactor; passing one
    in shares it — e.g. with the
    :class:`~repro.p4runtime.aio_client.AioP4RuntimeClient` connections
    the channels drive, which *must* be on the same reactor so channel
    callbacks and connection callbacks never race.
    """

    def __init__(
        self,
        reactor: Optional[Reactor] = None,
        max_blocking_workers: int = 8,
        on_error: Optional[Callable[[BaseException], None]] = None,
    ):
        self._owns_reactor = reactor is None
        self.reactor = reactor if reactor is not None else Reactor("fanout")
        #: Receives exceptions a runner reported through ``done(exc)``
        #: (the controller defers them to ``drain()``).
        self.on_error = on_error
        self.reactor.start()
        self._pool = ThreadPoolExecutor(
            max_workers=max_blocking_workers,
            thread_name_prefix="fanout-blocking",
        )
        self.channels: List["DeviceChannel"] = []
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._stopped = False

    @property
    def inflight(self) -> int:
        """Operations currently between pop and completion."""
        return self._inflight

    def _inflight_delta(self, delta: int) -> None:
        with self._inflight_lock:
            self._inflight += delta
            value = self._inflight
        if obs.enabled():
            obs.REGISTRY.gauge("fanout_inflight").set(value)

    def channel(
        self,
        device,
        runner: Callable,
        name: str,
        maxlen: int = 512,
        merge: bool = True,
    ) -> "DeviceChannel":
        chan = DeviceChannel(self, device, runner, name, maxlen, merge)
        self.channels.append(chan)
        return chan

    def run_blocking(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the shared pool (never on the loop thread)."""
        self._pool.submit(fn)

    def stop(self) -> None:
        """Idempotent: close queues, stop the pool (and the reactor if
        this plane created it)."""
        if self._stopped:
            return
        self._stopped = True
        for chan in self.channels:
            chan.queue.close()
        self._pool.shutdown(wait=False)
        if self._owns_reactor:
            self.reactor.stop()


class DeviceChannel:
    """One device's queue→reactor bridge.

    Replaces :class:`_DeviceWriter`'s thread with a state machine the
    reactor runs on demand.  Exposes the same surface the controller's
    drain/resync/health code relies on (``.queue``, ``.device``,
    ``.start()``), so the two apply planes are interchangeable.

    ``runner(channel, item, done)`` executes one queue item; it must
    arrange for ``done(exc_or_none)`` to be called exactly once, from
    any thread (a non-``None`` ``exc`` is deferred to ``drain()``).
    The channel never pops a second item until the first completes —
    per-device FIFO holds no matter where the runner does its work.
    """

    def __init__(
        self,
        plane: FanoutPlane,
        device,
        runner: Callable,
        name: str,
        maxlen: int = 512,
        merge: bool = True,
    ):
        self.plane = plane
        self.device = device
        self._runner = runner
        self.state = IDLE
        self._busy = False
        self.queue = CoalescingQueue(
            name=name,
            maxlen=maxlen,
            merge=merge,
            on_ready=self._notify,
        )

    def start(self) -> None:
        """Interchangeability shim with ``_DeviceWriter`` (nothing to
        start — the reactor is already running)."""
        self._notify()

    def _notify(self) -> None:
        self.plane.reactor.submit(self._pump)

    # -- loop thread ---------------------------------------------------------

    def _pump(self) -> None:
        """Pop-and-run until empty or busy.  A plain loop (never
        recursive): a burst of empty batches must not grow the stack."""
        while True:
            if self._busy:
                return
            item = self.queue.pop_nowait()
            if item is None:
                self.state = IDLE
                return
            self._busy = True
            self.state = IN_FLIGHT
            self.plane._inflight_delta(1)
            try:
                self._runner(self, item, self._completion())
            except Exception as exc:  # noqa: BLE001 - surfaced at drain()
                self._finish(exc)
            return  # completion re-enters _pump

    def mark_awaiting_ack(self) -> None:
        """Runner hook: the batch left the process; we hold only the
        pending ack (async path)."""
        self.state = AWAITING_ACK

    def _completion(self) -> Callable:
        fired = threading.Event()

        def done(exc: Optional[BaseException] = None) -> None:
            if fired.is_set():
                return
            fired.set()
            # Trampoline onto the loop thread: completion mutates
            # channel state and may pop the next item.
            if not self.plane.reactor.submit(self._finish, exc):
                self._finish(exc)  # reactor stopped: finish inline

        return done

    def _finish(self, exc: Optional[BaseException]) -> None:
        self._busy = False
        self.plane._inflight_delta(-1)
        self.queue.task_done()
        if exc is not None and self.plane.on_error is not None:
            self.plane.on_error(exc)
        self._pump()
