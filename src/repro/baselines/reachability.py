"""Hand-written graph labeling: the paper's flagship anecdote.

"Consider labeling reachable nodes in a graph, a standard problem for
computing forwarding tables.  A full computation can be done in tens of
lines of Java.  But an incremental Java implementation, supporting
dynamic insertions and deletions of network links and only recomputing
changed labels, is much harder.  Such an implementation in our
organization's networking virtualization platform required several
thousand lines of code."

Two implementations of the same contract as the two-rule dlog program::

    Label(n, l) :- GivenLabel(n, l).
    Label(n2, l) :- Label(n1, l), Edge(n1, n2).

* :class:`NaiveReachability` — the "tens of lines": full BFS per change.
* :class:`IncrementalReachability` — the hand-maintained version:
  insertion propagates forward; deletion over-invalidates downstream
  labels and re-derives the ones with surviving alternative support
  (yes, this is hand-rolled DRed — that is the point the paper makes:
  you end up re-implementing the database machinery by hand, once per
  algorithm, and every subtle case below is a production bug waiting
  to happen).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

Node = int
Label = str


class NaiveReachability:
    """Recompute all labels from scratch on every change."""

    def __init__(self):
        self.edges: Set[Tuple[Node, Node]] = set()
        self.given: Set[Tuple[Node, Label]] = set()
        self.labels: Set[Tuple[Node, Label]] = set()
        self.work_counter = 0  # node visits, a machine-independent cost proxy

    def add_edge(self, a: Node, b: Node) -> None:
        self.edges.add((a, b))
        self._recompute()

    def remove_edge(self, a: Node, b: Node) -> None:
        self.edges.discard((a, b))
        self._recompute()

    def add_given(self, node: Node, label: Label) -> None:
        self.given.add((node, label))
        self._recompute()

    def remove_given(self, node: Node, label: Label) -> None:
        self.given.discard((node, label))
        self._recompute()

    def _recompute(self) -> None:
        out_edges: Dict[Node, List[Node]] = {}
        for a, b in self.edges:
            out_edges.setdefault(a, []).append(b)
        labels: Set[Tuple[Node, Label]] = set()
        for node, label in self.given:
            queue = deque([node])
            while queue:
                current = queue.popleft()
                self.work_counter += 1
                if (current, label) in labels:
                    continue
                labels.add((current, label))
                for succ in out_edges.get(current, ()):
                    if (succ, label) not in labels:
                        queue.append(succ)
        self.labels = labels


class IncrementalReachability:
    """Hand-written incremental labeling with deletion support."""

    def __init__(self):
        self.out_edges: Dict[Node, Set[Node]] = {}
        self.in_edges: Dict[Node, Set[Node]] = {}
        self.given: Set[Tuple[Node, Label]] = set()
        self.labels: Set[Tuple[Node, Label]] = set()
        self.work_counter = 0

    # -- mutations ----------------------------------------------------------

    def add_edge(self, a: Node, b: Node) -> None:
        if b in self.out_edges.get(a, ()):
            return
        self.out_edges.setdefault(a, set()).add(b)
        self.in_edges.setdefault(b, set()).add(a)
        # Propagate every label of a forward from b.
        for node, label in list(self.labels):
            if node == a:
                self._propagate(b, label)

    def remove_edge(self, a: Node, b: Node) -> None:
        if b not in self.out_edges.get(a, ()):
            return
        self.out_edges[a].discard(b)
        self.in_edges[b].discard(a)
        # Labels of b obtained via a are now suspect.
        suspects = {label for node, label in self.labels if node == a}
        self._invalidate(b, suspects)

    def add_given(self, node: Node, label: Label) -> None:
        if (node, label) in self.given:
            return
        self.given.add((node, label))
        self._propagate(node, label)

    def remove_given(self, node: Node, label: Label) -> None:
        if (node, label) not in self.given:
            return
        self.given.discard((node, label))
        self._invalidate(node, {label})

    # -- internals --------------------------------------------------------------

    def _propagate(self, start: Node, label: Label) -> None:
        queue = deque([start])
        while queue:
            node = queue.popleft()
            self.work_counter += 1
            if (node, label) in self.labels:
                continue
            self.labels.add((node, label))
            for succ in self.out_edges.get(node, ()):
                if (succ, label) not in self.labels:
                    queue.append(succ)

    def _invalidate(self, start: Node, suspect_labels: Set[Label]) -> None:
        """Over-invalidate downstream, then re-derive survivors.

        The subtle cases that made the production version hard all live
        here: cycles that support themselves, diamonds providing
        alternative paths, and deletions that cut one of several routes.
        """
        if not suspect_labels:
            return
        # Phase 1: collect everything transitively supported by start
        # for each suspect label (over-approximation).
        removed: Set[Tuple[Node, Label]] = set()
        for label in suspect_labels:
            if (start, label) not in self.labels:
                continue
            queue = deque([start])
            seen = {start}
            while queue:
                node = queue.popleft()
                self.work_counter += 1
                if (node, label) not in self.labels:
                    continue
                removed.add((node, label))
                for succ in self.out_edges.get(node, ()):
                    if succ not in seen:
                        seen.add(succ)
                        queue.append(succ)
        self.labels -= removed
        # Phase 2: re-derive removed facts that still have support from
        # the surviving state, to fixpoint.
        changed = True
        while changed:
            changed = False
            for node, label in list(removed):
                self.work_counter += 1
                if (node, label) in self.labels:
                    continue
                if (node, label) in self.given or any(
                    (pred, label) in self.labels
                    for pred in self.in_edges.get(node, ())
                ):
                    self.labels.add((node, label))
                    removed.discard((node, label))
                    changed = True
