"""Hand-written comparison baselines.

The paper's argument is comparative: an automatically incremental,
declarative control plane versus what engineers actually write today.
These modules are the "today" side, implemented the way the referenced
systems are:

* :mod:`repro.baselines.reachability` — hand-written incremental graph
  labeling (the task the paper says took "several thousand lines" and
  "multiple releases to debug" in an imperative language) plus the
  trivial full-recompute version;
* :mod:`repro.baselines.full_recompute` — a controller that rederives
  every table entry from the full configuration on each change;
* :mod:`repro.baselines.imperative` — an eBay-ovn-controller-style
  engine of explicit change callbacks, implementing the snvs feature
  set (the §4.3 LoC comparator);
* :mod:`repro.baselines.lb_controller` — a C-style load-balancer
  controller for the §2.2 worst-case benchmark.
"""
