"""The non-incremental controller: rederive everything on each change.

This is what §2.1 warns about: "Recomputing the state of an entire
network on each change requires significant CPU resources ... and
creates high control plane latency."  The controller holds the full
configuration, recomputes the complete derived state with a
user-supplied function on every event, and diffs against what is
installed to emit data-plane writes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Set, Tuple


class FullRecomputeController:
    """Generic recompute-and-diff controller.

    ``derive`` maps the configuration (a dict of row-sets per input
    table) to the complete derived entry set.  ``apply_change`` mutates
    one input table and recomputes; the returned delta is what a real
    controller would push to devices.
    """

    def __init__(self, derive: Callable[[Dict[str, Set[tuple]]], Set[tuple]]):
        self.derive = derive
        self.config: Dict[str, Set[tuple]] = {}
        self.installed: Set[tuple] = set()
        self.recompute_count = 0
        self.entries_computed = 0  # total derived entries over all runs

    def table(self, name: str) -> Set[tuple]:
        return self.config.setdefault(name, set())

    def apply_change(
        self,
        inserts: Dict[str, Iterable[tuple]] = None,
        deletes: Dict[str, Iterable[tuple]] = None,
    ) -> Tuple[Set[tuple], Set[tuple]]:
        """Apply input changes; returns ``(added, removed)`` entries."""
        for name, rows in (deletes or {}).items():
            self.table(name).difference_update(rows)
        for name, rows in (inserts or {}).items():
            self.table(name).update(rows)
        new_state = self.derive(self.config)
        self.recompute_count += 1
        self.entries_computed += len(new_state)
        added = new_state - self.installed
        removed = self.installed - new_state
        self.installed = new_state
        return added, removed
