"""An eBay-ovn-controller-style incremental engine, by hand.

§2.2 describes the approach that eventually shipped in production
ovn-controller: "an engine based on C callbacks ... The developer must
explicitly identify incremental changes.  The code's complexity makes
it difficult to understand, to update, or to confirm an update's
success."

:class:`ChangeEngine` is that engine: input tables with registered
per-table change handlers; each handler receives one row event and
emits data-plane entry deltas, maintaining whatever auxiliary indexes
it needs *by hand*.  :class:`ImperativeSnvs` implements the snvs
feature set on top of it and is the LoC comparator for the §4.3
accounting — compare its length (and the subtlety of its index
maintenance) with the ~30 rule lines in
:data:`repro.apps.snvs.artifacts.SNVS_DLOG`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set, Tuple


class ChangeEngine:
    """Explicit change-callback engine (the hand-written incremental style)."""

    def __init__(self):
        self.tables: Dict[str, Set[tuple]] = {}
        self.handlers: Dict[str, List[Callable[[str, tuple, bool], None]]] = {}
        self.events_processed = 0

    def declare(self, table: str) -> None:
        self.tables.setdefault(table, set())
        self.handlers.setdefault(table, [])

    def on_change(self, table: str, handler) -> None:
        self.handlers[table].append(handler)

    def insert(self, table: str, row: tuple) -> None:
        if row in self.tables[table]:
            return
        self.tables[table].add(row)
        self.events_processed += 1
        for handler in self.handlers[table]:
            handler(table, row, True)

    def delete(self, table: str, row: tuple) -> None:
        if row not in self.tables[table]:
            return
        self.tables[table].discard(row)
        self.events_processed += 1
        for handler in self.handlers[table]:
            handler(table, row, False)


class ImperativeSnvs:
    """The snvs derivations, written the way controllers are today.

    Input rows:
      Port(port, mode, tag, trunks)       mode in {"access", "trunk"}
      Vlan(vid)
      Mirror(src_port, dst_port)
      BlockedMac(vlan, mac)
      MacLearned(vlan, mac, port)

    Outputs (mirror the P4 tables): dicts of installed entries, plus an
    ``entry_deltas`` log of (table, entry, inserted) events — the writes
    a device would receive.
    """

    def __init__(self):
        self.engine = ChangeEngine()
        for table in ("Port", "Vlan", "Mirror", "BlockedMac", "MacLearned"):
            self.engine.declare(table)

        # Installed data-plane state.
        self.in_vlan: Set[tuple] = set()
        self.out_tag: Set[tuple] = set()
        self.blocked: Set[tuple] = set()
        self.fwd: Dict[Tuple[int, int], int] = {}
        self.mcast: Dict[int, Set[int]] = {}
        self.mirrors: Set[tuple] = set()
        self.entry_deltas: List[Tuple[str, tuple, bool]] = []

        # Hand-maintained indexes.  Each exists because some handler
        # needs to answer "which X depend on this Y" — the bookkeeping
        # the declarative version gets from the query planner.
        self._ports: Dict[int, Tuple[str, int, Tuple[int, ...]]] = {}
        self._vlans: Set[int] = set()
        self._ports_by_vlan: Dict[int, Set[int]] = {}
        self._learned_by_vlan_mac: Dict[Tuple[int, int], Set[int]] = {}

        self.engine.on_change("Port", self._port_changed)
        self.engine.on_change("Vlan", self._vlan_changed)
        self.engine.on_change("Mirror", self._mirror_changed)
        self.engine.on_change("BlockedMac", self._blocked_changed)
        self.engine.on_change("MacLearned", self._learned_changed)

    # -- emit helpers ---------------------------------------------------------

    def _emit(self, table: str, entry: tuple, inserted: bool) -> None:
        self.entry_deltas.append((table, entry, inserted))

    # -- Port ----------------------------------------------------------------

    def _port_vlans(self, mode: str, tag: int, trunks: Tuple[int, ...]):
        vlans = set()
        if tag in self._vlans:
            vlans.add(tag)
        if mode == "trunk":
            vlans.update(v for v in trunks if v in self._vlans)
        return vlans

    def _port_changed(self, _table, row, inserted) -> None:
        port, mode, tag, trunks = row
        if inserted:
            self._ports[port] = (mode, tag, trunks)
            self._install_port_classification(port, mode, tag, trunks)
            for vlan in self._port_vlans(mode, tag, trunks):
                self._mcast_add(vlan, port)
        else:
            self._ports.pop(port, None)
            self._remove_port_classification(port, mode, tag, trunks)
            for vlan in self._port_vlans(mode, tag, trunks):
                self._mcast_remove(vlan, port)

    def _install_port_classification(self, port, mode, tag, trunks) -> None:
        if tag in self._vlans:
            entry = (port, 0, (0, 0), ("set_vlan", tag), 1)
            self.in_vlan.add(entry)
            self._emit("in_vlan", entry, True)
        if mode == "trunk":
            for vid in trunks:
                if vid in self._vlans:
                    entry = (port, 1, (vid, 4095), ("use_tag",), 2)
                    self.in_vlan.add(entry)
                    self._emit("in_vlan", entry, True)
            tag_entry = (port, ("out_tagged",))
        else:
            tag_entry = (port, ("out_untagged",))
        self.out_tag.add(tag_entry)
        self._emit("out_tag", tag_entry, True)

    def _remove_port_classification(self, port, mode, tag, trunks) -> None:
        for entry in [e for e in self.in_vlan if e[0] == port]:
            self.in_vlan.discard(entry)
            self._emit("in_vlan", entry, False)
        for entry in [e for e in self.out_tag if e[0] == port]:
            self.out_tag.discard(entry)
            self._emit("out_tag", entry, False)

    # -- Vlan -----------------------------------------------------------------

    def _vlan_changed(self, _table, row, inserted) -> None:
        (vid,) = row
        if inserted:
            self._vlans.add(vid)
            # Every existing port that references this VLAN gains
            # classification entries and flood membership — the kind of
            # cross-table cascade that is easy to forget in this style.
            for port, (mode, tag, trunks) in self._ports.items():
                if tag == vid:
                    entry = (port, 0, (0, 0), ("set_vlan", tag), 1)
                    if entry not in self.in_vlan:
                        self.in_vlan.add(entry)
                        self._emit("in_vlan", entry, True)
                    self._mcast_add(vid, port)
                if mode == "trunk" and vid in trunks:
                    entry = (port, 1, (vid, 4095), ("use_tag",), 2)
                    if entry not in self.in_vlan:
                        self.in_vlan.add(entry)
                        self._emit("in_vlan", entry, True)
                    self._mcast_add(vid, port)
        else:
            self._vlans.discard(vid)
            for port, (mode, tag, trunks) in self._ports.items():
                if tag == vid:
                    entry = (port, 0, (0, 0), ("set_vlan", tag), 1)
                    if entry in self.in_vlan:
                        self.in_vlan.discard(entry)
                        self._emit("in_vlan", entry, False)
                if mode == "trunk" and vid in trunks:
                    entry = (port, 1, (vid, 4095), ("use_tag",), 2)
                    if entry in self.in_vlan:
                        self.in_vlan.discard(entry)
                        self._emit("in_vlan", entry, False)
            for port in list(self._ports_by_vlan.get(vid, ())):
                self._mcast_remove(vid, port)

    # -- Mirror / BlockedMac ------------------------------------------------------

    def _mirror_changed(self, _table, row, inserted) -> None:
        src, dst = row
        entry = (src, ("mirror_to", dst))
        if inserted:
            self.mirrors.add(entry)
        else:
            self.mirrors.discard(entry)
        self._emit("mirror_tap", entry, inserted)

    def _blocked_changed(self, _table, row, inserted) -> None:
        vlan, mac = row
        entry = (vlan, mac, ("drop",))
        if inserted:
            self.blocked.add(entry)
        else:
            self.blocked.discard(entry)
        self._emit("blocked", entry, inserted)

    # -- MAC learning ----------------------------------------------------------------

    def _learned_changed(self, _table, row, inserted) -> None:
        vlan, mac, port = row
        key = (vlan, mac)
        ports = self._learned_by_vlan_mac.setdefault(key, set())
        old_best = max(ports) if ports else None
        if inserted:
            ports.add(port)
        else:
            ports.discard(port)
        new_best = max(ports) if ports else None
        if old_best == new_best:
            return
        if old_best is not None:
            entry = (vlan, mac, ("forward", old_best))
            self.fwd.pop(key, None)
            self._emit("fwd", entry, False)
        if new_best is not None:
            entry = (vlan, mac, ("forward", new_best))
            self.fwd[key] = new_best
            self._emit("fwd", entry, True)
        if not ports:
            self._learned_by_vlan_mac.pop(key, None)

    # -- multicast membership -----------------------------------------------------------

    def _mcast_add(self, vlan: int, port: int) -> None:
        members = self.mcast.setdefault(vlan, set())
        tracked = self._ports_by_vlan.setdefault(vlan, set())
        if port not in members:
            members.add(port)
            tracked.add(port)
            self._emit("mcast", (vlan, port), True)

    def _mcast_remove(self, vlan: int, port: int) -> None:
        members = self.mcast.get(vlan)
        if members and port in members:
            members.discard(port)
            self._ports_by_vlan.get(vlan, set()).discard(port)
            self._emit("mcast", (vlan, port), False)
            if not members:
                self.mcast.pop(vlan, None)
