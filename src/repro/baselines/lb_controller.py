"""A C-style load-balancer controller (the §2.2 comparator).

The paper reports that on OVN's load-balancer benchmark "a DDlog
controller took 2x the CPU time and 5x the RAM as the C implementation"
— the automatically incremental engine pays for generality with
indexing it doesn't need here.  This is the C side: a purpose-built
controller with exactly one hand-chosen index (entries per load
balancer) and nothing else.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

Row = Tuple[int, int, int]  # (lb, vip, backend)


class HandWrittenLbController:
    """Derives per-switch NAT entries with minimal state.

    Contract (same as :data:`repro.workloads.loadbalancer.LB_DLOG_PROGRAM`):
    each attached (lb, switch) pair times each (lb, vip, backend) row
    yields one (switch, vip, backend) entry.
    """

    def __init__(self):
        # The only index: entries grouped by lb, so deleting a load
        # balancer is one dict pop.
        self._vips_by_lb: Dict[int, Set[Tuple[int, int]]] = {}
        self._switches_by_lb: Dict[int, Set[int]] = {}
        self.entries: Set[Tuple[int, int, int]] = set()
        self.writes = 0

    def cold_start(
        self,
        vip_rows: Iterable[Row],
        attachment_rows: Iterable[Tuple[int, int]],
    ) -> int:
        for lb, vip, backend in vip_rows:
            self._vips_by_lb.setdefault(lb, set()).add((vip, backend))
        for lb, switch in attachment_rows:
            self._switches_by_lb.setdefault(lb, set()).add(switch)
        added = 0
        for lb, pairs in self._vips_by_lb.items():
            for switch in self._switches_by_lb.get(lb, ()):
                for vip, backend in pairs:
                    self.entries.add((switch, vip, backend))
                    added += 1
        self.writes += added
        return added

    def delete_lb(self, lb: int) -> int:
        pairs = self._vips_by_lb.pop(lb, set())
        switches = self._switches_by_lb.pop(lb, set())
        removed = 0
        for switch in switches:
            for vip, backend in pairs:
                self.entries.discard((switch, vip, backend))
                removed += 1
        self.writes += removed
        return removed

    def state_records(self) -> int:
        """Resident records, the memory proxy compared against the
        engine's arrangement footprint."""
        return (
            len(self.entries)
            + sum(len(v) for v in self._vips_by_lb.values())
            + sum(len(v) for v in self._switches_by_lb.values())
        )
