"""Blocking client for the P4Runtime-style API.

Transport is a :class:`~repro.net.resilient.ResilientConnection`; this
layer keeps protocol knowledge only.  Digest and packet-in
subscriptions are session state on the server — after a reconnect the
client re-issues them automatically before running any registered
``on_reconnect`` hooks (the controller's hook then replays table state;
see :class:`~repro.core.controller.NerpaController`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeApiError
from repro.net.resilient import ResilientConnection
from repro.net.retry import RetryPolicy
from repro.obs.trace import current_update_id, use_update_id
from repro.p4runtime.api import TableWrite

_DEFAULT_TIMEOUT = 30.0


class P4RuntimeClient:
    """Talks to a :class:`~repro.p4runtime.server.P4RuntimeServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = _DEFAULT_TIMEOUT,
        connect_timeout: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
    ):
        if policy is None:
            policy = RetryPolicy(
                connect_timeout=(
                    connect_timeout if connect_timeout is not None else 10.0
                ),
                call_timeout=timeout,
            )
        self.timeout = policy.call_timeout
        self._digest_callback: Optional[
            Callable[[str, Tuple[int, ...]], None]
        ] = None
        self._packet_in_callback: Optional[
            Callable[[int, bytes], None]
        ] = None
        self._reconnect_hooks: List[Callable[[], None]] = []
        self.conn = ResilientConnection(
            host,
            port,
            policy=policy,
            name="p4rt-client",
            on_notification=self._handle_notification,
            error_type=RuntimeApiError,
        )
        self.conn.on_reconnect(self._on_transport_reconnect)

    def call(self, method: str, params, retryable: bool = False) -> object:
        return self.conn.call(method, params, retryable=retryable)

    def _handle_notification(self, message: dict) -> None:
        method = message.get("method")
        if method == "digest":
            callback = self._digest_callback
            if callback is not None:
                params = message["params"]
                name, values = params[0], params[1]
                # An optional third param is the update-id of the config
                # change whose entries produced this digest; rebind it
                # so the controller can link the feedback trace.
                uid = params[2] if len(params) > 2 else None
                if uid is not None:
                    with use_update_id(uid):
                        callback(name, tuple(values))
                else:
                    callback(name, tuple(values))
        elif method == "packet_in":
            callback = self._packet_in_callback
            if callback is not None:
                port, hex_data = message["params"]
                callback(port, bytes.fromhex(hex_data))

    def _on_transport_reconnect(self) -> None:
        # Re-establish session subscriptions first so no digest window
        # is left open while hooks replay state.
        if self._digest_callback is not None:
            self.call("subscribe_digests", [], retryable=True)
        if self._packet_in_callback is not None:
            self.call("subscribe_packet_ins", [], retryable=True)
        for hook in list(self._reconnect_hooks):
            hook()

    def on_reconnect(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after each reconnect (subscriptions already
        re-issued); use it to resynchronize device state."""
        self._reconnect_hooks.append(hook)

    def health(self) -> Dict[str, object]:
        return self.conn.health()

    # -- API -----------------------------------------------------------------

    def get_p4info(self) -> dict:
        return self.call("get_p4info", [], retryable=True)

    def echo(self, payload) -> object:
        return self.call("echo", payload, retryable=True)

    def write(
        self,
        updates: Sequence[TableWrite],
        fence: Optional[int] = None,
    ) -> int:
        wires = [u.to_wire() for u in updates]
        uid = current_update_id()
        if uid is not None or fence is not None:
            # Envelope form carries the update-id and fencing epoch to
            # the device side; the legacy bare list stays the wire
            # format otherwise.
            envelope = {"updates": wires}
            if uid is not None:
                envelope["update_id"] = uid
            if fence is not None:
                envelope["fence"] = fence
            result = self.call("write", [envelope])
        else:
            result = self.call("write", wires)
        return result["applied"]

    def apply_batch(
        self,
        updates: Sequence[TableWrite],
        mcast: Optional[Dict[int, Optional[List[int]]]] = None,
        update_ids: Optional[Sequence[str]] = None,
        fence: Optional[int] = None,
    ) -> int:
        """Ship a coalesced pipeline batch — table writes plus
        multicast config plus every merged update-id — in one round
        trip, instead of one ``write`` per engine transaction and one
        call per multicast group."""
        envelope = {
            "updates": [u.to_wire() for u in updates],
            "mcast": [
                [group, list(ports) if ports is not None else None]
                for group, ports in sorted((mcast or {}).items())
            ],
            "update_ids": list(update_ids or ()),
        }
        if fence is not None:
            envelope["fence"] = fence
        result = self.call("apply_batch", [envelope])
        return result["applied"]

    @property
    def connected(self) -> bool:
        """True while the transport is usable (no reconnect pending)."""
        from repro.net.resilient import CONNECTED

        return self.conn.state == CONNECTED

    def get_config_epoch(self) -> Optional[str]:
        result = self.call("get_config_epoch", [], retryable=True)
        return result["epoch"]

    def set_config_epoch(
        self, epoch: Optional[str], fence: Optional[int] = None
    ) -> None:
        if fence is not None:
            self.call("set_config_epoch", [epoch, fence])
        else:
            self.call("set_config_epoch", [epoch])

    def read_table(self, table: str) -> List[TableWrite]:
        result = self.call("read_table", [table], retryable=True)
        return [TableWrite.from_wire(e) for e in result["entries"]]

    def set_default_action(self, table: str, action: str, params: Sequence[int]) -> None:
        self.call("set_default_action", [table, action, list(params)])

    def set_multicast_group(self, group_id: int, ports: Sequence[int]) -> None:
        self.call("set_multicast_group", [group_id, list(ports)])

    def delete_multicast_group(self, group_id: int) -> None:
        self.call("delete_multicast_group", [group_id])

    def inject(self, port: int, data: bytes) -> List[Tuple[int, bytes]]:
        result = self.call("inject", [port, data.hex()])
        return [(p, bytes.fromhex(h)) for p, h in result["outputs"]]

    def subscribe_digests(
        self, callback: Callable[[str, Tuple[int, ...]], None]
    ) -> None:
        self._digest_callback = callback
        self.call("subscribe_digests", [])

    def subscribe_packet_ins(
        self, callback: Callable[[int, bytes], None]
    ) -> None:
        self._packet_in_callback = callback
        self.call("subscribe_packet_ins", [])

    def packet_out(self, port: int, data: bytes) -> List[Tuple[int, bytes]]:
        result = self.call("packet_out", [port, data.hex()])
        return [(p, bytes.fromhex(h)) for p, h in result["outputs"]]

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "P4RuntimeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
