"""Blocking client for the P4Runtime-style API."""

from __future__ import annotations

import socket
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError, RuntimeApiError
from repro.mgmt.jsonrpc import (
    NotificationDispatcher,
    classify,
    make_request,
    recv_message,
    send_message,
)
from repro.p4runtime.api import TableWrite

_DEFAULT_TIMEOUT = 30.0


class _PendingCall:
    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error = None


class P4RuntimeClient:
    """Talks to a :class:`~repro.p4runtime.server.P4RuntimeServer`."""

    def __init__(self, host: str, port: int, timeout: float = _DEFAULT_TIMEOUT):
        self.sock = socket.create_connection((host, port), timeout=10.0)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.settimeout(None)
        self.timeout = timeout
        self._send_lock = threading.Lock()
        self._pending: Dict[int, _PendingCall] = {}
        self._pending_lock = threading.Lock()
        self._next_id = 0
        self._digest_callback: Optional[
            Callable[[str, Tuple[int, ...]], None]
        ] = None
        self._packet_in_callback: Optional[
            Callable[[int, bytes], None]
        ] = None
        self._closed = False
        self._dispatcher = NotificationDispatcher("p4rt-client-dispatch")
        threading.Thread(
            target=self._read_loop, name="p4rt-client-reader", daemon=True
        ).start()

    def call(self, method: str, params) -> object:
        with self._pending_lock:
            self._next_id += 1
            request_id = self._next_id
            pending = _PendingCall()
            self._pending[request_id] = pending
        with self._send_lock:
            send_message(self.sock, make_request(method, params, request_id))
        if not pending.event.wait(self.timeout):
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise ProtocolError(f"timeout waiting for {method} response")
        if pending.error is not None:
            raise RuntimeApiError(str(pending.error))
        return pending.result

    def _read_loop(self) -> None:
        try:
            while not self._closed:
                message = recv_message(self.sock)
                if message is None:
                    break
                kind = classify(message)
                if kind == "response":
                    with self._pending_lock:
                        pending = self._pending.pop(message["id"], None)
                    if pending is not None:
                        pending.result = message.get("result")
                        pending.error = message.get("error")
                        pending.event.set()
                elif kind == "notification" and message["method"] == "digest":
                    callback = self._digest_callback
                    if callback is not None:
                        name, values = message["params"]
                        # Off-thread so the callback may call back into
                        # this client (the controller writes table
                        # entries in response to digests).
                        self._dispatcher.submit(callback, name, tuple(values))
                elif kind == "notification" and message["method"] == "packet_in":
                    callback = self._packet_in_callback
                    if callback is not None:
                        port, hex_data = message["params"]
                        self._dispatcher.submit(
                            callback, port, bytes.fromhex(hex_data)
                        )
        except (ProtocolError, OSError):
            pass
        finally:
            with self._pending_lock:
                pending = list(self._pending.values())
                self._pending.clear()
            for p in pending:
                p.error = "connection closed"
                p.event.set()

    # -- API -----------------------------------------------------------------

    def get_p4info(self) -> dict:
        return self.call("get_p4info", [])

    def write(self, updates: Sequence[TableWrite]) -> int:
        result = self.call("write", [u.to_wire() for u in updates])
        return result["applied"]

    def read_table(self, table: str) -> List[TableWrite]:
        result = self.call("read_table", [table])
        return [TableWrite.from_wire(e) for e in result["entries"]]

    def set_default_action(self, table: str, action: str, params: Sequence[int]) -> None:
        self.call("set_default_action", [table, action, list(params)])

    def set_multicast_group(self, group_id: int, ports: Sequence[int]) -> None:
        self.call("set_multicast_group", [group_id, list(ports)])

    def delete_multicast_group(self, group_id: int) -> None:
        self.call("delete_multicast_group", [group_id])

    def inject(self, port: int, data: bytes) -> List[Tuple[int, bytes]]:
        result = self.call("inject", [port, data.hex()])
        return [(p, bytes.fromhex(h)) for p, h in result["outputs"]]

    def subscribe_digests(
        self, callback: Callable[[str, Tuple[int, ...]], None]
    ) -> None:
        self._digest_callback = callback
        self.call("subscribe_digests", [])

    def subscribe_packet_ins(
        self, callback: Callable[[int, bytes], None]
    ) -> None:
        self._packet_in_callback = callback
        self.call("subscribe_packet_ins", [])

    def packet_out(self, port: int, data: bytes) -> List[Tuple[int, bytes]]:
        result = self.call("packet_out", [port, data.hex()])
        return [(p, bytes.fromhex(h)) for p, h in result["outputs"]]

    def close(self) -> None:
        self._closed = True
        self._dispatcher.close()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "P4RuntimeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
