"""P4Runtime-style entities and the device-side service.

The wire shapes (dicts, JSON-ready) mirror the parts of P4Runtime the
stack needs:

Table write update::

    {"type": "INSERT" | "MODIFY" | "DELETE",
     "table": "fwd",
     "match": [{"field": "meta.vlan", "exact": 10},
               {"field": "hdr.eth.dst", "ternary": [5, 255]},
               {"field": "ip.dst", "lpm": [167772160, 8]}],
     "action": {"name": "forward", "params": [2]},
     "priority": 0}

Writes are *batched and atomic*: a failed update rolls the whole batch
back (P4Runtime's error semantics), which the Nerpa controller relies
on to keep data-plane state transactional like the rest of the stack.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ReproError, RuntimeApiError
from repro.obs.trace import current_update_id
from repro.p4.simulator import Simulator
from repro.p4.tables import FieldMatch, TableEntry


class WriteError(RuntimeApiError):
    """A write batch failed; carries the index of the failing update."""

    def __init__(self, index: int, message: str):
        self.index = index
        super().__init__(f"update {index}: {message}")


class FencedWriteError(RuntimeApiError):
    """A write carried a fencing epoch older than the device's.

    Raised *before* anything is applied — the batch has no effect.  A
    semantic rejection, not a transport failure: a deposed controller
    must not trip its circuit breaker and resync (it would fail the
    same way); it must observe at drain() that it lost leadership.
    """

    def __init__(self, stale: int, current: int):
        self.stale = stale
        self.current = current
        super().__init__(
            f"write fenced: epoch {stale} deposed by epoch {current}"
        )


class TableWrite:
    """One update of a write batch."""

    __slots__ = ("kind", "table", "entry")

    def __init__(self, kind: str, table: str, entry: TableEntry):
        if kind not in ("INSERT", "MODIFY", "DELETE"):
            raise RuntimeApiError(f"bad write type {kind!r}")
        self.kind = kind
        self.table = table
        self.entry = entry

    @classmethod
    def insert(cls, table: str, entry: TableEntry) -> "TableWrite":
        return cls("INSERT", table, entry)

    @classmethod
    def delete(cls, table: str, entry: TableEntry) -> "TableWrite":
        return cls("DELETE", table, entry)

    @classmethod
    def modify(cls, table: str, entry: TableEntry) -> "TableWrite":
        return cls("MODIFY", table, entry)

    def to_wire(self) -> dict:
        return {
            "type": self.kind,
            "table": self.table,
            "match": [_match_to_wire(m) for m in self.entry.matches],
            "action": {
                "name": self.entry.action,
                "params": list(self.entry.action_params),
            },
            "priority": self.entry.priority,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "TableWrite":
        try:
            matches = [_match_from_wire(m) for m in data.get("match", [])]
            action = data.get("action", {})
            entry = TableEntry(
                matches,
                action.get("name", "NoAction"),
                action.get("params", []),
                data.get("priority", 0),
            )
            return cls(data["type"], data["table"], entry)
        except (KeyError, TypeError) as exc:
            raise RuntimeApiError(f"bad table write {data!r}: {exc}") from exc

    def __repr__(self):
        return f"TableWrite({self.kind} {self.table} {self.entry!r})"


def _match_to_wire(match: FieldMatch) -> dict:
    if match.kind == "exact":
        return {"exact": match.value}
    if match.kind == "lpm":
        return {"lpm": [match.value, match.arg]}
    return {"ternary": [match.value, match.arg]}


def _match_from_wire(data: dict) -> FieldMatch:
    if "exact" in data:
        return FieldMatch.exact(data["exact"])
    if "lpm" in data:
        value, prefix_len = data["lpm"]
        return FieldMatch.lpm(value, prefix_len)
    if "ternary" in data:
        value, mask = data["ternary"]
        return FieldMatch.ternary(value, mask)
    raise RuntimeApiError(f"bad match field {data!r}")


class DeviceService:
    """Applies P4Runtime-style operations to one simulator.

    This is the device-local half: the remote server delegates here,
    and in-process deployments (a Nerpa "local control plane") call it
    directly.
    """

    def __init__(self, simulator: Simulator, device_id: str = "device-0"):
        self.sim = simulator
        self.device_id = device_id

    # -- writes ------------------------------------------------------------

    def write(self, updates: Sequence[TableWrite]) -> int:
        """Apply a batch atomically; returns the number of updates.

        On failure the already-applied prefix is rolled back and a
        :class:`WriteError` is raised.
        """
        uid = current_update_id()
        if uid is not None:
            # Remember which config change last touched this device;
            # digests emitted by matching packets carry it back so the
            # feedback loop links to its originating trace.
            self.sim.config_epoch = uid
        if obs.enabled():
            return self._traced_write(updates, uid)
        return self._apply_batch(updates)

    def apply_batch(
        self,
        updates: Sequence[TableWrite],
        mcast: Optional[dict] = None,
    ) -> int:
        """One round trip for a coalesced pipeline batch: multicast
        group config (``group -> ports``, ``None`` deletes the group)
        plus an atomic table-write batch.

        Multicast config is applied first (so a flood entry never
        references a group that does not exist yet) and is idempotent;
        only the table writes carry rollback semantics.
        """
        if mcast:
            for group_id in sorted(mcast):
                ports = mcast[group_id]
                if ports:
                    self.sim.set_multicast_group(group_id, list(ports))
                else:
                    self.sim.delete_multicast_group(group_id)
        if not updates:
            return 0
        return self.write(updates)

    # -- write fencing ------------------------------------------------------

    def _fence_lock(self) -> threading.Lock:
        # The lock (like the fence itself) lives on the *simulator*:
        # each controller wraps a shared device in its own
        # DeviceService/server, and fencing only means anything if all
        # of them validate against one authoritative epoch.
        lock = getattr(self.sim, "fence_lock", None)
        if lock is None:
            lock = self.sim.fence_lock = threading.Lock()
        return lock

    def fencing_epoch(self) -> Optional[int]:
        """The highest fencing epoch any writer has presented (``None``
        until a fenced write arrives)."""
        return getattr(self.sim, "fencing_epoch", None)

    def check_fence(self, fence: Optional[int]) -> None:
        """Validate-and-advance the device's fencing epoch.

        A write stamped with an epoch *older* than the highest seen is
        from a deposed leader: reject it before it touches any state.
        Unfenced writes (``fence=None``) pass — single-controller
        deployments never mint an epoch.  Caller holds ``_fence_lock``
        (or is otherwise serialized) for check-then-apply atomicity.
        """
        if fence is None:
            return
        current = getattr(self.sim, "fencing_epoch", None)
        if current is not None and fence < current:
            if obs.enabled():
                obs.REGISTRY.counter(
                    "device_fenced_writes_total", device=self.device_id
                ).inc()
            raise FencedWriteError(fence, current)
        self.sim.fencing_epoch = fence

    def fenced_write(
        self, updates: Sequence[TableWrite], fence: Optional[int] = None
    ) -> int:
        if fence is None:
            return self.write(updates)
        with self._fence_lock():
            self.check_fence(fence)
            return self.write(updates)

    def fenced_apply_batch(
        self,
        updates: Sequence[TableWrite],
        mcast: Optional[dict] = None,
        fence: Optional[int] = None,
    ) -> int:
        if fence is None:
            return self.apply_batch(updates, mcast)
        with self._fence_lock():
            self.check_fence(fence)
            return self.apply_batch(updates, mcast)

    def fenced_set_config_epoch(
        self, epoch: Optional[str], fence: Optional[int] = None
    ) -> None:
        if fence is None:
            self.set_config_epoch(epoch)
            return
        with self._fence_lock():
            self.check_fence(fence)
            self.set_config_epoch(epoch)

    def _traced_write(self, updates: Sequence[TableWrite], uid) -> int:
        with obs.TRACER.span(
            "device.apply",
            update_id=uid,
            device=self.device_id,
            writes=len(updates),
        ):
            count = self._apply_batch(updates)
        obs.REGISTRY.counter(
            "device_writes_total", device=self.device_id
        ).inc(len(updates))
        return count

    def _apply_batch(self, updates: Sequence[TableWrite]) -> int:
        applied: List[Tuple[TableWrite, Optional[TableEntry]]] = []
        try:
            for i, update in enumerate(updates):
                try:
                    old = self._apply_one(update)
                except ReproError as exc:
                    raise WriteError(i, str(exc)) from exc
                applied.append((update, old))
        except WriteError:
            for update, old in reversed(applied):
                self._revert_one(update, old)
            raise
        return len(applied)

    def _apply_one(self, update: TableWrite) -> Optional[TableEntry]:
        table = self.sim.table(update.table)
        if update.kind == "INSERT":
            table.insert(update.entry)
            return None
        # ``TableState`` keys its entries by match key, so the
        # pre-image needed for rollback is an O(1) lookup — a linear
        # scan here turns a batch of modifies against a large table
        # into O(batch * table) and dominates failover resync time.
        old = table.get(update.entry.match_key())
        if update.kind == "MODIFY":
            table.modify(update.entry)
        else:
            table.delete(update.entry)
        return old

    def _revert_one(self, update: TableWrite, old: Optional[TableEntry]) -> None:
        table = self.sim.table(update.table)
        if update.kind == "INSERT":
            table.delete(update.entry)
        elif update.kind == "MODIFY" and old is not None:
            table.modify(old)
        elif update.kind == "DELETE" and old is not None:
            table.insert(old)

    # -- reads and config -------------------------------------------------------

    def get_config_epoch(self) -> Optional[str]:
        """The update-id of the last config change applied to this
        device (``None`` if never written).  A restarting controller
        compares this against its checkpointed epoch to decide whether a
        full resync is needed."""
        return getattr(self.sim, "config_epoch", None)

    def set_config_epoch(self, epoch: Optional[str]) -> None:
        """Stamp the device's config epoch explicitly (used after a
        full resync, which bypasses the per-batch update-id path)."""
        self.sim.config_epoch = epoch

    def read_table(self, table: str) -> List[TableEntry]:
        return self.sim.table(table).entries()

    def set_default_action(self, table: str, action: str, params: Sequence[int]) -> None:
        self.sim.table(table).set_default(action, params)

    def set_multicast_group(self, group_id: int, ports: Sequence[int]) -> None:
        self.sim.set_multicast_group(group_id, list(ports))

    def delete_multicast_group(self, group_id: int) -> None:
        self.sim.delete_multicast_group(group_id)

    def p4info(self) -> dict:
        return self.sim.pipeline.p4info.to_json()

    # -- digests and packet I/O ---------------------------------------------------------

    def drain_digests(self) -> List[Tuple[str, Tuple[int, ...]]]:
        return [(d.name, d.values) for d in self.sim.drain_digests()]

    def packet_out(self, port: int, data: bytes):
        """Controller-originated packet: inject as if received on ``port``
        (P4Runtime's PacketOut, simplified to ingress injection)."""
        return self.sim.inject(port, data)

    def drain_packet_ins(self) -> List[Tuple[int, bytes]]:
        return self.sim.drain_packet_ins()
