"""A fleet of lightweight simulated devices behind one listener.

Benchmarking a 1000-device apply plane needs 1000 *servers*; running a
full :class:`~repro.p4.simulator.Simulator` + thread-per-connection
:class:`~repro.p4runtime.server.P4RuntimeServer` per device would melt
the bench machine before the plane under test broke a sweat.
:class:`DeviceFarm` is the counterpart built the same way as the apply
plane itself: one TCP listener, a small pool of
:class:`~repro.net.aio.Reactor` loops (``n_reactors`` — real switches
are parallel hardware, so fleet-scale benches shouldn't serialize on a
single simulated farm loop), and N dict-table devices that speak
enough of the P4Runtime wire
protocol for the controller's hot path (``apply_batch``, ``write``,
``read_table``, config epochs, multicast) plus verification hooks:

* clients address a device with ``bind_device [index]`` (the
  :class:`~repro.p4runtime.aio_client.AioP4RuntimeClient`'s
  ``device_hint`` does this automatically, re-binding on reconnect);
* the optional ``"seq": [first, last]`` pair on an ``apply_batch``
  envelope — the coalesced batch's engine-sequence range — lets each
  device check per-device FIFO *at the receiver*: a batch whose range
  starts at or before the previous batch's end arrived out of order
  (supersedes legitimately skip ranges; they never rewind them), and
  is counted in ``fifo_violations``;
* :meth:`set_ack_delay` makes one device slow by *deferring its acks*
  with a reactor timer — the farm never blocks, so a slow device
  exercises the plane's isolation, not the farm's.

Table state is per-device ``{table: {match_key: wire_update}}`` with
the real service's batch semantics (atomic: a failing update rolls the
batch back; INSERT of a present key and MODIFY/DELETE of a missing key
are rejections).
"""

from __future__ import annotations

import json
import selectors
import socket
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError, ReproError
from repro.mgmt.jsonrpc import (
    classify,
    decode_frames,
    encode_frame,
    make_error,
    make_response,
)
from repro.net.aio import Reactor

_RECV_CHUNK = 1 << 18


def _match_key(update: dict) -> str:
    return json.dumps(update.get("match", []), sort_keys=True)


class FarmDevice:
    """One device's tables plus its verification counters."""

    __slots__ = (
        "index",
        "tables",
        "mcast",
        "epoch",
        "fence",
        "last_seq",
        "fifo_violations",
        "fenced_rejections",
        "batches_applied",
        "updates_applied",
        "ack_delay",
    )

    def __init__(self, index: int):
        self.index = index
        self.tables: Dict[str, Dict[str, dict]] = {}
        self.mcast: Dict[int, List[int]] = {}
        self.epoch: Optional[str] = None
        self.fence: Optional[int] = None
        self.last_seq: Optional[int] = None
        self.fifo_violations = 0
        self.fenced_rejections = 0
        self.batches_applied = 0
        self.updates_applied = 0
        #: Seconds each response to this device is deferred (reactor
        #: timer — simulates a slow device without blocking the farm).
        self.ack_delay = 0.0

    def check_fence(self, fence: Optional[int]) -> None:
        """Reject writes stamped with a deposed leader's fencing epoch
        (mirrors :meth:`repro.p4runtime.api.DeviceService.check_fence`;
        the farm's loop serializes access, so no lock)."""
        if fence is None:
            return
        if self.fence is not None and fence < self.fence:
            self.fenced_rejections += 1
            raise ProtocolError(
                f"write fenced: epoch {fence} deposed by epoch {self.fence}"
            )
        self.fence = fence

    # -- write semantics -----------------------------------------------------

    def apply_updates(self, updates: List[dict]) -> int:
        """Atomic batch: failure reverts the applied prefix."""
        undo = []
        try:
            for i, update in enumerate(updates):
                table = self.tables.setdefault(update["table"], {})
                key = _match_key(update)
                kind = update["type"]
                old = table.get(key)
                if kind == "INSERT":
                    if old is not None:
                        raise ProtocolError(
                            f"update {i}: duplicate entry in "
                            f"{update['table']}"
                        )
                    table[key] = update
                elif kind == "MODIFY":
                    if old is None:
                        raise ProtocolError(
                            f"update {i}: no entry to modify in "
                            f"{update['table']}"
                        )
                    table[key] = update
                elif kind == "DELETE":
                    if old is None:
                        raise ProtocolError(
                            f"update {i}: no entry to delete in "
                            f"{update['table']}"
                        )
                    del table[key]
                else:
                    raise ProtocolError(f"update {i}: bad type {kind!r}")
                undo.append((update["table"], key, old))
        except ProtocolError:
            for table_name, key, old in reversed(undo):
                table = self.tables.setdefault(table_name, {})
                if old is None:
                    table.pop(key, None)
                else:
                    table[key] = old
            raise
        self.updates_applied += len(updates)
        return len(updates)

    def note_seq(self, seq) -> None:
        if not seq:
            return
        first, last = int(seq[0]), int(seq[1])
        if self.last_seq is not None and first <= self.last_seq:
            self.fifo_violations += 1
        self.last_seq = max(self.last_seq or 0, last)

    def table_snapshot(self) -> Dict[str, Dict[str, dict]]:
        return {name: dict(entries) for name, entries in self.tables.items()}


class _FarmConnection:
    """One accepted socket: framed request/response on the loop thread."""

    def __init__(self, farm: "DeviceFarm", sock: socket.socket,
                 reactor: Reactor):
        self.farm = farm
        self.sock = sock
        #: The reactor this connection is pinned to (round-robin across
        #: the farm's reactors — see ``DeviceFarm`` on ``n_reactors``).
        self.reactor = reactor
        self.inbuf = b""
        self.outbuf = bytearray()
        self.device_index = 0
        self.closed = False

    # All methods below run on this connection's reactor loop thread.

    def on_io(self, mask: int) -> None:
        if self.closed:
            return
        if mask & selectors.EVENT_READ:
            self._read()
        if not self.closed and (mask & selectors.EVENT_WRITE):
            self._flush()

    def _read(self) -> None:
        try:
            data = self.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self.close()
            return
        if not data:
            self.close()
            return
        try:
            messages, self.inbuf = decode_frames(self.inbuf + data)
        except ProtocolError:
            self.close()
            return
        for message in messages:
            try:
                if classify(message) != "request":
                    continue
            except ProtocolError:
                continue
            self._serve(message)

    def _serve(self, message: dict) -> None:
        request_id = message["id"]
        try:
            result = self.farm._handle(self, message["method"],
                                       message.get("params", []))
            reply = make_response(result, request_id)
        except ReproError as exc:
            reply = make_error({"error": str(exc)}, request_id)
        except Exception as exc:  # noqa: BLE001 - farm must survive
            reply = make_error({"error": f"internal: {exc}"}, request_id)
        delay = self.farm.devices[self.device_index].ack_delay
        if delay > 0:
            self.reactor.call_later(delay, lambda: self._send(reply))
        else:
            self._send(reply)

    def _send(self, message: dict) -> None:
        if self.closed:
            return
        was_empty = not self.outbuf
        self.outbuf.extend(encode_frame(message))
        if was_empty:
            self._update_interest()
        self._flush()

    def _flush(self) -> None:
        if not self.outbuf or self.closed:
            return
        try:
            sent = self.sock.send(memoryview(self.outbuf))
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self.close()
            return
        del self.outbuf[:sent]
        if not self.outbuf:
            self._update_interest()

    def _update_interest(self) -> None:
        events = selectors.EVENT_READ
        if self.outbuf:
            events |= selectors.EVENT_WRITE
        self.reactor.modify(self.sock, events, self.on_io)

    def close(self) -> None:
        if not self.reactor.in_loop():
            # Shutdown path: hop to the owning loop (best-effort once
            # the reactor is gone — the socket still gets closed).
            if self.reactor.submit(self.close):
                return
        if self.closed:
            return
        self.closed = True
        self.reactor.unregister(self.sock)
        try:
            self.sock.close()
        except OSError:
            pass
        self.farm._connections.discard(self)


class DeviceFarm:
    """N lightweight P4Runtime-ish devices behind one listener.

    ``n_reactors`` spreads accepted connections round-robin over that
    many loops.  Real switches are parallel hardware; a fleet-scale
    bench that funnels 1000 devices through *one* farm loop would
    measure the farm's serialization, not the apply plane's.  Each
    connection is pinned to one reactor for its lifetime, and in the
    one-connection-per-device usage every :class:`FarmDevice` is only
    ever touched from its connection's loop thread.
    """

    def __init__(
        self,
        n_devices: int,
        host: str = "127.0.0.1",
        port: int = 0,
        reactor: Optional[Reactor] = None,
        n_reactors: int = 1,
    ):
        self.devices = [FarmDevice(i) for i in range(n_devices)]
        self.host = host
        self.port = port
        self._owns_reactors = reactor is None
        if reactor is not None:
            self.reactors = [reactor]
        else:
            self.reactors = [
                Reactor(f"farm-{i}") for i in range(max(1, n_reactors))
            ]
        #: The accept loop (and sole loop when ``n_reactors == 1``).
        self.reactor = self.reactors[0]
        self._listener: Optional[socket.socket] = None
        self._connections: set = set()
        self.connections_accepted = 0

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("farm not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "DeviceFarm":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(1024)
        listener.setblocking(False)
        self._listener = listener
        for reactor in self.reactors:
            reactor.start()
        self.reactor.submit(
            self.reactor.register, listener, selectors.EVENT_READ,
            self._accept,
        )
        return self

    def _accept(self, mask: int) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            target = self.reactors[
                self.connections_accepted % len(self.reactors)
            ]
            conn = _FarmConnection(self, sock, target)
            self._connections.add(conn)
            self.connections_accepted += 1
            if target is self.reactor:
                target.register(sock, selectors.EVENT_READ, conn.on_io)
            else:
                target.submit(
                    target.register, sock, selectors.EVENT_READ, conn.on_io
                )

    def stop(self) -> None:
        listener = self._listener
        def teardown():
            if listener is not None:
                self.reactor.unregister(listener)
            for conn in list(self._connections):
                conn.close()  # hops to each connection's own loop
        if not self.reactor.submit(teardown):
            pass  # reactor already stopped; sockets close below
        if self._owns_reactors:
            for reactor in self.reactors:
                reactor.stop()
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def __enter__(self) -> "DeviceFarm":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- verification --------------------------------------------------------

    def set_ack_delay(self, index: int, seconds: float) -> None:
        self.devices[index].ack_delay = max(0.0, seconds)

    def total_fifo_violations(self) -> int:
        return sum(d.fifo_violations for d in self.devices)

    def total_batches(self) -> int:
        return sum(d.batches_applied for d in self.devices)

    # -- protocol ------------------------------------------------------------

    def _handle(self, conn: _FarmConnection, method: str, params):
        if method == "bind_device":
            (index,) = params
            if not 0 <= int(index) < len(self.devices):
                raise ProtocolError(f"no device {index}")
            conn.device_index = int(index)
            return {}
        device = self.devices[conn.device_index]
        if method == "echo":
            return params
        if method == "apply_batch":
            (envelope,) = params
            device.check_fence(envelope.get("fence"))
            for group, ports in envelope.get("mcast", []):
                if ports:
                    device.mcast[int(group)] = list(ports)
                else:
                    device.mcast.pop(int(group), None)
            updates = envelope.get("updates", [])
            applied = device.apply_updates(updates) if updates else 0
            update_ids = envelope.get("update_ids") or []
            if updates and update_ids:
                device.epoch = update_ids[-1]
            device.note_seq(envelope.get("seq"))
            device.batches_applied += 1
            return {"applied": applied}
        if method == "write":
            if (
                len(params) == 1
                and isinstance(params[0], dict)
                and "updates" in params[0]
            ):
                device.check_fence(params[0].get("fence"))
                updates = params[0]["updates"]
                uid = params[0].get("update_id")
                if uid is not None:
                    device.epoch = uid
            else:
                updates = params
            return {"applied": device.apply_updates(list(updates))}
        if method == "read_table":
            (table,) = params
            return {
                "entries": list(device.tables.get(table, {}).values())
            }
        if method == "get_config_epoch":
            return {"epoch": device.epoch}
        if method == "set_config_epoch":
            epoch = params[0]
            device.check_fence(params[1] if len(params) > 1 else None)
            device.epoch = epoch
            return {}
        if method == "set_multicast_group":
            group_id, ports = params
            device.mcast[int(group_id)] = list(ports)
            return {}
        if method == "delete_multicast_group":
            (group_id,) = params
            device.mcast.pop(int(group_id), None)
            return {}
        if method == "subscribe_digests":
            return {}
        raise ProtocolError(f"unknown method {method!r}")
