"""Non-blocking client for the P4Runtime-style API.

The async sibling of :class:`~repro.p4runtime.client.P4RuntimeClient`:
the same protocol over an :class:`~repro.net.aio.AioConnection`, so a
thousand of these cost a thousand selector registrations on one shared
:class:`~repro.net.aio.Reactor` — not a thousand reader threads.

Two call surfaces:

* the full blocking API of the classic client (``write``,
  ``read_table``, config epochs, multicast, digest subscriptions) for
  code that runs off the loop thread — resync tasks, tests;
* :meth:`apply_batch_async`, the apply plane's hot path: issues one
  coalesced batch and hands the ack to a callback on the loop thread.
  The optional ``seq`` pair ``(first, last)`` of the coalesced batch
  range rides the envelope — existing servers ignore unknown keys, and
  the :class:`~repro.p4runtime.farm.DeviceFarm` uses it to verify
  per-device FIFO at fleet scale.

Never issue a blocking method from a reactor callback — it would park
the loop waiting for a response only the loop can read.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeApiError
from repro.net.aio import AioConnection, Reactor
from repro.net.retry import RetryPolicy
from repro.obs.trace import current_update_id, use_update_id
from repro.p4runtime.api import TableWrite

_DEFAULT_TIMEOUT = 30.0


class AioP4RuntimeClient:
    """Talks to a P4Runtime-style server through a shared reactor."""

    def __init__(
        self,
        host: str,
        port: int,
        reactor: Reactor,
        timeout: float = _DEFAULT_TIMEOUT,
        policy: Optional[RetryPolicy] = None,
        device_hint: Optional[int] = None,
    ):
        if policy is None:
            policy = RetryPolicy(call_timeout=timeout)
        self.timeout = policy.call_timeout
        self.reactor = reactor
        #: When talking to a :class:`~repro.p4runtime.farm.DeviceFarm`
        #: (one listener serving many devices), the index of the device
        #: this client drives; bound on every (re)connect.
        self.device_hint = device_hint
        self._digest_callback: Optional[
            Callable[[str, Tuple[int, ...]], None]
        ] = None
        self._reconnect_hooks: List[Callable[[], None]] = []
        self.conn = AioConnection(
            host,
            port,
            reactor,
            policy=policy,
            name="p4rt-aio",
            on_notification=self._handle_notification,
            on_connect=self._on_transport_connect,
            error_type=RuntimeApiError,
        )
        self.conn.on_reconnect(self._on_transport_reconnect)

    # -- plumbing ------------------------------------------------------------

    def call(self, method: str, params, retryable: bool = False) -> object:
        return self.conn.call(method, params, retryable=retryable)

    def _handle_notification(self, message: dict) -> None:
        if message.get("method") != "digest":
            return
        callback = self._digest_callback
        if callback is None:
            return
        params = message["params"]
        name, values = params[0], params[1]
        uid = params[2] if len(params) > 2 else None
        if uid is not None:
            with use_update_id(uid):
                callback(name, tuple(values))
        else:
            callback(name, tuple(values))

    def _on_transport_connect(self, conn: AioConnection) -> None:
        # Loop thread, on every successful connect: session setup must
        # be the first frames on the fresh connection, ahead of any
        # apply traffic already queued — otherwise a batch could reach
        # the farm before the device binding and land on device 0.
        # ``conn`` comes from the hook (not ``self.conn``): the first
        # connect can win the race with the constructor's assignment.
        if self.device_hint is not None:
            conn.call_now(
                "bind_device",
                [self.device_hint],
                lambda _r, _e: None,
                timeout=self.timeout,
            )
        if self._digest_callback is not None:
            conn.call_now(
                "subscribe_digests",
                [],
                lambda _r, _e: None,
                timeout=self.timeout,
            )

    def _on_transport_reconnect(self) -> None:
        # Runs on the reactor's hook pool — blocking calls are fine.
        for hook in list(self._reconnect_hooks):
            hook()

    def on_reconnect(self, hook: Callable[[], None]) -> None:
        self._reconnect_hooks.append(hook)

    def health(self) -> Dict[str, object]:
        return self.conn.health()

    @property
    def connected(self) -> bool:
        return self.conn.connected

    @property
    def writable(self) -> bool:
        """False while the connection's send buffer is past its high
        watermark — callers should park on :meth:`on_drain`."""
        return self.conn.writable

    @property
    def send_buffer_bytes(self) -> int:
        return self.conn.send_buffer_bytes

    def on_drain(self, callback: Callable[[], None]) -> None:
        self.conn.on_drain(callback)

    # -- the async hot path --------------------------------------------------

    def apply_batch_async(
        self,
        updates: Sequence[TableWrite],
        mcast: Optional[Dict[int, Optional[List[int]]]] = None,
        update_ids: Optional[Sequence[str]] = None,
        callback: Optional[Callable] = None,
        seq: Optional[Tuple[int, int]] = None,
        timeout: Optional[float] = None,
        fence: Optional[int] = None,
    ) -> None:
        """Issue one coalesced pipeline batch without blocking.

        ``callback(applied, error)`` fires on the loop thread with the
        applied-update count or the failure (transport loss, per-call
        timeout, or a semantic rejection as ``error_type``).
        """
        envelope = {
            "updates": [u.to_wire() for u in updates],
            "mcast": [
                [group, list(ports) if ports is not None else None]
                for group, ports in sorted((mcast or {}).items())
            ],
            "update_ids": list(update_ids or ()),
        }
        if seq is not None:
            envelope["seq"] = list(seq)
        if fence is not None:
            envelope["fence"] = fence

        def on_response(result, error):
            if callback is None:
                return
            if error is not None:
                callback(None, error)
            else:
                callback((result or {}).get("applied", 0), None)

        self.conn.call_async(
            "apply_batch",
            [envelope],
            on_response,
            timeout=timeout if timeout is not None else self.timeout,
        )

    # -- blocking API (off-loop threads only) --------------------------------

    def echo(self, payload) -> object:
        return self.call("echo", payload, retryable=True)

    def write(
        self,
        updates: Sequence[TableWrite],
        fence: Optional[int] = None,
    ) -> int:
        wires = [u.to_wire() for u in updates]
        uid = current_update_id()
        if uid is not None or fence is not None:
            envelope = {"updates": wires}
            if uid is not None:
                envelope["update_id"] = uid
            if fence is not None:
                envelope["fence"] = fence
            result = self.call("write", [envelope])
        else:
            result = self.call("write", wires)
        return result["applied"]

    def apply_batch(
        self,
        updates: Sequence[TableWrite],
        mcast: Optional[Dict[int, Optional[List[int]]]] = None,
        update_ids: Optional[Sequence[str]] = None,
        fence: Optional[int] = None,
    ) -> int:
        envelope = {
            "updates": [u.to_wire() for u in updates],
            "mcast": [
                [group, list(ports) if ports is not None else None]
                for group, ports in sorted((mcast or {}).items())
            ],
            "update_ids": list(update_ids or ()),
        }
        if fence is not None:
            envelope["fence"] = fence
        result = self.call("apply_batch", [envelope])
        return result["applied"]

    def get_config_epoch(self) -> Optional[str]:
        result = self.call("get_config_epoch", [], retryable=True)
        return result["epoch"]

    def set_config_epoch(
        self, epoch: Optional[str], fence: Optional[int] = None
    ) -> None:
        if fence is not None:
            self.call("set_config_epoch", [epoch, fence])
        else:
            self.call("set_config_epoch", [epoch])

    def read_table(self, table: str) -> List[TableWrite]:
        result = self.call("read_table", [table], retryable=True)
        return [TableWrite.from_wire(e) for e in result["entries"]]

    def set_multicast_group(self, group_id: int, ports: Sequence[int]) -> None:
        self.call("set_multicast_group", [group_id, list(ports)])

    def delete_multicast_group(self, group_id: int) -> None:
        self.call("delete_multicast_group", [group_id])

    def subscribe_digests(
        self, callback: Callable[[str, Tuple[int, ...]], None]
    ) -> None:
        self._digest_callback = callback
        self.call("subscribe_digests", [])

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "AioP4RuntimeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
