"""TCP server exposing a simulated device through the P4Runtime-style API.

Methods:

* ``echo [...]`` — returns its params (keepalive/heartbeat);
* ``get_p4info []``
* ``write [update, ...]`` — atomic batch of table writes;
* ``apply_batch [{"updates", "mcast", "update_ids"}]`` — one
  coalesced pipeline batch: multicast config plus an atomic write
  batch, carrying every merged transaction's update-id;
* ``read_table [table]``
* ``set_default_action [table, action, params]``
* ``set_multicast_group [group_id, ports]`` / ``delete_multicast_group``
* ``inject [port, hex_bytes]`` — test/bench hook: run a packet, return
  ``[[port, hex], ...]`` outputs;
* ``subscribe_digests []`` — digest notifications
  (``{"method": "digest", "params": [name, values]}``) flow to this
  connection as packets produce them;
* ``subscribe_packet_ins []`` / ``packet_out [port, hex]`` — the CPU
  punt path: packets the pipeline sends to the CPU port arrive as
  ``{"method": "packet_in", "params": [ingress_port, hex]}``.
"""

from __future__ import annotations

import socket
import threading
from typing import List, Optional, Tuple

from repro.errors import ProtocolError, ReproError
from repro.mgmt.jsonrpc import (
    classify,
    make_error,
    make_notification,
    make_response,
    recv_message,
    send_message,
)
from repro.obs.trace import use_update_id
from repro.p4.simulator import DigestMessage, Simulator
from repro.p4runtime.api import DeviceService, TableWrite


class _Connection:
    def __init__(self, server: "P4RuntimeServer", sock: socket.socket):
        self.server = server
        self.sock = sock
        self.send_lock = threading.Lock()
        self.wants_digests = False
        self.wants_packet_ins = False
        self.alive = True

    def send(self, message: dict) -> None:
        with self.send_lock:
            try:
                send_message(self.sock, message)
            except OSError:
                self.alive = False

    def close(self) -> None:
        self.alive = False
        # shutdown() both wakes this connection's reader thread out of
        # recv() and sends the peer a FIN; close() alone does neither
        # while the reader holds the fd in a blocked syscall.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def serve(self) -> None:
        try:
            while self.alive:
                message = recv_message(self.sock)
                if message is None:
                    break
                if classify(message) != "request":
                    continue
                method = message["method"]
                params = message.get("params", [])
                request_id = message["id"]
                try:
                    result = self._handle(method, params)
                    self.send(make_response(result, request_id))
                except ReproError as exc:
                    self.send(make_error({"error": str(exc)}, request_id))
                except Exception as exc:  # noqa: BLE001
                    self.send(
                        make_error({"error": f"internal: {exc}"}, request_id)
                    )
        except (ProtocolError, OSError):
            pass
        finally:
            self.close()
            self.server._forget(self)

    def _handle(self, method: str, params):
        service = self.server.service
        if method == "echo":
            return params
        if method == "get_p4info":
            return service.p4info()
        if method == "write":
            # Envelope form ({"updates": [...], "update_id": ...})
            # carries the client's update-id; bare lists are the legacy
            # wire format.
            if (
                len(params) == 1
                and isinstance(params[0], dict)
                and "updates" in params[0]
            ):
                updates = [
                    TableWrite.from_wire(u) for u in params[0]["updates"]
                ]
                uid = params[0].get("update_id")
                fence = params[0].get("fence")
                if uid is not None:
                    with use_update_id(uid):
                        return {
                            "applied": service.fenced_write(updates, fence)
                        }
                return {"applied": service.fenced_write(updates, fence)}
            updates = [TableWrite.from_wire(u) for u in params]
            return {"applied": service.write(updates)}
        if method == "apply_batch":
            # One coalesced pipeline batch: multicast config + atomic
            # table writes + the update-ids of every merged
            # transaction (the newest becomes the config epoch).
            (envelope,) = params
            updates = [TableWrite.from_wire(u) for u in envelope["updates"]]
            mcast = {
                int(group): ports
                for group, ports in envelope.get("mcast", [])
            }
            update_ids = envelope.get("update_ids") or []
            fence = envelope.get("fence")
            uid = update_ids[-1] if update_ids else None
            if uid is not None:
                with use_update_id(uid):
                    return {
                        "applied": service.fenced_apply_batch(
                            updates, mcast, fence
                        )
                    }
            return {"applied": service.fenced_apply_batch(updates, mcast, fence)}
        if method == "get_config_epoch":
            return {"epoch": service.get_config_epoch()}
        if method == "set_config_epoch":
            # A second param (fenced form) carries the writer's fencing
            # epoch; a deposed leader's resync must not stamp devices.
            epoch = params[0]
            fence = params[1] if len(params) > 1 else None
            service.fenced_set_config_epoch(epoch, fence)
            return {}
        if method == "read_table":
            (table,) = params
            return {
                "entries": [
                    TableWrite("INSERT", table, e).to_wire()
                    for e in service.read_table(table)
                ]
            }
        if method == "set_default_action":
            table, action, action_params = params
            service.set_default_action(table, action, action_params)
            return {}
        if method == "set_multicast_group":
            group_id, ports = params
            service.set_multicast_group(group_id, ports)
            return {}
        if method == "delete_multicast_group":
            (group_id,) = params
            service.delete_multicast_group(group_id)
            return {}
        if method == "inject":
            port, hex_data = params
            outputs = self.server.sim.inject(port, bytes.fromhex(hex_data))
            self.server.flush_digests()
            return {"outputs": [[p, data.hex()] for p, data in outputs]}
        if method == "subscribe_digests":
            self.wants_digests = True
            return {}
        if method == "subscribe_packet_ins":
            self.wants_packet_ins = True
            return {}
        if method == "packet_out":
            port, hex_data = params
            outputs = service.packet_out(port, bytes.fromhex(hex_data))
            self.server.flush_digests()
            return {"outputs": [[p, data.hex()] for p, data in outputs]}
        raise ProtocolError(f"unknown method {method!r}")


class P4RuntimeServer:
    """Serves one simulator over TCP."""

    def __init__(self, sim: Simulator, host: str = "127.0.0.1", port: int = 0):
        self.sim = sim
        self.service = DeviceService(sim)
        self.host = host
        self.port = port
        self._listener: Optional[socket.socket] = None
        self._connections: List[_Connection] = []
        self._conn_lock = threading.Lock()
        self._running = False
        # Route digests emitted by direct (in-process) inject calls too.
        self._prev_callback = sim.digest_callback
        sim.digest_callback = self._on_digest
        self._prev_packet_in = sim.packet_in_callback
        sim.packet_in_callback = self._on_packet_in

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "P4RuntimeServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(32)
        self._listener = listener
        self._running = True
        threading.Thread(
            target=self._accept_loop, name="p4rt-server", daemon=True
        ).start()
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                break
            if not self._running:  # raced with stop()
                sock.close()
                break
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Accepted sockets must carry SO_REUSEADDR themselves: their
            # lingering close states (FIN_WAIT, TIME_WAIT) would
            # otherwise block an immediate restart of this server on
            # the same port.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            conn = _Connection(self, sock)
            with self._conn_lock:
                self._connections.append(conn)
            threading.Thread(target=conn.serve, daemon=True).start()

    def _forget(self, conn: _Connection) -> None:
        with self._conn_lock:
            if conn in self._connections:
                self._connections.remove(conn)

    def _on_digest(self, digest: DigestMessage) -> None:
        if self._prev_callback is not None:
            self._prev_callback(digest)
        self._broadcast_digest(digest)

    def _broadcast_digest(self, digest: DigestMessage) -> None:
        with self._conn_lock:
            conns = list(self._connections)
        params = [digest.name, list(digest.values)]
        uid = getattr(digest, "update_id", None)
        if uid is not None:
            params.append(uid)
        for conn in conns:
            if conn.wants_digests:
                conn.send(make_notification("digest", params))

    def _on_packet_in(self, port: int, data: bytes) -> None:
        if self._prev_packet_in is not None:
            self._prev_packet_in(port, data)
        with self._conn_lock:
            conns = list(self._connections)
        for conn in conns:
            if conn.wants_packet_ins:
                conn.send(
                    make_notification("packet_in", [port, data.hex()])
                )

    def flush_digests(self) -> None:
        """Deliver any digests queued in the simulator."""
        for digest in self.sim.drain_digests():
            self._broadcast_digest(digest)

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            # shutdown() wakes a thread blocked in accept(); close()
            # alone leaves the kernel LISTEN socket alive (held by the
            # in-flight accept) and the port unbindable.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._connections)
        for conn in conns:
            conn.close()

    def __enter__(self) -> "P4RuntimeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
