"""A P4Runtime-style control API for the behavioral simulator.

P4Runtime is how the paper's control plane programs its data planes:
typed writes of table entries, multicast group configuration, and a
stream of digests flowing back up.  This package reproduces that
contract over the same framed-JSON transport the management plane uses:

* :mod:`repro.p4runtime.api` — message/entity types and the
  :class:`~repro.p4runtime.api.DeviceService` that applies them to a
  :class:`~repro.p4.simulator.Simulator` (usable in-process, which is
  how a Nerpa *local control plane* embeds into a device);
* :mod:`repro.p4runtime.server` / :mod:`repro.p4runtime.client` — the
  remote transport, digest subscriptions included;
* :mod:`repro.p4runtime.aio_client` — the non-blocking client used by
  the controller's event-loop apply plane (thousands of devices on one
  shared :class:`~repro.net.aio.Reactor`);
* :mod:`repro.p4runtime.farm` — a reactor-driven fleet of lightweight
  devices behind one listener, for fleet-scale tests and benchmarks.
"""

from repro.p4runtime.aio_client import AioP4RuntimeClient
from repro.p4runtime.api import DeviceService, TableWrite, WriteError
from repro.p4runtime.client import P4RuntimeClient
from repro.p4runtime.farm import DeviceFarm
from repro.p4runtime.server import P4RuntimeServer

__all__ = [
    "AioP4RuntimeClient",
    "DeviceFarm",
    "DeviceService",
    "P4RuntimeClient",
    "P4RuntimeServer",
    "TableWrite",
    "WriteError",
]
