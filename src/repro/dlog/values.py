"""Runtime values for the control-plane language.

Every value that can live in a relation must be **immutable and
hashable**, because relations are weighted sets keyed by the value.  We
therefore map language types onto Python as follows:

===================  =====================================
language type        Python representation
===================  =====================================
``bool``             :class:`bool`
``bit<N>``           :class:`int` (non-negative, < 2**N)
``signed<N>``        :class:`int` (two's-complement range)
``bigint``           :class:`int`
``float``            :class:`float`
``string``           :class:`str`
tuple                :class:`tuple`
struct / union       :class:`StructValue`
``Vec<T>``           :class:`tuple`
``Map<K,V>``         :class:`MapValue`
===================  =====================================

Plain Python ints/strings/tuples are used directly where possible so
that interop with the rest of the stack (database rows, P4 table
entries) needs no boxing.

Interning invariants
--------------------

:class:`StructValue` and :class:`MapValue` are **hash-consed**: the
constructor returns the canonical instance for its contents from a
per-process weak intern table, so within one process

* *identity implies equality* — always true for immutable values — and
* *equality implies identity*: two live equal instances are the same
  object, which lets ``__eq__`` answer most comparisons with a single
  pointer check and lets dict probes in the dataflow hot paths skip
  field-by-field comparison entirely.

The table holds the values weakly: an interned value is dropped as
soon as the last relation row referencing it dies, so interning never
pins memory.  Pickling round-trips through the constructor
(:meth:`~StructValue.__reduce__`), so values crossing a shard-worker
pipe re-intern on arrival.  Both depend on the instances being deeply
immutable — never bypass the ``__setattr__`` guard on an interned
value, and never pass a field/value that can mutate after
construction.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Tuple

_struct_intern: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()
_map_intern: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()


class StructValue:
    """An instance of a named struct or union constructor.

    ``constructor`` is the constructor name (for a plain struct it
    equals the type name); ``fields`` is a tuple of field values in
    declaration order.  Instances are immutable, hashable, and
    interned (see the module docstring's interning invariants).
    """

    __slots__ = ("constructor", "fields", "_hash", "__weakref__")

    def __new__(cls, constructor: str, fields: Iterable[object] = ()):
        fields = tuple(fields)
        key = (constructor, fields)
        if cls is StructValue:
            cached = _struct_intern.get(key)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "constructor", constructor)
        object.__setattr__(self, "fields", fields)
        object.__setattr__(self, "_hash", hash(key))
        if cls is StructValue:
            _struct_intern[key] = self
        return self

    def __setattr__(self, name, value):
        raise AttributeError("StructValue is immutable")

    def __reduce__(self):
        # Default unpickling assigns slots one by one, which the
        # immutability guard rejects; rebuild through the constructor
        # (which also re-interns the value in the receiving process).
        return (StructValue, (self.constructor, self.fields))

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, StructValue)
            and self._hash == other._hash
            and self.constructor == other.constructor
            and self.fields == other.fields
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        inner = ", ".join(repr(f) for f in self.fields)
        return f"{self.constructor}{{{inner}}}"


class MapValue:
    """An immutable, hashable map.

    Stored as a tuple of ``(key, value)`` pairs sorted by the repr-stable
    ordering of keys, so two maps with equal contents compare and hash
    equal regardless of insertion order.  Instances are interned on the
    canonical sorted pairs (see the module docstring's interning
    invariants), so equal maps are the same object within a process.
    """

    __slots__ = ("pairs", "_index", "_hash", "__weakref__")

    def __new__(cls, pairs: Iterable[Tuple[object, object]] = ()):
        index = dict(pairs)
        ordered = tuple(sorted(index.items(), key=_sort_key))
        if cls is MapValue:
            cached = _map_intern.get(ordered)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "pairs", ordered)
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_hash", hash(ordered))
        if cls is MapValue:
            _map_intern[ordered] = self
        return self

    def __setattr__(self, name, value):
        raise AttributeError("MapValue is immutable")

    def __reduce__(self):
        return (MapValue, (self.pairs,))

    def get(self, key, default=None):
        return self._index.get(key, default)

    def __contains__(self, key):
        return key in self._index

    def __getitem__(self, key):
        return self._index[key]

    def __iter__(self):
        return iter(self.pairs)

    def __len__(self):
        return len(self.pairs)

    def insert(self, key, value) -> "MapValue":
        """Return a new map with ``key`` set to ``value``."""
        items = dict(self._index)
        items[key] = value
        return MapValue(items.items())

    def remove(self, key) -> "MapValue":
        """Return a new map without ``key`` (no-op if absent)."""
        items = dict(self._index)
        items.pop(key, None)
        return MapValue(items.items())

    def __eq__(self, other):
        if self is other:
            return True
        return isinstance(other, MapValue) and self.pairs == other.pairs

    def __hash__(self):
        return self._hash

    def __repr__(self):
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.pairs)
        return f"map{{{inner}}}"


def _sort_key(item):
    key, _ = item
    # Sort by type name first so heterogeneous keys (which the type
    # checker forbids, but defensive code may produce) still order.
    return (type(key).__name__, repr(key))


# Union constructors for Option<T>; declared here so the runtime can
# build them without going through the interpreter.
NONE = StructValue("None", ())


def some(value) -> StructValue:
    """Build ``Some{value}`` of the built-in ``Option`` union."""
    return StructValue("Some", (value,))


def is_none(value) -> bool:
    return isinstance(value, StructValue) and value.constructor == "None"


def is_some(value) -> bool:
    return isinstance(value, StructValue) and value.constructor == "Some"


def wrap_bit(value: int, width: int) -> int:
    """Truncate ``value`` into the unsigned range of ``bit<width>``."""
    return value & ((1 << width) - 1)


def wrap_signed(value: int, width: int) -> int:
    """Truncate ``value`` into the two's-complement range of ``signed<width>``."""
    mask = (1 << width) - 1
    value &= mask
    sign = 1 << (width - 1)
    return value - (1 << width) if value & sign else value


def format_value(value) -> str:
    """Render a runtime value the way the language's `to_string` does."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return value
    if isinstance(value, tuple):
        return "(" + ", ".join(format_value(v) for v in value) + ")"
    if isinstance(value, StructValue):
        if not value.fields:
            return value.constructor
        inner = ", ".join(format_value(f) for f in value.fields)
        return f"{value.constructor}{{{inner}}}"
    if isinstance(value, MapValue):
        inner = ", ".join(
            f"{format_value(k)}: {format_value(v)}" for k, v in value.pairs
        )
        return f"[{inner}]"
    return repr(value) if isinstance(value, float) else str(value)
