"""Runtime values for the control-plane language.

Every value that can live in a relation must be **immutable and
hashable**, because relations are weighted sets keyed by the value.  We
therefore map language types onto Python as follows:

===================  =====================================
language type        Python representation
===================  =====================================
``bool``             :class:`bool`
``bit<N>``           :class:`int` (non-negative, < 2**N)
``signed<N>``        :class:`int` (two's-complement range)
``bigint``           :class:`int`
``float``            :class:`float`
``string``           :class:`str`
tuple                :class:`tuple`
struct / union       :class:`StructValue`
``Vec<T>``           :class:`tuple`
``Map<K,V>``         :class:`MapValue`
===================  =====================================

Plain Python ints/strings/tuples are used directly where possible so
that interop with the rest of the stack (database rows, P4 table
entries) needs no boxing.
"""

from __future__ import annotations

from typing import Iterable, Tuple


class StructValue:
    """An instance of a named struct or union constructor.

    ``constructor`` is the constructor name (for a plain struct it
    equals the type name); ``fields`` is a tuple of field values in
    declaration order.  Instances are immutable and hashable.
    """

    __slots__ = ("constructor", "fields", "_hash")

    def __init__(self, constructor: str, fields: Iterable[object]):
        object.__setattr__(self, "constructor", constructor)
        object.__setattr__(self, "fields", tuple(fields))
        object.__setattr__(self, "_hash", hash((constructor, self.fields)))

    def __setattr__(self, name, value):
        raise AttributeError("StructValue is immutable")

    def __reduce__(self):
        # Default unpickling assigns slots one by one, which the
        # immutability guard rejects; rebuild through the constructor.
        return (StructValue, (self.constructor, self.fields))

    def __eq__(self, other):
        return (
            isinstance(other, StructValue)
            and self.constructor == other.constructor
            and self.fields == other.fields
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        inner = ", ".join(repr(f) for f in self.fields)
        return f"{self.constructor}{{{inner}}}"


class MapValue:
    """An immutable, hashable map.

    Stored as a tuple of ``(key, value)`` pairs sorted by the repr-stable
    ordering of keys, so two maps with equal contents compare and hash
    equal regardless of insertion order.
    """

    __slots__ = ("pairs", "_index", "_hash")

    def __init__(self, pairs: Iterable[Tuple[object, object]] = ()):
        index = dict(pairs)
        ordered = tuple(sorted(index.items(), key=_sort_key))
        object.__setattr__(self, "pairs", ordered)
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_hash", hash(ordered))

    def __setattr__(self, name, value):
        raise AttributeError("MapValue is immutable")

    def __reduce__(self):
        return (MapValue, (self.pairs,))

    def get(self, key, default=None):
        return self._index.get(key, default)

    def __contains__(self, key):
        return key in self._index

    def __getitem__(self, key):
        return self._index[key]

    def __iter__(self):
        return iter(self.pairs)

    def __len__(self):
        return len(self.pairs)

    def insert(self, key, value) -> "MapValue":
        """Return a new map with ``key`` set to ``value``."""
        items = dict(self._index)
        items[key] = value
        return MapValue(items.items())

    def remove(self, key) -> "MapValue":
        """Return a new map without ``key`` (no-op if absent)."""
        items = dict(self._index)
        items.pop(key, None)
        return MapValue(items.items())

    def __eq__(self, other):
        return isinstance(other, MapValue) and self.pairs == other.pairs

    def __hash__(self):
        return self._hash

    def __repr__(self):
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.pairs)
        return f"map{{{inner}}}"


def _sort_key(item):
    key, _ = item
    # Sort by type name first so heterogeneous keys (which the type
    # checker forbids, but defensive code may produce) still order.
    return (type(key).__name__, repr(key))


# Union constructors for Option<T>; declared here so the runtime can
# build them without going through the interpreter.
NONE = StructValue("None", ())


def some(value) -> StructValue:
    """Build ``Some{value}`` of the built-in ``Option`` union."""
    return StructValue("Some", (value,))


def is_none(value) -> bool:
    return isinstance(value, StructValue) and value.constructor == "None"


def is_some(value) -> bool:
    return isinstance(value, StructValue) and value.constructor == "Some"


def wrap_bit(value: int, width: int) -> int:
    """Truncate ``value`` into the unsigned range of ``bit<width>``."""
    return value & ((1 << width) - 1)


def wrap_signed(value: int, width: int) -> int:
    """Truncate ``value`` into the two's-complement range of ``signed<width>``."""
    mask = (1 << width) - 1
    value &= mask
    sign = 1 << (width - 1)
    return value - (1 << width) if value & sign else value


def format_value(value) -> str:
    """Render a runtime value the way the language's `to_string` does."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return value
    if isinstance(value, tuple):
        return "(" + ", ".join(format_value(v) for v in value) + ")"
    if isinstance(value, StructValue):
        if not value.fields:
            return value.constructor
        inner = ", ".join(format_value(f) for f in value.fields)
        return f"{value.constructor}{{{inner}}}"
    if isinstance(value, MapValue):
        inner = ", ".join(
            f"{format_value(k)}: {format_value(v)}" for k, v in value.pairs
        )
        return f"[{inner}]"
    return repr(value) if isinstance(value, float) else str(value)
