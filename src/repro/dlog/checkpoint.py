"""Engine checkpoint serialization.

A checkpoint captures the full state of a :class:`~repro.dlog.engine.Runtime`
— input relation contents, every stateful operator's arrangement, and
recursive-SCC (DRed) support sets — keyed by a hash of the compiled
program source.  Restoring into a runtime compiled from the *same*
source skips the cold-start fixpoint entirely; a hash mismatch (the
program changed) falls back to cold start, which is always correct.

The on-disk format is a pickled dict written atomically: temp file in
the target directory, ``fsync``, then ``os.replace``.  A crash mid-save
leaves the previous checkpoint (or none) intact, never a torn one.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Optional

CHECKPOINT_FORMAT = 1


class CheckpointError(Exception):
    """A checkpoint could not be read or does not fit this program."""


def program_hash(source_text: str, recursive_mode: str) -> str:
    """Identity of a compiled program for checkpoint compatibility.

    Two programs with the same source and recursive mode build the same
    dataflow graph in the same node order, so operator state keyed by
    node index transfers between them.
    """
    digest = hashlib.sha256()
    digest.update(recursive_mode.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source_text.encode("utf-8"))
    return digest.hexdigest()


def save_checkpoint(path: str, data: dict) -> int:
    """Atomically write ``data`` to ``path``; return the byte size."""
    payload = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(payload)


def load_checkpoint(path: str) -> Optional[dict]:
    """Read a checkpoint; ``None`` if absent, :class:`CheckpointError`
    if present but unreadable or from an unknown format version."""
    try:
        with open(path, "rb") as handle:
            data = pickle.load(handle)
    except FileNotFoundError:
        return None
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path!r}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path!r} has unsupported format "
            f"{data.get('format') if isinstance(data, dict) else '?'}"
        )
    return data
