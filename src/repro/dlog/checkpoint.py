"""Engine checkpoint serialization: full snapshots and delta segments.

A checkpoint captures the full state of a :class:`~repro.dlog.engine.Runtime`
— input relation contents, every stateful operator's arrangement, and
recursive-SCC (DRed) support sets — keyed by a hash of the compiled
program source.  Restoring into a runtime compiled from the *same*
source skips the cold-start fixpoint entirely; a hash mismatch (the
program changed) falls back to cold start, which is always correct.

The on-disk format is a pickled dict written atomically: temp file in
the target directory, ``fsync``, then ``os.replace``.  A crash mid-save
leaves the previous checkpoint (or none) intact, never a torn one.

Checkpoint format v2 — delta chains
-----------------------------------

Writing a full snapshot costs O(total state) no matter how little
changed.  :class:`CheckpointStore` amortizes that: between full
snapshots it appends *delta segments* — each one the journaled,
normalized input transactions since the previous save (see
``Runtime.enable_journal``) — so steady-state persistence cost tracks
the change rate.  On disk a chain is::

    <name>               the full snapshot (unchanged v1 payload)
    <name>.delta-000001.seg
    <name>.delta-000002.seg  ...

Each segment records the program hash, its position in the chain, and
the transaction-counter interval it covers; :meth:`CheckpointStore.load_segments`
only accepts a contiguous, same-hash chain anchored at the snapshot's
transaction count and **unlinks** any segment that fails validation
(plus everything after it) — a crash between writing a new full
snapshot and purging old segments therefore self-heals on the next
load instead of replaying stale deltas.  Restore = restore the full
snapshot, then replay the segments' transactions through the normal
transaction path (:func:`replay_segments`); because journaled rows are
already normalized, replay is deterministic and warning-free.

Compaction: every :meth:`CheckpointStore.save_full` purges all
segments and restarts the chain; callers typically cut a full snapshot
every N transactions (``should_full``) or when the accumulated segment
bytes approach the snapshot size.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Callable, List, Optional, Tuple

CHECKPOINT_FORMAT = 1
SEGMENT_FORMAT = 1


class CheckpointError(Exception):
    """A checkpoint could not be read or does not fit this program."""


def program_hash(source_text: str, recursive_mode: str) -> str:
    """Identity of a compiled program for checkpoint compatibility.

    Two programs with the same source and recursive mode build the same
    dataflow graph in the same node order, so operator state keyed by
    node index transfers between them.
    """
    digest = hashlib.sha256()
    digest.update(recursive_mode.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source_text.encode("utf-8"))
    return digest.hexdigest()


def save_checkpoint(path: str, data: dict) -> int:
    """Atomically write ``data`` to ``path``; return the byte size."""
    payload = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(payload)


def load_checkpoint(path: str) -> Optional[dict]:
    """Read a checkpoint; ``None`` if absent, :class:`CheckpointError`
    if present but unreadable or from an unknown format version."""
    try:
        with open(path, "rb") as handle:
            data = pickle.load(handle)
    except FileNotFoundError:
        return None
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path!r}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path!r} has unsupported format "
            f"{data.get('format') if isinstance(data, dict) else '?'}"
        )
    return data


class CheckpointStore:
    """A full snapshot plus an append-only chain of delta segments.

    The store manages one chain under ``directory``: the full snapshot
    at ``<directory>/<name>`` (written with the ordinary atomic
    :func:`save_checkpoint`, so existing full-snapshot readers keep
    working) and numbered ``<name>.delta-NNNNNN.seg`` files.  All
    writes are atomic; every file is stamped with ``program_hash`` and
    validated on load.
    """

    def __init__(
        self,
        directory: str,
        name: str,
        program_hash: Optional[str],
        heal: bool = True,
    ):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.name = name
        self.program_hash = program_hash
        #: Whether :meth:`load_segments` may unlink invalid tail
        #: segments.  Only the chain's *writer* may heal: a concurrent
        #: reader (a warm standby tailing the chain) that healed would
        #: race the writer's ``save_full``/``save_delta`` and could
        #: delete a segment of the *new* chain it has not yet observed
        #: the anchor of — torching a valid chain.  Followers pass
        #: ``heal=False`` and simply stop at the last contiguous
        #: segment.
        self.heal = heal
        self.full_path = os.path.join(directory, name)
        self._next_index = 1
        self._anchor: Optional[int] = None  # txn_count the chain has reached
        self.segments_since_full = 0

    # -- write side --------------------------------------------------------

    def save_full(self, data: dict, txn_count: int) -> int:
        """Write a full snapshot, purge every delta segment (compaction),
        and re-anchor the chain at ``txn_count``.  Returns bytes written."""
        size = save_checkpoint(self.full_path, data)
        for path in self._segment_paths():
            try:
                os.unlink(path)
            except OSError:
                pass
        self._next_index = 1
        self._anchor = txn_count
        self.segments_since_full = 0
        return size

    def save_delta(
        self, txns: List[dict], txn_count: int, meta: Optional[dict] = None
    ) -> int:
        """Append one segment covering ``txns`` (journal entries) and
        ending at transaction counter ``txn_count``.  Returns bytes
        written.  Requires an anchored chain (a prior :meth:`save_full`
        or a validated :meth:`load_segments`)."""
        if self._anchor is None:
            raise CheckpointError(
                "delta segment without an anchored full snapshot; "
                "call save_full first"
            )
        segment = {
            "format": SEGMENT_FORMAT,
            "program_hash": self.program_hash,
            "segment": self._next_index,
            "base_txn": self._anchor,
            "txn_count": txn_count,
            "txns": list(txns),
            "meta": meta or {},
        }
        size = save_checkpoint(self._segment_path(self._next_index), segment)
        self._next_index += 1
        self._anchor = txn_count
        self.segments_since_full += 1
        return size

    def should_full(self, every: int) -> bool:
        """True when the chain holds >= ``every`` segments (or has no
        anchor yet) — the caller's cue to cut a fresh full snapshot."""
        return self._anchor is None or self.segments_since_full >= every

    # -- read side ---------------------------------------------------------

    def load_full(self) -> Optional[dict]:
        """The full snapshot (``None`` if absent); may raise
        :class:`CheckpointError` exactly like :func:`load_checkpoint`."""
        return load_checkpoint(self.full_path)

    def load_segments(self, base_txn: int, start_index: int = 1) -> List[dict]:
        """The validated segment chain anchored at ``base_txn`` (the
        loaded full snapshot's transaction count, or — for a follower
        tailing the chain incrementally — the transaction count it has
        already replayed, with ``start_index`` naming the next segment
        it expects).

        Walks segments in index order and stops at the last contiguous
        valid one — wrong format or hash, non-contiguous index, a
        transaction-counter interval that does not continue the chain,
        or a torn in-progress file all end the walk.  When this store
        is the chain's **writer** (``heal=True``, the default) the
        invalid tail is unlinked: it is a stale leftover of an older
        chain after an interrupted compaction, and the next
        :meth:`save_delta` would collide with it.  A reader
        (``heal=False``) must never unlink — the "invalid" tail may be
        a segment of a *newer* chain the concurrent writer just
        re-anchored.  Also re-anchors the store so subsequent
        :meth:`save_delta` (writer) or :meth:`load_segments` (follower)
        calls continue the chain.
        """
        chain: List[dict] = []
        anchor = base_txn
        expected = start_index
        paths = [
            path
            for path in self._segment_paths()
            if (self._index_of(path) or 0) >= start_index
        ]
        valid_prefix = 0
        for path in paths:
            segment = self._read_segment(path)
            if (
                segment is None
                or segment.get("format") != SEGMENT_FORMAT
                or segment.get("program_hash") != self.program_hash
                or segment.get("segment") != expected
                or self._index_of(path) != expected
                or segment.get("base_txn") != anchor
                or not isinstance(segment.get("txns"), list)
                or not isinstance(segment.get("txn_count"), int)
                or segment["txn_count"] < anchor
            ):
                break
            chain.append(segment)
            anchor = segment["txn_count"]
            expected += 1
            valid_prefix += 1
        if self.heal:
            for path in paths[valid_prefix:]:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        self._next_index = expected
        self._anchor = anchor
        self.segments_since_full = len(chain)
        return chain

    def load_chain(
        self, anchor_of: Callable[[dict], int]
    ) -> Tuple[Optional[dict], List[dict]]:
        """Convenience: ``(full, segments)`` with the chain anchored at
        ``anchor_of(full)``; ``(None, [])`` when no snapshot exists."""
        full = self.load_full()
        if full is None:
            return None, []
        return full, self.load_segments(anchor_of(full))

    # -- internals ---------------------------------------------------------

    def _segment_path(self, index: int) -> str:
        return os.path.join(
            self.directory, f"{self.name}.delta-{index:06d}.seg"
        )

    def _segment_paths(self) -> List[str]:
        prefix = f"{self.name}.delta-"
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return []
        return [
            os.path.join(self.directory, entry)
            for entry in sorted(entries)
            if entry.startswith(prefix) and entry.endswith(".seg")
        ]

    @staticmethod
    def _index_of(path: str) -> Optional[int]:
        stem = os.path.basename(path)[:-len(".seg")]
        try:
            return int(stem.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return None

    @staticmethod
    def _read_segment(path: str) -> Optional[dict]:
        try:
            with open(path, "rb") as handle:
                data = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            return None
        return data if isinstance(data, dict) else None


def replay_segments(runtime, segments: List[dict], phash: Optional[str]) -> int:
    """Replay a validated segment chain through ``runtime.transaction``.

    Works on any runtime with the engine transaction API (single
    :class:`~repro.dlog.engine.Runtime` or sharded facade).  Segments
    whose hash does not match ``phash`` stop the replay — the
    prefix already applied is still consistent state.  Returns the
    number of transactions replayed and pins the runtime's transaction
    counter to the chain's end (journals skip empty transactions, so
    the raw replay count may undercount).
    """
    replayed = 0
    for segment in segments:
        if phash is not None and segment.get("program_hash") != phash:
            break
        for txn in segment.get("txns", ()):
            runtime.transaction(
                inserts=txn.get("inserts") or {},
                deletes=txn.get("deletes") or {},
            )
            replayed += 1
        runtime.txn_count = segment.get("txn_count", runtime.txn_count)
    return replayed
