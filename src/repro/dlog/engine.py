"""The incremental Datalog engine: compilation and transactions.

``compile_program`` turns source text into a :class:`CompiledProgram`:
parse → typecheck → stratify → plan.  ``CompiledProgram.start()``
creates a :class:`Runtime` whose :meth:`~Runtime.transaction` applies a
batch of input inserts/deletes and returns only the resulting *changes*
of every derived relation — the paper's key control-plane property.

Architecture
------------

One dataflow graph covers the whole program:

* every relation has a node — input relations a pass-through source,
  non-recursive derived relations a Distinct (set semantics over the
  union of their rules), recursive relations a pass-through fed by
  their SCC's evaluator node;
* every non-recursive rule is a chain of operators from
  :mod:`repro.dlog.plan`;
* every recursive SCC is a single :class:`~repro.dlog.recursive.SccNode`
  (DRed); its *base rules* (no recursion in the body) are planned as
  ordinary dataflow feeding a synthetic ``__base_<rel>`` relation that
  enters the SCC like any other external input.

Facts (rules with no body atoms) are evaluated at compile time and
injected as an initial transaction by :meth:`CompiledProgram.start`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro import obs
from repro.dlog import ast as A
from repro.dlog import types as T
from repro.dlog.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    program_hash,
)
from repro.dlog.dataflow.arrangement import Arrangement
from repro.dlog.dataflow.graph import Graph
from repro.dlog.dataflow.operators import (
    AggregateNode,
    AntiJoinNode,
    DistinctNode,
    JoinNode,
    Node,
    SourceNode,
)
from repro.dlog.dataflow.zset import ZSet
from repro.dlog.interp import Evaluator
from repro.dlog.parser import parse_program
from repro.dlog.plan import Planner
from repro.dlog.recursive import SccEvaluator, SccNode
from repro.dlog.stratify import Stratification, stratify
from repro.dlog.typecheck import CheckedProgram, check_program
from repro.dlog.values import MapValue, StructValue
from repro.errors import TransactionError

BASE_PREFIX = "__base_"


def _is_recursive_rule(rule: A.Rule, members: Set[str]) -> bool:
    for item in rule.body:
        if isinstance(item, A.AtomItem) and item.atom.relation in members:
            return True
    return False


def _make_base_rule(member: str, arity: int) -> A.Rule:
    """Synthesize ``Member(a0..an) :- __base_Member(a0..an).``"""
    args = [A.PVar(f"__a{i}") for i in range(arity)]
    head = A.Atom(member, args)
    body = [A.AtomItem(A.Atom(BASE_PREFIX + member, [A.PVar(f"__a{i}") for i in range(arity)]))]
    rule = A.Rule(head, body, name=f"{member}:base")
    return rule


class CompiledProgram:
    """A compiled program; create runtimes with :meth:`start`."""

    def __init__(
        self,
        checked: CheckedProgram,
        recursive_mode: str = "dred",
        source_text: Optional[str] = None,
    ):
        self.checked = checked
        self.recursive_mode = recursive_mode
        self.source_text = source_text
        self.evaluator = Evaluator(checked)
        self.planner = Planner(checked, self.evaluator)
        self.stratification: Stratification = stratify(
            [r.name for r in checked.ast.relations], checked.ast.rules
        )
        self.input_relations: List[str] = [
            r.name for r in checked.ast.relations if r.role == "input"
        ]
        self.output_relations: List[str] = [
            r.name for r in checked.ast.relations if r.role == "output"
        ]
        self._shard_plan = None

    @property
    def program_hash(self) -> Optional[str]:
        """Checkpoint-compatibility identity; ``None`` when the program
        was built without source text (checkpoints then unavailable)."""
        if self.source_text is None:
            return None
        return program_hash(self.source_text, self.recursive_mode)

    def start(
        self,
        checkpoint: Optional[dict] = None,
        shards: int = 1,
        shard_workers: str = "process",
        bulk_load: bool = True,
    ):
        """Create a runtime; with ``checkpoint`` (from
        :meth:`Runtime.checkpoint`), restore its state in O(state)
        instead of recomputing.  A checkpoint whose program hash does
        not match this program falls back to a cold start; check
        ``Runtime.restored`` to see which path was taken.

        ``checkpoint`` may also be a delta chain bundle
        (``{"delta_chain": True, "full": <snapshot-or-None>,
        "segments": [...]}``, see :mod:`repro.dlog.checkpoint`): the
        full snapshot is restored first and the journaled segments are
        replayed on top.

        ``bulk_load`` (default on) lets transactions hitting empty
        engine state — the initial static-fact load, the first cold
        transaction, restore replays — build operator state in one
        grouped pass per arrangement instead of threading every row
        through the per-delta machinery.  ``bulk_load=False`` keeps
        every transaction on the reference incremental path (used by
        the differential oracle).

        ``shards > 1`` returns a :class:`~repro.dlog.shard.ShardedRuntime`
        — the same API over N per-shard engines (``shard_workers`` picks
        ``"process"`` or ``"inline"`` evaluation); checkpoints are then
        sharded bundles, incompatible across shard counts.
        """
        if isinstance(checkpoint, dict) and checkpoint.get("delta_chain"):
            from repro.dlog.checkpoint import replay_segments

            segments = checkpoint.get("segments") or []
            full = checkpoint.get("full")
            runtime = self.start(
                checkpoint=full,
                shards=shards,
                shard_workers=shard_workers,
                bulk_load=bulk_load,
            )
            # Only replay on top of the state the segments were cut
            # against; if the full snapshot fell back to a cold start,
            # replaying deltas would corrupt it.
            if full is None or runtime.restored:
                replay_segments(runtime, segments, self.program_hash)
            return runtime
        if shards > 1:
            from repro.dlog.shard.runtime import ShardedRuntime

            return ShardedRuntime(
                self,
                shards=shards,
                workers=shard_workers,
                checkpoint=checkpoint,
                plan=self.shard_plan(),
                bulk_load=bulk_load,
            )
        return Runtime(self, checkpoint=checkpoint, bulk_load=bulk_load)

    def shard_plan(self):
        """The program's partition analysis (cached); see
        :func:`repro.dlog.shard.analyze`."""
        if self._shard_plan is None:
            from repro.dlog.shard.analyze import analyze

            self._shard_plan = analyze(self)
        return self._shard_plan

    def relation_decl(self, name: str) -> A.RelationDecl:
        return self.checked.relation(name)

    def explain(self) -> str:
        """Human-readable description of the compiled evaluation plan:
        strata in execution order, which are recursive, and the rules
        deriving each relation."""
        strat = self.stratification
        rules_by_head: Dict[str, List[A.Rule]] = {}
        for rule in self.checked.ast.rules:
            rules_by_head.setdefault(rule.head.relation, []).append(rule)
        lines = []
        for idx, scc in enumerate(strat.order):
            kind = "recursive (DRed)" if strat.recursive[idx] else "dataflow"
            lines.append(f"stratum {idx} [{kind}]: {', '.join(scc)}")
            for rel in scc:
                decl = self.checked.relations.get(rel)
                role = decl.role if decl else "?"
                n_rules = len(rules_by_head.get(rel, ()))
                lines.append(f"  {rel} ({role}, {n_rules} rule(s))")
                for rule in rules_by_head.get(rel, ()):
                    body = []
                    for item in rule.body:
                        if isinstance(item, A.AtomItem):
                            body.append(item.atom.relation)
                        elif isinstance(item, A.NegAtom):
                            body.append(f"not {item.atom.relation}")
                        elif isinstance(item, A.AggregateItem):
                            body.append(f"aggregate({item.func})")
                        elif isinstance(item, A.FlatMapItem):
                            body.append("flatmap")
                        elif isinstance(item, A.Guard):
                            body.append("guard")
                        elif isinstance(item, A.Assignment):
                            body.append("assign")
                    lines.append(
                        f"    :- {', '.join(body) if body else '<fact>'}"
                    )
        return "\n".join(lines)


def compile_program(
    text: str, source: str = "<input>", recursive_mode: str = "dred"
) -> CompiledProgram:
    """Parse, typecheck, stratify, and plan a program.

    ``recursive_mode`` selects how recursive SCCs handle deletions:
    ``"dred"`` (default, incremental delete–rederive) or ``"recompute"``
    (full fixpoint per transaction; kept as an ablation baseline).
    """
    ast = parse_program(text, source)
    checked = check_program(ast)
    return CompiledProgram(checked, recursive_mode, source_text=text)


class TxnResult:
    """Outcome of one transaction.

    ``deltas`` maps every derived relation touched by the transaction to
    its change Z-set (+1 inserted row, -1 deleted row); relations whose
    contents did not change are absent.  ``outputs`` restricts that to
    ``output relation`` declarations.  ``warnings`` records ignored
    duplicate inserts / missing deletes.
    """

    def __init__(
        self,
        deltas: Dict[str, ZSet],
        output_names: Sequence[str],
        warnings: List[str],
        duration: float,
    ):
        self.deltas = deltas
        self._output_names = set(output_names)
        self.warnings = warnings
        self.duration = duration

    @property
    def outputs(self) -> Dict[str, ZSet]:
        return {
            name: delta
            for name, delta in self.deltas.items()
            if name in self._output_names
        }

    def inserted(self, relation: str) -> List[tuple]:
        delta = self.deltas.get(relation)
        if delta is None:
            return []
        return [row for row, w in delta.items() if w > 0]

    def deleted(self, relation: str) -> List[tuple]:
        delta = self.deltas.get(relation)
        if delta is None:
            return []
        return [row for row, w in delta.items() if w < 0]

    def __repr__(self):
        changed = ", ".join(sorted(self.deltas))
        return f"TxnResult(changed=[{changed}], warnings={len(self.warnings)})"


class Runtime:
    """A running instance of a compiled program."""

    def __init__(
        self,
        program: CompiledProgram,
        checkpoint: Optional[dict] = None,
        bulk_load: bool = True,
    ):
        self.program = program
        self.checked = program.checked
        self.bulk_load = bulk_load
        self.graph = Graph()
        self.relation_nodes: Dict[str, Node] = {}
        self.scc_evaluators: Dict[int, SccEvaluator] = {}
        self._input_state: Dict[str, Set[tuple]] = {
            name: set() for name in program.input_relations
        }
        self._validators = {
            rel.name: _row_validator(rel, self.checked.tenv)
            for rel in self.checked.ast.relations
        }
        self._bulk_validators = {
            rel.name: _bulk_row_validator(rel, self._validators[rel.name])
            for rel in self.checked.ast.relations
        }
        self._journal: Optional[List[dict]] = None
        self._static_rows: Dict[str, List[tuple]] = {}
        self._deferred_exits: List[Tuple[str, List[Node]]] = []
        self._node_stratum: Dict[int, int] = {}
        self.operator_totals: Dict[str, Dict[str, float]] = {}
        self._obs_handles: Optional[Tuple[int, object]] = None
        self.txn_count = 0
        self.total_txn_time = 0.0
        self._build()
        self.restored = (
            checkpoint is not None and self._restore(checkpoint)
        )
        if self.restored:
            # The restored operator state already contains the static
            # rows and every prior transaction's effects; re-running the
            # initial transaction would double-count them.
            self.initial_result = TxnResult(
                {}, program.output_relations, [], 0.0
            )
        else:
            self.initial_result = self._apply({}, initial=True)

    # -- construction -------------------------------------------------------------

    def _build(self) -> None:
        checked = self.checked
        strat = self.program.stratification
        graph = self.graph

        # Relation nodes.
        recursive_members: Set[str] = set()
        for scc_idx, scc in enumerate(strat.order):
            if strat.recursive[scc_idx]:
                recursive_members.update(scc)
        for rel in checked.ast.relations:
            if rel.role == "input":
                node: Node = SourceNode(name=f"input({rel.name})")
            elif rel.name in recursive_members:
                node = SourceNode(name=f"recursive({rel.name})")
            else:
                node = DistinctNode(name=f"relation({rel.name})")
            self.relation_nodes[rel.name] = graph.add(node)
            self._node_stratum[id(node)] = strat.scc_of[rel.name]

        # Partition rules: non-recursive ones are planned as dataflow;
        # recursive SCC rules go to their SCC evaluator, with their base
        # rules planned as dataflow into a synthetic base relation.
        scc_rules: Dict[int, List[A.Rule]] = {}
        base_needed: Dict[str, A.RelationDecl] = {}
        for rule in checked.ast.rules:
            head = rule.head.relation
            scc_idx = strat.scc_of[head]
            if not strat.recursive[scc_idx]:
                self._plan_into(rule, head)
                continue
            members = set(strat.order[scc_idx])
            if _is_recursive_rule(rule, members):
                scc_rules.setdefault(scc_idx, []).append(rule)
            else:
                base_name = BASE_PREFIX + head
                decl = checked.relations[head]
                base_needed.setdefault(
                    base_name,
                    A.RelationDecl(base_name, list(decl.columns), "internal"),
                )
                self._plan_into(rule, base_name)

        # Base relation nodes (Distinct over the base rules' outputs).
        for base_name, decl in base_needed.items():
            node = DistinctNode(name=f"relation({base_name})")
            self.relation_nodes[base_name] = graph.add(node)
            member = base_name[len(BASE_PREFIX):]
            self._node_stratum[id(node)] = strat.scc_of[member]
            checked.relations.setdefault(base_name, decl)

        # Re-wire planned chains that targeted base relations before the
        # node existed (handled inside _plan_into via deferred list).
        for base_name, exits in self._deferred_exits:
            for exit_node in exits:
                exit_node.connect_to(self.relation_nodes[base_name], 0)

        # SCC evaluator nodes.
        for scc_idx, rules in sorted(scc_rules.items()):
            members = list(strat.order[scc_idx])
            synthetic: List[A.Rule] = []
            for member in members:
                base_name = BASE_PREFIX + member
                if base_name in self.relation_nodes:
                    rule = _make_base_rule(
                        member, checked.relations[member].arity
                    )
                    checked.head_exprs[id(rule)] = [
                        A.Var(f"__a{i}")
                        for i in range(checked.relations[member].arity)
                    ]
                    synthetic.append(rule)
            evaluator = SccEvaluator(
                members,
                rules + synthetic,
                checked,
                self.program.evaluator,
                mode=self.program.recursive_mode,
            )
            self.scc_evaluators[scc_idx] = evaluator
            scc_node = SccNode(evaluator)
            graph.add(scc_node)
            self._node_stratum[id(scc_node)] = scc_idx
            for port, ext in enumerate(scc_node.externals):
                self.relation_nodes[ext].connect_to(scc_node, port)
            for member in members:
                scc_node.connect_to(
                    self.relation_nodes[member], 0, out_key=member
                )

    def _plan_into(self, rule: A.Rule, target_relation: str) -> None:
        chain = self.program.planner.plan_rule(rule)
        if chain.static_rows is not None:
            self._static_rows.setdefault(target_relation, []).extend(
                chain.static_rows
            )
            return
        strat = self.program.stratification
        head = target_relation
        if head.startswith(BASE_PREFIX):
            head = head[len(BASE_PREFIX):]
        stratum = strat.scc_of.get(head)
        for node in chain.nodes:
            self.graph.add(node)
            if stratum is not None:
                self._node_stratum[id(node)] = stratum
        entry_rel, entry_node = chain.entry
        self.relation_nodes[entry_rel].connect_to(entry_node, 0)
        for rel, node, port in chain.taps:
            self.relation_nodes[rel].connect_to(node, port)
        target = self.relation_nodes.get(target_relation)
        if target is None:
            self._deferred_exits.append((target_relation, [chain.exit]))
        else:
            chain.exit.connect_to(target, 0)

    # -- transactions -----------------------------------------------------------------

    def transaction(
        self,
        inserts: Optional[Mapping[str, Iterable[Sequence]]] = None,
        deletes: Optional[Mapping[str, Iterable[Sequence]]] = None,
        initial: bool = False,
    ) -> TxnResult:
        """Apply input changes; return the deltas of all derived relations.

        Duplicate inserts and deletes of absent rows are ignored with a
        warning (input relations are sets).  Rows are validated against
        the relation's declared column types.

        ``initial=True`` marks the call as a bulk initial load,
        requesting the bulk path even when the runtime was started with
        ``bulk_load=False``.  It is a hint, not an unsafe switch: the
        bulk path only engages from empty engine state and each
        operator falls back to the incremental path otherwise, so the
        result is always identical.
        """
        return self._apply(
            {"inserts": inserts or {}, "deletes": deletes or {}},
            bulk_hint=initial,
        )

    def _apply(
        self, changes, initial: bool = False, bulk_hint: bool = False
    ) -> TxnResult:
        if not obs.enabled():
            return self._apply_inner(changes, initial, None, bulk_hint)
        # Per-operator profiling (detail tier) costs on the order of the
        # transaction itself for tiny incremental updates, so the
        # standard tier records only the span and the registry metrics —
        # and only records the span at all when the transaction is part
        # of a causal trace (an enclosing span or update-id exists).  A
        # bare Runtime.transaction() call has nothing to attribute the
        # span to, so it pays just the histogram.
        detail = obs.detail_enabled()
        if detail:
            with obs.TRACER.span("engine.transaction") as span:
                profile: List[Tuple[Node, float, int, int]] = []
                result = self._apply_inner(changes, initial, profile, bulk_hint)
                operators, strata = self._summarize_profile(profile)
                span.set(
                    initial=initial,
                    deltas={r: len(d) for r, d in result.deltas.items()},
                    operators=operators,
                    stratum_seconds=strata,
                )
        elif (
            obs.TRACER.active() is not None
            or obs.current_update_id() is not None
        ):
            with obs.TRACER.span("engine.transaction"):
                result = self._apply_inner(changes, initial, None, bulk_hint)
        else:
            result = self._apply_inner(changes, initial, None, bulk_hint)
        # One registry update per transaction: the histogram's exact
        # ``count`` doubles as the transaction counter, so no separate
        # Counter (and its lock) is paid on this path.
        registry = obs.REGISTRY
        handles = self._obs_handles
        if handles is None or handles[0] != registry.generation:
            handles = self._obs_handles = (
                registry.generation,
                registry.histogram("engine_txn_seconds"),
            )
        handles[1].observe(result.duration)
        return result

    def _apply_inner(self, changes, initial, profile, bulk_hint=False) -> TxnResult:
        started = time.perf_counter()
        warnings: List[str] = []
        source_deltas: Dict[int, ZSet] = {}

        # The bulk path is only observationally equal from empty engine
        # state (each stateful operator additionally re-checks and falls
        # back on its own), so decide before any state is touched.
        bulk = (self.bulk_load or bulk_hint) and not any(
            self._input_state.values()
        ) and self.graph.total_state() == 0

        journal = self._journal
        entry: Optional[dict] = None
        if journal is not None and not initial:
            entry = {"inserts": {}, "deletes": {}}

        if initial:
            for rel_name, rows in self._static_rows.items():
                delta = ZSet()
                for row in rows:
                    delta.add(row, 1)
                node = self.relation_nodes[rel_name]
                source_deltas.setdefault(id(node), ZSet()).merge(delta)
        else:
            inserts = changes["inserts"]
            deletes = changes["deletes"]
            for rel_name in set(inserts) | set(deletes):
                if rel_name not in self._input_state:
                    raise TransactionError(
                        f"{rel_name} is not an input relation"
                    )
            for rel_name, rows in deletes.items():
                delta = self._normalize(
                    rel_name, rows, insert=False, warnings=warnings
                )
                if delta:
                    node = self.relation_nodes[rel_name]
                    source_deltas.setdefault(id(node), ZSet()).merge(delta)
                    if entry is not None:
                        entry["deletes"][rel_name] = list(delta.data)
            for rel_name, rows in inserts.items():
                delta = self._normalize(
                    rel_name, rows, insert=True, warnings=warnings, bulk=bulk
                )
                if delta:
                    node = self.relation_nodes[rel_name]
                    source_deltas.setdefault(id(node), ZSet()).merge(delta)
                    if entry is not None:
                        entry["inserts"][rel_name] = list(delta.data)

        outputs = self.graph.run(source_deltas, profile=profile, bulk=bulk)

        if entry is not None and (entry["inserts"] or entry["deletes"]):
            journal.append(entry)

        deltas: Dict[str, ZSet] = {}
        for rel_name, node in self.relation_nodes.items():
            if rel_name.startswith(BASE_PREFIX):
                continue
            out = outputs.get(id(node))
            if isinstance(out, ZSet) and out:
                deltas[rel_name] = out

        duration = time.perf_counter() - started
        self.txn_count += 1
        self.total_txn_time += duration
        return TxnResult(deltas, self.program.output_relations, warnings, duration)

    def _summarize_profile(self, profile) -> Tuple[dict, Dict[int, float]]:
        """Fold one transaction's node samples into per-operator stats
        (for the engine span) and per-stratum seconds, accumulating the
        process-lifetime totals as a side effect."""
        operators: Dict[str, Dict[str, float]] = {}
        strata: Dict[int, float] = {}
        probes = 0
        for node, seconds, n_in, n_out in profile:
            entry = operators.get(node.name)
            if entry is None:
                entry = operators[node.name] = {
                    "calls": 0,
                    "seconds": 0.0,
                    "in_tuples": 0,
                    "out_tuples": 0,
                }
            entry["calls"] += 1
            entry["seconds"] += seconds
            entry["in_tuples"] += n_in
            entry["out_tuples"] += n_out
            if isinstance(node, JoinNode):
                probes += n_in
            stratum = self._node_stratum.get(id(node))
            if stratum is not None:
                strata[stratum] = strata.get(stratum, 0.0) + seconds
        for name, entry in operators.items():
            total = self.operator_totals.get(name)
            if total is None:
                total = self.operator_totals[name] = {
                    "calls": 0,
                    "seconds": 0.0,
                    "in_tuples": 0,
                    "out_tuples": 0,
                }
            total["calls"] += entry["calls"]
            total["seconds"] += entry["seconds"]
            total["in_tuples"] += entry["in_tuples"]
            total["out_tuples"] += entry["out_tuples"]
        if probes:
            obs.REGISTRY.counter("engine_arrangement_probes_total").inc(probes)
        return operators, strata

    def _normalize(
        self, rel_name: str, rows, insert: bool, warnings: List[str],
        bulk: bool = False,
    ) -> ZSet:
        state = self._input_state[rel_name]
        validate = self._validators[rel_name]
        if bulk and insert and not state:
            # Cold-load fast path: one column-wise validation sweep and
            # a wholesale set/dict build.  Falls through to the
            # per-row loop when the batch has internal duplicates so
            # the warnings match the incremental path exactly.
            rows = [row if type(row) is tuple else tuple(row) for row in rows]
            self._bulk_validators[rel_name](rows)
            if len(set(rows)) == len(rows):
                state.update(rows)
                return ZSet(dict.fromkeys(rows, 1))
        delta = ZSet()
        for raw in rows:
            row = tuple(raw) if not isinstance(raw, tuple) else raw
            validate(row)
            if insert:
                if row in state or delta.weight(row) > 0:
                    warnings.append(f"{rel_name}: duplicate insert {row!r}")
                    continue
                state.add(row)
                delta.add(row, 1)
            else:
                if row not in state:
                    warnings.append(f"{rel_name}: delete of absent row {row!r}")
                    continue
                state.discard(row)
                delta.add(row, -1)
        return delta

    # -- journaling --------------------------------------------------------------------

    def enable_journal(self) -> None:
        """Start recording each transaction's *normalized* input delta
        (duplicates and absent-row deletes already filtered) for delta
        checkpointing; see :class:`repro.dlog.checkpoint.CheckpointStore`."""
        if self._journal is None:
            self._journal = []

    def drain_journal(self) -> List[dict]:
        """Return and clear the journaled transactions since the last
        drain (or :meth:`enable_journal`).  Each entry is
        ``{"inserts": {rel: [row, ...]}, "deletes": {...}}``; replaying
        them in order through :meth:`transaction` reproduces the exact
        input-state trajectory."""
        if self._journal is None:
            return []
        drained, self._journal = self._journal, []
        return drained

    # -- checkpointing -----------------------------------------------------------------

    def checkpoint(self) -> dict:
        """Serialize the full dataflow state into a plain dict.

        Captures input relation contents, every stateful operator's
        arrangement (keyed by node index in the deterministically built
        graph), and each recursive SCC's DRed support sets, stamped with
        the program hash.  The result is picklable and independent of
        this runtime (one-level copies throughout), so the runtime may
        keep transacting after the snapshot.
        """
        phash = self.program.program_hash
        if phash is None:
            raise CheckpointError(
                "program was compiled without source text; "
                "checkpoints need a program hash"
            )
        nodes: List[Tuple[int, str, object]] = []
        for index, node in enumerate(self.graph.nodes):
            kind = _node_kind(node)
            if kind is None:
                continue
            nodes.append((index, kind, _node_state(node, kind)))
        sccs = {
            scc_idx: {
                rel: set(rows)
                for rel, rows in evaluator.state.sets.items()
            }
            for scc_idx, evaluator in self.scc_evaluators.items()
        }
        return {
            "format": CHECKPOINT_FORMAT,
            "program_hash": phash,
            "inputs": {
                name: set(rows) for name, rows in self._input_state.items()
            },
            "nodes": nodes,
            "sccs": sccs,
            "txn_count": self.txn_count,
            "total_txn_time": self.total_txn_time,
        }

    def _restore(self, data: dict) -> bool:
        """Load a checkpoint into this (freshly built, empty) runtime.

        Returns ``False`` — leaving the runtime untouched for a cold
        start — whenever the checkpoint does not exactly fit this
        program: wrong format, hash mismatch, or any structural
        disagreement with the built graph.
        """
        if not isinstance(data, dict):
            return False
        if data.get("format") != CHECKPOINT_FORMAT:
            return False
        if data.get("sharded"):
            # A sharded bundle (N nested engine checkpoints) carries no
            # operator state at this level; only ShardedRuntime with the
            # matching shard count can restore it.
            return False
        phash = self.program.program_hash
        if phash is None or data.get("program_hash") != phash:
            return False
        graph_nodes = self.graph.nodes
        staged: List[Tuple[Node, str, object]] = []
        for index, kind, state in data.get("nodes", ()):
            if not 0 <= index < len(graph_nodes):
                return False
            node = graph_nodes[index]
            if _node_kind(node) != kind:
                return False
            staged.append((node, kind, state))
        inputs = data.get("inputs", {})
        if set(inputs) != set(self._input_state):
            return False
        sccs = data.get("sccs", {})
        if set(sccs) != set(self.scc_evaluators):
            return False
        # Validation passed; copy the state in.
        for name, rows in inputs.items():
            self._input_state[name] = set(rows)
        for node, kind, state in staged:
            if kind == "distinct":
                node.counts = ZSet(dict(state))
            elif kind == "join":
                left, right = state
                node.left = _arrangement_from(left)
                node.right = _arrangement_from(right)
            elif kind == "antijoin":
                left, counts = state
                node.left = _arrangement_from(left)
                node.right_counts = dict(counts)
            elif kind == "aggregate":
                node.groups = _arrangement_from(state)
        for scc_idx, rels in sccs.items():
            evaluator = self.scc_evaluators[scc_idx]
            evaluator.state.sets = {
                rel: set(rows) for rel, rows in rels.items()
            }
            evaluator.state.indexes = {}
        self.txn_count = data.get("txn_count", 0)
        self.total_txn_time = data.get("total_txn_time", 0.0)
        return True

    # -- inspection ----------------------------------------------------------------------

    def dump(self, relation: str) -> Set[tuple]:
        """Current contents of any relation (input or derived)."""
        if relation in self._input_state:
            return set(self._input_state[relation])
        strat = self.program.stratification
        scc_idx = strat.scc_of.get(relation)
        if scc_idx is not None and strat.recursive[scc_idx]:
            return self.scc_evaluators[scc_idx].extent(relation)
        node = self.relation_nodes.get(relation)
        if isinstance(node, DistinctNode):
            return set(node.positive_records())
        raise KeyError(f"unknown relation {relation!r}")

    def close(self) -> None:
        """No resources to release; exists so callers can treat
        single-shard and sharded runtimes uniformly."""

    def state_size(self) -> int:
        """Total records held by all stateful operators (memory proxy)."""
        return self.graph.total_state() + sum(
            len(s) for s in self._input_state.values()
        )

    def profile(self) -> Dict[str, object]:
        return {
            "transactions": self.txn_count,
            "total_txn_time": self.total_txn_time,
            "state_records": self.state_size(),
            "graph_nodes": len(self.graph.nodes),
            "operators": {
                name: dict(stats)
                for name, stats in sorted(self.operator_totals.items())
            },
        }


def _node_kind(node: Node) -> Optional[str]:
    """Stable tag of a stateful node's class for checkpoint validation."""
    if isinstance(node, DistinctNode):
        return "distinct"
    if isinstance(node, JoinNode):
        return "join"
    if isinstance(node, AntiJoinNode):
        return "antijoin"
    if isinstance(node, AggregateNode):
        return "aggregate"
    return None


def _arrangement_data(arrangement: Arrangement) -> Dict[object, Dict[object, int]]:
    return {key: dict(group) for key, group in arrangement.data.items()}


def _arrangement_from(data: Dict[object, Dict[object, int]]) -> Arrangement:
    out = Arrangement()
    out.data = {key: dict(group) for key, group in data.items()}
    out.records = sum(len(g) for g in out.data.values())
    return out


def _node_state(node: Node, kind: str) -> object:
    if kind == "distinct":
        return dict(node.counts.data)
    if kind == "join":
        return (_arrangement_data(node.left), _arrangement_data(node.right))
    if kind == "antijoin":
        return (_arrangement_data(node.left), dict(node.right_counts))
    return _arrangement_data(node.groups)


def _row_validator(decl: A.RelationDecl, tenv: T.TypeEnv):
    """Build a shallow row validator for one relation."""
    col_types = decl.column_types()
    arity = decl.arity
    name = decl.name

    def validate(row: tuple) -> None:
        if len(row) != arity:
            raise TransactionError(
                f"{name}: row {row!r} has {len(row)} column(s), expected {arity}"
            )
        for i, (value, ty) in enumerate(zip(row, col_types)):
            if not _shallow_check(value, ty):
                raise TransactionError(
                    f"{name}: column {decl.columns[i][0]} expects {ty}, "
                    f"got {value!r}"
                )

    return validate


def _fast_type_check(ty: T.Type):
    """An exact-type predicate implying :func:`_shallow_check`, or None.

    ``type(v) is X`` is both faster than the isinstance chain and
    strictly stronger (it also rejects subclasses, e.g. bool-as-int),
    so a batch passing the fast sweep needs no per-row revalidation;
    a batch failing it is re-run through the precise per-row validator
    to either accept the subclass case or raise the exact error.
    """
    if isinstance(ty, T.TBool):
        return lambda v: type(v) is bool
    if isinstance(ty, (T.TBit, T.TSigned, T.TBigInt)):
        return lambda v: type(v) is int
    if isinstance(ty, T.TFloat):
        return lambda v: type(v) is float
    if isinstance(ty, T.TString):
        return lambda v: type(v) is str
    if isinstance(ty, (T.TTuple, T.TVec)):
        return lambda v: type(v) is tuple
    if isinstance(ty, T.TMap):
        return lambda v: isinstance(v, MapValue)
    if isinstance(ty, T.TUser):
        return lambda v: isinstance(v, StructValue)
    return None


def _bulk_row_validator(decl: A.RelationDecl, validate):
    """Batch validator: a column-wise fast sweep with per-row fallback.

    Raises exactly what the per-row ``validate`` would raise on the
    first offending row (in batch order); accepts everything it would
    accept.
    """
    arity = decl.arity
    checks = [
        (i, check)
        for i, check in enumerate(
            _fast_type_check(ty) for ty in decl.column_types()
        )
        if check is not None
    ]

    def validate_rows(rows: List[tuple]) -> None:
        ok = all(len(row) == arity for row in rows)
        if ok:
            for i, check in checks:
                if not all(check(row[i]) for row in rows):
                    ok = False
                    break
        if not ok:
            for row in rows:
                validate(row)

    return validate_rows


def _shallow_check(value, ty: T.Type) -> bool:
    if isinstance(ty, T.TBool):
        return isinstance(value, bool)
    if isinstance(ty, (T.TBit, T.TSigned, T.TBigInt)):
        return isinstance(value, int) and not isinstance(value, bool)
    if isinstance(ty, T.TFloat):
        return isinstance(value, float)
    if isinstance(ty, T.TString):
        return isinstance(value, str)
    if isinstance(ty, (T.TTuple, T.TVec)):
        return isinstance(value, tuple)
    if isinstance(ty, T.TMap):
        return isinstance(value, MapValue)
    if isinstance(ty, T.TUser):
        return isinstance(value, StructValue)
    return True
