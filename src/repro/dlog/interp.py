"""Expression evaluation for the control-plane language.

The :class:`Evaluator` executes typechecked expressions.  It consults
the checker's node-type table so fixed-width arithmetic wraps exactly
like the declared type says (``bit<8>`` addition wraps at 256, signed
types wrap two's-complement), which matters when control-plane rules
compute values destined for P4 table entries of a fixed width.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dlog import ast as A
from repro.dlog import types as T
from repro.dlog import values as V
from repro.dlog.stdlib import BUILTINS
from repro.dlog.typecheck import CheckedProgram
from repro.errors import EvalError

_MAX_CALL_DEPTH = 200


def _int_div(a: int, b: int) -> int:
    """C-style division truncating toward zero (DDlog semantics)."""
    if b == 0:
        raise EvalError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a: int, b: int) -> int:
    if b == 0:
        raise EvalError("modulo by zero")
    return a - _int_div(a, b) * b


class Evaluator:
    """Evaluates expressions of one :class:`CheckedProgram`."""

    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.tenv = checked.tenv
        self._ctor_index_cache: Dict[str, Dict[str, int]] = {}
        self._depth = 0

    # -- public API ---------------------------------------------------------

    def eval(self, expr: A.Expr, env: Dict[str, object]) -> object:
        method = self._DISPATCH[type(expr)]
        return method(self, expr, env)

    def match(
        self,
        pat: A.Pattern,
        value: object,
        env: Dict[str, object],
        bind_always: bool = True,
    ) -> bool:
        """Match ``value`` against ``pat``; on success, bind its variables.

        ``bind_always=True`` (match arms) always (re)binds variables;
        ``bind_always=False`` (atom arguments) treats an already-bound
        variable as an equality constraint.

        On failure ``env`` may contain partial bindings; callers pass a
        scratch copy.
        """
        if isinstance(pat, A.PWildcard):
            return True
        if isinstance(pat, A.PVar):
            if not bind_always and pat.name in env:
                return env[pat.name] == value
            env[pat.name] = value
            return True
        if isinstance(pat, A.PLit):
            return value == pat.value
        if isinstance(pat, A.PTuple):
            if not isinstance(value, tuple) or len(value) != len(pat.elems):
                return False
            return all(
                self.match(p, v, env, bind_always)
                for p, v in zip(pat.elems, value)
            )
        if isinstance(pat, A.PStruct):
            if (
                not isinstance(value, V.StructValue)
                or value.constructor != pat.ctor
            ):
                return False
            return all(
                self.match(p, v, env, bind_always)
                for (_, p), v in zip(pat.fields, value.fields)
            )
        if isinstance(pat, A.PExpr):
            return value == self.eval(pat.expr, env)
        raise EvalError(f"unsupported pattern {pat!r}")  # pragma: no cover

    def call(self, name: str, args: List[object]) -> object:
        """Call a user function or builtin with already-evaluated args."""
        fn = self.checked.functions.get(name)
        if fn is not None:
            if self._depth >= _MAX_CALL_DEPTH:
                raise EvalError(f"call depth exceeded in function {name}")
            env = {p: a for (p, _), a in zip(fn.params, args)}
            self._depth += 1
            try:
                result = self.eval(fn.body, env)
            finally:
                self._depth -= 1
            return self._coerce(result, fn.return_type)
        builtin = BUILTINS.get(name)
        if builtin is None:
            raise EvalError(f"unknown function {name!r}")
        try:
            return builtin.fn(*args)
        except EvalError:
            raise
        except Exception as exc:
            raise EvalError(f"{name}(): {exc}") from exc

    # -- helpers --------------------------------------------------------------

    def _result_type(self, expr: A.Expr) -> Optional[T.Type]:
        return self.checked.node_types.get(id(expr))

    def _coerce(self, value: object, ty: Optional[T.Type]) -> object:
        if isinstance(ty, T.TBit) and isinstance(value, int):
            return V.wrap_bit(value, ty.width)
        if isinstance(ty, T.TSigned) and isinstance(value, int):
            return V.wrap_signed(value, ty.width)
        return value

    def _field_index(self, ctor_name: str, field_name: str) -> int:
        cache = self._ctor_index_cache.get(ctor_name)
        if cache is None:
            tdef = self.tenv.owner_of_constructor(ctor_name)
            if tdef is None:
                raise EvalError(f"unknown constructor {ctor_name!r}")
            ctor = tdef.constructor(ctor_name)
            cache = {f.name: i for i, f in enumerate(ctor.fields)}
            self._ctor_index_cache[ctor_name] = cache
        try:
            return cache[field_name]
        except KeyError:
            raise EvalError(
                f"constructor {ctor_name} has no field {field_name!r}"
            ) from None

    # -- node evaluators ---------------------------------------------------------

    def _eval_lit(self, expr: A.Lit, env):
        return expr.value

    def _eval_var(self, expr: A.Var, env):
        try:
            return env[expr.name]
        except KeyError:
            raise EvalError(f"unbound variable {expr.name}") from None

    def _eval_binop(self, expr: A.BinOp, env):
        op = expr.op
        if op == "and":
            return bool(self.eval(expr.left, env)) and bool(
                self.eval(expr.right, env)
            )
        if op == "or":
            return bool(self.eval(expr.left, env)) or bool(
                self.eval(expr.right, env)
            )
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "++":
            return left + right
        if op == "+":
            result = left + right
        elif op == "-":
            result = left - right
        elif op == "*":
            result = left * right
        elif op == "/":
            if isinstance(left, float):
                if right == 0.0:
                    raise EvalError("division by zero")
                result = left / right
            else:
                result = _int_div(left, right)
        elif op == "%":
            result = _int_mod(left, right)
        elif op == "&":
            result = left & right
        elif op == "|":
            result = left | right
        elif op == "^":
            result = left ^ right
        elif op == "<<":
            result = left << right
        elif op == ">>":
            result = left >> right
        else:  # pragma: no cover
            raise EvalError(f"unknown operator {op}")
        return self._coerce(result, self._result_type(expr))

    def _eval_unary(self, expr: A.UnaryOp, env):
        value = self.eval(expr.operand, env)
        if expr.op == "not":
            return not value
        if expr.op == "-":
            return self._coerce(-value, self._result_type(expr))
        if expr.op == "~":
            ty = self._result_type(expr)
            if isinstance(ty, T.TBit):
                return V.wrap_bit(~value, ty.width)
            if isinstance(ty, T.TSigned):
                return V.wrap_signed(~value, ty.width)
            return ~value
        raise EvalError(f"unknown unary operator {expr.op}")  # pragma: no cover

    def _eval_field(self, expr: A.Field, env):
        base = self.eval(expr.expr, env)
        if isinstance(base, tuple):
            idx = int(expr.name)
            if idx >= len(base):
                raise EvalError(f"tuple index {idx} out of range")
            return base[idx]
        if isinstance(base, V.StructValue):
            return base.fields[self._field_index(base.constructor, expr.name)]
        raise EvalError(f"cannot access field {expr.name!r} of {base!r}")

    def _eval_call(self, expr: A.Call, env):
        args = [self.eval(a, env) for a in expr.args]
        return self.call(expr.func, args)

    def _eval_tuple(self, expr: A.TupleExpr, env):
        return tuple(self.eval(e, env) for e in expr.elems)

    def _eval_vec(self, expr: A.VecExpr, env):
        return tuple(self.eval(e, env) for e in expr.elems)

    def _eval_struct(self, expr: A.StructExpr, env):
        return V.StructValue(
            expr.ctor, (self.eval(e, env) for _, e in expr.fields)
        )

    def _eval_if(self, expr: A.IfExpr, env):
        if self.eval(expr.cond, env):
            return self.eval(expr.then, env)
        return self.eval(expr.els, env)

    def _eval_match(self, expr: A.MatchExpr, env):
        subject = self.eval(expr.subject, env)
        for pat, arm in expr.arms:
            arm_env = dict(env)
            if self.match(pat, subject, arm_env, bind_always=True):
                return self.eval(arm, arm_env)
        raise EvalError(
            f"no match arm matched value {V.format_value(subject)}"
        )

    def _eval_cast(self, expr: A.Cast, env):
        value = self.eval(expr.expr, env)
        ty = expr.type
        if isinstance(ty, T.TBit):
            return V.wrap_bit(int(value), ty.width)
        if isinstance(ty, T.TSigned):
            return V.wrap_signed(int(value), ty.width)
        if isinstance(ty, T.TBigInt):
            return int(value)
        if isinstance(ty, T.TFloat):
            return float(value)
        raise EvalError(f"unsupported cast target {ty}")  # pragma: no cover

    _DISPATCH = {
        A.Lit: _eval_lit,
        A.Var: _eval_var,
        A.BinOp: _eval_binop,
        A.UnaryOp: _eval_unary,
        A.Field: _eval_field,
        A.Call: _eval_call,
        A.TupleExpr: _eval_tuple,
        A.VecExpr: _eval_vec,
        A.StructExpr: _eval_struct,
        A.IfExpr: _eval_if,
        A.MatchExpr: _eval_match,
        A.Cast: _eval_cast,
    }
