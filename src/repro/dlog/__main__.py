"""Interactive shell for the incremental engine.

Usage::

    python -m repro.dlog PROGRAM.dl

Commands::

    + Rel (v1, v2, ...)      insert a row (Python literal syntax)
    - Rel (v1, v2, ...)      delete a row
    dump [Rel]               show relation contents (all outputs if bare)
    explain                  show the compiled plan
    profile                  engine statistics
    help                     this text
    quit                     exit

Each ``+``/``-`` line is one transaction; the emitted output deltas are
printed immediately, which makes the engine's incrementality tangible:
only what *changed* is printed.
"""

from __future__ import annotations

import ast as pyast
import sys

from repro.dlog.engine import compile_program
from repro.errors import ReproError

USAGE = __doc__


def _parse_row(text: str):
    value = pyast.literal_eval(text.strip())
    if not isinstance(value, tuple):
        value = (value,)
    return value


def _print_deltas(result) -> None:
    if not result.deltas:
        print("  (no derived changes)")
        return
    for rel in sorted(result.deltas):
        for row, weight in sorted(
            result.deltas[rel].items(), key=lambda kv: repr(kv[0])
        ):
            sign = "+" if weight > 0 else "-"
            print(f"  {sign} {rel}{row}")
    for warning in result.warnings:
        print(f"  ! {warning}")


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print(USAGE)
        return 2
    try:
        with open(argv[0], encoding="utf-8") as f:
            source = f.read()
        program = compile_program(source, source=argv[0])
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    runtime = program.start()
    print(
        f"loaded {argv[0]}: inputs {', '.join(program.input_relations)}; "
        f"outputs {', '.join(program.output_relations)}"
    )
    if runtime.initial_result.deltas:
        print("initial facts:")
        _print_deltas(runtime.initial_result)

    while True:
        try:
            line = input("dlog> ").strip()
        except EOFError:
            print()
            return 0
        if not line:
            continue
        try:
            if line in ("quit", "exit"):
                return 0
            if line == "help":
                print(USAGE)
            elif line == "explain":
                print(program.explain())
            elif line == "profile":
                for key, value in runtime.profile().items():
                    print(f"  {key}: {value}")
            elif line == "dump":
                for rel in program.output_relations:
                    for row in sorted(runtime.dump(rel), key=repr):
                        print(f"  {rel}{row}")
            elif line.startswith("dump "):
                rel = line[5:].strip()
                for row in sorted(runtime.dump(rel), key=repr):
                    print(f"  {rel}{row}")
            elif line[0] in "+-":
                parts = line[1:].strip().split(None, 1)
                if len(parts) != 2:
                    print("usage: + Rel (v1, v2, ...)")
                    continue
                rel, row_text = parts
                row = _parse_row(row_text)
                if line[0] == "+":
                    result = runtime.transaction(inserts={rel: [row]})
                else:
                    result = runtime.transaction(deletes={rel: [row]})
                _print_deltas(result)
            else:
                print(f"unknown command {line!r}; try 'help'")
        except (ReproError, ValueError, SyntaxError, KeyError) as exc:
            print(f"error: {exc}")


if __name__ == "__main__":
    sys.exit(main())
