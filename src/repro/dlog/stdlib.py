"""Built-in functions of the control-plane language.

Each builtin supplies a *type rule* (``sig``: argument types in, result
type out, raising :class:`TypeCheckError` on misuse) and an *evaluator*
(``fn``: runtime values in, value out).  Several builtins are overloaded
on their first argument (e.g. ``len`` works on strings, vectors, and
maps), which is why signatures are functions rather than type lists.

Aggregate functions (``count``, ``sum``, ...) are *not* here — they are
group operators, not expressions, and live in :data:`AGGREGATES`.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Sequence

from repro.dlog import types as T
from repro.dlog import values as V
from repro.errors import EvalError, TypeCheckError


class Builtin:
    """A built-in function: a type rule plus an evaluator."""

    __slots__ = ("name", "sig", "fn")

    def __init__(
        self,
        name: str,
        sig: Callable[[List[T.Type]], T.Type],
        fn: Callable[..., object],
    ):
        self.name = name
        self.sig = sig
        self.fn = fn


def _fixed(params: Sequence[T.Type], result: T.Type):
    """Signature helper for monomorphic builtins."""

    def sig(args: List[T.Type]) -> T.Type:
        if len(args) != len(params):
            raise TypeCheckError(
                f"expected {len(params)} argument(s), got {len(args)}"
            )
        for i, (got, want) in enumerate(zip(args, params)):
            if got != want:
                raise TypeCheckError(
                    f"argument {i + 1}: expected {want}, got {got}"
                )
        return result

    return sig


def _arity(n: int):
    def check(args: List[T.Type]) -> None:
        if len(args) != n:
            raise TypeCheckError(f"expected {n} argument(s), got {len(args)}")

    return check


# -- individual signatures --------------------------------------------------


def _sig_len(args):
    _arity(1)(args)
    (a,) = args
    if isinstance(a, (T.TString, T.TVec, T.TMap)):
        return T.BIGINT
    raise TypeCheckError(f"len() expects string/Vec/Map, got {a}")


def _sig_to_string(args):
    _arity(1)(args)
    return T.STRING


def _sig_substr(args):
    _arity(3)(args)
    if not isinstance(args[0], T.TString):
        raise TypeCheckError("substr() expects a string")
    for a in args[1:]:
        if not T.is_integer(a):
            raise TypeCheckError("substr() indices must be integers")
    return T.STRING


def _sig_str_str_to_bool(name):
    def sig(args):
        _arity(2)(args)
        if not isinstance(args[0], T.TString) or not isinstance(args[1], T.TString):
            raise TypeCheckError(f"{name}() expects two strings")
        return T.BOOL

    return sig


def _sig_split(args):
    _arity(2)(args)
    if not isinstance(args[0], T.TString) or not isinstance(args[1], T.TString):
        raise TypeCheckError("string_split() expects two strings")
    return T.TVec(T.STRING)


def _sig_join(args):
    _arity(2)(args)
    if not isinstance(args[0], T.TVec) or not isinstance(args[0].elem, T.TString):
        raise TypeCheckError("string_join() expects Vec<string> and string")
    if not isinstance(args[1], T.TString):
        raise TypeCheckError("string_join() separator must be a string")
    return T.STRING


def _sig_case(args):
    _arity(1)(args)
    if not isinstance(args[0], T.TString):
        raise TypeCheckError("expects a string")
    return T.STRING


def _sig_parse_int(args):
    _arity(1)(args)
    if not isinstance(args[0], T.TString):
        raise TypeCheckError("parse_int() expects a string")
    return T.TUser("Option", [T.BIGINT])


def _sig_abs(args):
    _arity(1)(args)
    if not T.is_numeric(args[0]):
        raise TypeCheckError("abs() expects a number")
    return args[0]


def _sig_numeric2_same(name):
    def sig(args):
        _arity(2)(args)
        if args[0] != args[1] or not T.is_numeric(args[0]):
            raise TypeCheckError(f"{name}() expects two numbers of the same type")
        return args[0]

    return sig


def _sig_pow(args):
    _arity(2)(args)
    if not T.is_integer(args[0]) or not T.is_integer(args[1]):
        raise TypeCheckError("pow() expects integers")
    return args[0]


def _sig_hash(result):
    def sig(args):
        _arity(1)(args)
        return result

    return sig


def _sig_vec_push(args):
    _arity(2)(args)
    if not isinstance(args[0], T.TVec):
        raise TypeCheckError("vec_push() expects a Vec")
    if args[0].elem != args[1]:
        raise TypeCheckError(
            f"vec_push(): element type {args[1]} does not match {args[0]}"
        )
    return args[0]


def _sig_vec_contains(args):
    _arity(2)(args)
    if not isinstance(args[0], T.TVec) or args[0].elem != args[1]:
        raise TypeCheckError("vec_contains() expects (Vec<T>, T)")
    return T.BOOL


def _sig_vec_at(args):
    _arity(2)(args)
    if not isinstance(args[0], T.TVec) or not T.is_integer(args[1]):
        raise TypeCheckError("vec_at() expects (Vec<T>, integer)")
    return T.TUser("Option", [args[0].elem])


def _sig_vec_sort(args):
    _arity(1)(args)
    if not isinstance(args[0], T.TVec):
        raise TypeCheckError("vec_sort() expects a Vec")
    return args[0]


def _sig_vec_empty(args):
    _arity(1)(args)
    if not isinstance(args[0], (T.TVec, T.TMap, T.TString)):
        raise TypeCheckError("is_empty() expects string/Vec/Map")
    return T.BOOL


def _sig_map_get(args):
    _arity(2)(args)
    if not isinstance(args[0], T.TMap) or args[0].kty != args[1]:
        raise TypeCheckError("map_get() expects (Map<K,V>, K)")
    return T.TUser("Option", [args[0].vty])


def _sig_map_contains(args):
    _arity(2)(args)
    if not isinstance(args[0], T.TMap) or args[0].kty != args[1]:
        raise TypeCheckError("map_contains_key() expects (Map<K,V>, K)")
    return T.BOOL


def _sig_map_insert(args):
    _arity(3)(args)
    m = args[0]
    if not isinstance(m, T.TMap) or m.kty != args[1] or m.vty != args[2]:
        raise TypeCheckError("map_insert() expects (Map<K,V>, K, V)")
    return m


def _sig_map_remove(args):
    _arity(2)(args)
    if not isinstance(args[0], T.TMap) or args[0].kty != args[1]:
        raise TypeCheckError("map_remove() expects (Map<K,V>, K)")
    return args[0]


def _sig_map_keys(args):
    _arity(1)(args)
    if not isinstance(args[0], T.TMap):
        raise TypeCheckError("map_keys() expects a Map")
    return T.TVec(args[0].kty)


def _sig_map_values(args):
    _arity(1)(args)
    if not isinstance(args[0], T.TMap):
        raise TypeCheckError("map_values() expects a Map")
    return T.TVec(args[0].vty)


def _sig_option_pred(args):
    _arity(1)(args)
    a = args[0]
    if not (isinstance(a, T.TUser) and a.name == "Option"):
        raise TypeCheckError("expects an Option")
    return T.BOOL


def _sig_unwrap_or(args):
    _arity(2)(args)
    a = args[0]
    if not (isinstance(a, T.TUser) and a.name == "Option" and len(a.args) == 1):
        raise TypeCheckError("unwrap_or() expects an Option")
    if a.args[0] != args[1]:
        raise TypeCheckError(
            f"unwrap_or(): default type {args[1]} does not match {a}"
        )
    return a.args[0]


# -- evaluators ----------------------------------------------------------------


def _ev_len(x):
    return len(x)


def _ev_substr(s, start, end):
    return s[int(start) : int(end)]


def _ev_parse_int(s):
    try:
        return V.some(int(s, 0))
    except ValueError:
        return V.NONE


def _ev_vec_at(v, i):
    i = int(i)
    if 0 <= i < len(v):
        return V.some(v[i])
    return V.NONE


def _ev_vec_sort(v):
    try:
        return tuple(sorted(v))
    except TypeError as exc:  # mixed-type vec slipped past checks
        raise EvalError(f"vec_sort: unorderable elements: {exc}") from exc


def _ev_map_get(m, k):
    if k in m:
        return V.some(m[k])
    return V.NONE


def _ev_unwrap_or(opt, default):
    if V.is_some(opt):
        return opt.fields[0]
    return default


def _ev_hash64(x):
    # Stable across runs (unlike Python's salted hash()): FNV-1a over repr.
    data = repr(x).encode()
    acc = 0xCBF29CE484222325
    for b in data:
        acc ^= b
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


def _ev_hash32(x):
    return zlib.crc32(repr(x).encode()) & 0xFFFFFFFF


BUILTINS: Dict[str, Builtin] = {}


def _register(name, sig, fn):
    BUILTINS[name] = Builtin(name, sig, fn)


_register("len", _sig_len, _ev_len)
_register("is_empty", _sig_vec_empty, lambda x: len(x) == 0)
_register("to_string", _sig_to_string, V.format_value)
_register("substr", _sig_substr, _ev_substr)
_register(
    "string_contains",
    _sig_str_str_to_bool("string_contains"),
    lambda s, t: t in s,
)
_register(
    "starts_with", _sig_str_str_to_bool("starts_with"), lambda s, t: s.startswith(t)
)
_register(
    "ends_with", _sig_str_str_to_bool("ends_with"), lambda s, t: s.endswith(t)
)
_register("string_split", _sig_split, lambda s, sep: tuple(s.split(sep)))
_register("string_join", _sig_join, lambda v, sep: sep.join(v))
_register("to_lowercase", _sig_case, lambda s: s.lower())
_register("to_uppercase", _sig_case, lambda s: s.upper())
_register("parse_int", _sig_parse_int, _ev_parse_int)
_register("abs", _sig_abs, abs)
_register("min2", _sig_numeric2_same("min2"), min)
_register("max2", _sig_numeric2_same("max2"), max)
_register("pow32", _sig_pow, lambda b, e: pow(int(b), int(e)))
_register("hash32", _sig_hash(T.TBit(32)), _ev_hash32)
_register("hash64", _sig_hash(T.TBit(64)), _ev_hash64)
_register("vec_push", _sig_vec_push, lambda v, x: v + (x,))
_register("vec_contains", _sig_vec_contains, lambda v, x: x in v)
_register("vec_at", _sig_vec_at, _ev_vec_at)
_register("vec_sort", _sig_vec_sort, _ev_vec_sort)
_register("map_get", _sig_map_get, _ev_map_get)
_register("map_contains_key", _sig_map_contains, lambda m, k: k in m)
_register("map_insert", _sig_map_insert, lambda m, k, v: m.insert(k, v))
_register("map_remove", _sig_map_remove, lambda m, k: m.remove(k))
_register("map_keys", _sig_map_keys, lambda m: tuple(k for k, _ in m))
_register("map_values", _sig_map_values, lambda m: tuple(v for _, v in m))
_register("is_none", _sig_option_pred, V.is_none)
_register("is_some", _sig_option_pred, V.is_some)
_register("unwrap_or", _sig_unwrap_or, _ev_unwrap_or)


# -- aggregate functions -------------------------------------------------------


class Aggregate:
    """An aggregate: a type rule and a fold over a group's rows.

    ``fn`` receives a list of evaluated argument tuples (one per row in
    the group, respecting multiplicity) and returns the aggregate value.
    """

    __slots__ = ("name", "nargs", "sig", "fn")

    def __init__(self, name, nargs, sig, fn):
        self.name = name
        self.nargs = nargs
        self.sig = sig
        self.fn = fn


def _agg_sig_count(arg_types):
    if arg_types:
        raise TypeCheckError("count() takes no arguments")
    return T.BIGINT


def _agg_sig_same_numeric(name):
    def sig(arg_types):
        if len(arg_types) != 1 or not T.is_numeric(arg_types[0]):
            raise TypeCheckError(f"{name}() takes one numeric argument")
        return arg_types[0]

    return sig


def _agg_sig_ordered(name):
    def sig(arg_types):
        if len(arg_types) != 1:
            raise TypeCheckError(f"{name}() takes one argument")
        return arg_types[0]

    return sig


def _agg_sig_avg(arg_types):
    if len(arg_types) != 1 or not T.is_numeric(arg_types[0]):
        raise TypeCheckError("avg() takes one numeric argument")
    return T.FLOAT


def _agg_sig_vec(arg_types):
    if len(arg_types) != 1:
        raise TypeCheckError("group_to_vec() takes one argument")
    return T.TVec(arg_types[0])


def _agg_sig_map(arg_types):
    if len(arg_types) != 2:
        raise TypeCheckError("group_to_map() takes two arguments")
    return T.TMap(arg_types[0], arg_types[1])


def _agg_avg(rows):
    total = sum(r[0] for r in rows)
    return float(total) / len(rows)


AGGREGATES: Dict[str, Aggregate] = {
    "count": Aggregate("count", 0, _agg_sig_count, lambda rows: len(rows)),
    "sum": Aggregate(
        "sum", 1, _agg_sig_same_numeric("sum"), lambda rows: sum(r[0] for r in rows)
    ),
    "min": Aggregate(
        "min", 1, _agg_sig_ordered("min"), lambda rows: min(r[0] for r in rows)
    ),
    "max": Aggregate(
        "max", 1, _agg_sig_ordered("max"), lambda rows: max(r[0] for r in rows)
    ),
    "avg": Aggregate("avg", 1, _agg_sig_avg, _agg_avg),
    "group_to_vec": Aggregate(
        "group_to_vec",
        1,
        _agg_sig_vec,
        lambda rows: tuple(sorted((r[0] for r in rows), key=repr)),
    ),
    "group_to_set": Aggregate(
        "group_to_set",
        1,
        _agg_sig_vec,
        lambda rows: tuple(sorted(set(r[0] for r in rows), key=repr)),
    ),
    "group_to_map": Aggregate(
        "group_to_map",
        2,
        _agg_sig_map,
        lambda rows: V.MapValue((r[0], r[1]) for r in rows),
    ),
}
