"""repro.dlog.shard — partitioned evaluation across worker processes.

``ShardedRuntime`` runs N unmodified per-shard engines behind the
single-engine ``start/transaction/checkpoint`` API; ``analyze``
computes the :class:`ShardPlan` that decides which input relations
hash-partition and which broadcast.  See :mod:`repro.dlog.shard.analyze`
for the correctness argument.
"""

from repro.dlog.shard.analyze import (
    PARTITIONED,
    REPLICATED,
    SCATTERED,
    ShardPlan,
    analyze,
    shard_for,
)
from repro.dlog.shard.runtime import ShardedRuntime
from repro.dlog.shard.worker import ShardWorkerError

__all__ = [
    "PARTITIONED",
    "REPLICATED",
    "SCATTERED",
    "ShardPlan",
    "ShardWorkerError",
    "ShardedRuntime",
    "analyze",
    "shard_for",
]
