"""Shard workers: one unmodified :class:`~repro.dlog.engine.Runtime`
per shard, in-process or behind a pipe in a child process.

Both worker kinds expose the same split request/reply surface —
``submit(op, *args)`` then ``result()`` — so the facade can fan a
transaction out to every shard before collecting any reply (the process
workers then evaluate concurrently).  Operations mirror the Runtime
API: ``txn``, ``checkpoint``, ``dump``, ``profile``, ``state_size``.

Process workers re-compile the program in the child from its source
text rather than shipping the compiled object: the same path works for
``fork`` and ``spawn`` start methods, and compilation is deterministic,
so the child's graph is node-for-node identical (which per-shard
checkpoints rely on).  Transaction deltas cross the pipe as plain
``{relation: {row: weight}}`` dicts to keep the wire format independent
of engine internals.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Dict, Optional, Tuple

from repro.dlog.dataflow.zset import ZSet


class ShardWorkerError(RuntimeError):
    """A shard worker died or reported a failure."""


def _serialize_result(result) -> dict:
    return {
        "deltas": {rel: dict(z.data) for rel, z in result.deltas.items()},
        "warnings": list(result.warnings),
        "duration": result.duration,
    }


def deserialize_deltas(deltas: Dict[str, Dict[tuple, int]]) -> Dict[str, ZSet]:
    return {rel: ZSet(dict(rows)) for rel, rows in deltas.items()}


class InlineWorker:
    """A shard evaluated in the calling process (``shard_workers="inline"``).

    Used for tests and differential runs where determinism matters more
    than parallelism, and as the automatic fallback when the program has
    no source text (process workers cannot re-compile it).
    """

    kind = "inline"

    def __init__(
        self,
        program,
        shard_id: int,
        checkpoint: Optional[dict],
        bulk_load: bool = True,
    ):
        self.shard_id = shard_id
        self._runtime = program.start(checkpoint=checkpoint, bulk_load=bulk_load)
        self._pending = None
        self.ready = {
            "restored": self._runtime.restored,
            "result": _serialize_result(self._runtime.initial_result),
        }

    def submit(self, op: str, *args) -> None:
        assert self._pending is None, "worker already has a request in flight"
        self._pending = (op, args)

    def result(self):
        op, args = self._pending
        self._pending = None
        runtime = self._runtime
        if op == "txn":
            inserts, deletes = args
            return _serialize_result(
                runtime.transaction(inserts=inserts, deletes=deletes)
            )
        if op == "checkpoint":
            return runtime.checkpoint()
        if op == "dump":
            return runtime.dump(args[0])
        if op == "profile":
            return runtime.profile()
        if op == "state_size":
            return runtime.state_size()
        raise ShardWorkerError(f"unknown op {op!r}")

    def close(self) -> None:
        self._pending = None


def _worker_main(conn, source_text, recursive_mode, checkpoint, bulk_load=True) -> None:
    """Child-process entry: compile, start, then serve the pipe."""
    from repro.dlog.engine import compile_program

    try:
        runtime = compile_program(
            source_text, recursive_mode=recursive_mode
        ).start(checkpoint=checkpoint, bulk_load=bulk_load)
        conn.send(
            (
                "ready",
                {
                    "restored": runtime.restored,
                    "result": _serialize_result(runtime.initial_result),
                },
            )
        )
    except BaseException as exc:  # noqa: BLE001 — forwarded to parent
        _send_error(conn, exc)
        conn.close()
        return
    while True:
        try:
            op, args = conn.recv()
        except (EOFError, OSError):
            break
        if op == "stop":
            conn.send(("ok", None))
            break
        try:
            if op == "txn":
                inserts, deletes = args
                payload = _serialize_result(
                    runtime.transaction(inserts=inserts, deletes=deletes)
                )
            elif op == "checkpoint":
                payload = runtime.checkpoint()
            elif op == "dump":
                payload = runtime.dump(args[0])
            elif op == "profile":
                payload = runtime.profile()
            elif op == "state_size":
                payload = runtime.state_size()
            else:
                raise ShardWorkerError(f"unknown op {op!r}")
            conn.send(("ok", payload))
        except BaseException as exc:  # noqa: BLE001 — forwarded to parent
            _send_error(conn, exc)
    conn.close()


def _send_error(conn, exc: BaseException) -> None:
    try:
        pickle.dumps(exc)
        conn.send(("err", exc))
    except Exception:
        conn.send(
            ("err", ShardWorkerError(f"{type(exc).__name__}: {exc}"))
        )


def _context():
    """Prefer ``fork`` (no re-import tax) where it exists."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ProcessWorker:
    """A shard evaluated in a child process (``shard_workers="process"``)."""

    kind = "process"

    def __init__(
        self,
        program,
        shard_id: int,
        checkpoint: Optional[dict],
        bulk_load: bool = True,
    ):
        if program.source_text is None:
            raise ShardWorkerError(
                "process shard workers need program source text"
            )
        self.shard_id = shard_id
        ctx = _context()
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                program.source_text,
                program.recursive_mode,
                checkpoint,
                bulk_load,
            ),
            name=f"dlog-shard-{shard_id}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        self.ready = self._recv("ready")

    def _recv(self, expect: str):
        try:
            tag, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerError(
                f"shard {self.shard_id} worker died (pipe closed)"
            ) from exc
        if tag == "err":
            raise payload
        if tag != expect:
            raise ShardWorkerError(
                f"shard {self.shard_id}: expected {expect!r}, got {tag!r}"
            )
        return payload

    def submit(self, op: str, *args) -> None:
        try:
            self._conn.send((op, args))
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(
                f"shard {self.shard_id} worker died (send failed)"
            ) from exc

    def result(self):
        return self._recv("ok")

    def close(self) -> None:
        if self._proc.is_alive():
            try:
                self._conn.send(("stop", ()))
                self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._conn.close()
        self._proc.join(timeout=5)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5)


WORKER_KINDS = {"inline": InlineWorker, "process": ProcessWorker}


def make_worker(
    kind: str,
    program,
    shard_id: int,
    checkpoint: Optional[dict],
    bulk_load: bool = True,
) -> Tuple[str, object]:
    """Build one worker, degrading ``process`` to ``inline`` when the
    program cannot be shipped to a child (no source text)."""
    if kind == "process" and program.source_text is None:
        kind = "inline"
    try:
        cls = WORKER_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown shard_workers {kind!r}; expected one of "
            f"{sorted(WORKER_KINDS)}"
        ) from None
    return kind, cls(program, shard_id, checkpoint, bulk_load=bulk_load)
