"""`ShardedRuntime`: N per-shard engines behind the single-engine API.

The facade owns the three jobs that make shard count unobservable:

* **Routing** (the exchange step).  Input rows are validated and
  set-normalized here — mirroring :meth:`Runtime._normalize` exactly,
  warnings included — then partitioned rows go to their key's owner
  shard and replicated rows to every shard.  Because normalization
  happens before dispatch, per-shard engines never see a duplicate
  insert or an absent delete, so their own input states stay mutually
  consistent across transactions and checkpoints.

* **Merging** (global deduplication).  Each relation keeps a
  cross-shard reference count per row: how many shards currently derive
  it.  A shard delta moves the count; the facade emits +1 only on the
  0→1 transition and -1 only on the 1→0 transition.  This collapses the
  N identical copies of replicated relations into one logical row, and
  it is what makes DRed deletion correct across shards — a row deleted
  on one shard but still derived on another keeps a positive count and
  produces no global delta.

* **Checkpointing.**  ``checkpoint()`` nests one ordinary engine
  checkpoint per shard (each stamped with the program hash and keyed by
  shard id and shard count) plus the facade's own input state and
  reference counts.  Restore validates the whole bundle and falls back
  to a cold start on any mismatch, matching ``Runtime.restored``
  semantics so the controller's warm-start path works untouched.

Transactions only visit shards whose routed input set is non-empty; a
deterministic engine given no changes produces no deltas, so skipped
shards contribute nothing by construction.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro import obs
from repro.dlog.checkpoint import CHECKPOINT_FORMAT
from repro.dlog.dataflow.zset import ZSet
from repro.dlog.shard.analyze import PARTITIONED, ShardPlan, analyze
from repro.dlog.shard.worker import make_worker
from repro.errors import TransactionError


def _deletes_first(delta: ZSet) -> None:
    """Reorder a merged delta so -1 rows iterate before +1 rows.

    The single engine's deltas are well-formed streams: within one
    transaction every retraction precedes every insertion, and the
    device fan-out's two-slot coalescing cells rely on that (a delete
    observed after an insert for the same match key cancels it).  A
    cross-shard merge interleaves shard results in arrival order, so an
    old row retracted on one shard could trail its replacement from
    another; restore the contract before handing the delta out.
    """
    data = delta.data
    has_pos = has_neg = False
    for weight in data.values():
        if weight > 0:
            has_pos = True
        else:
            has_neg = True
        if has_pos and has_neg:
            break
    if not (has_pos and has_neg):
        return
    ordered = {row: w for row, w in data.items() if w < 0}
    ordered.update((row, w) for row, w in data.items() if w > 0)
    delta.data = ordered


class ShardedRuntime:
    """Drop-in for :class:`~repro.dlog.engine.Runtime` at any shard count."""

    def __init__(
        self,
        program,
        shards: int,
        workers: str = "process",
        checkpoint: Optional[dict] = None,
        plan: Optional[ShardPlan] = None,
        bulk_load: bool = True,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.program = program
        self.shards = shards
        self.bulk_load = bulk_load
        self._journal: Optional[List[dict]] = None
        self.plan = plan if plan is not None else analyze(program)
        self._input_state: Dict[str, Set[tuple]] = {
            name: set() for name in program.input_relations
        }
        # Cross-shard reference counts: relation -> row -> #shards
        # currently deriving/holding the row.  Only relations that can
        # be multiply derived need them; a relation the plan proves
        # partitioned has every row on exactly one shard, so its shard
        # deltas are disjoint and merge with bulk dict updates instead
        # of per-row count transitions (the facade's hot path).
        self._counts: Dict[str, Dict[tuple, int]] = {}
        self._disjoint = {
            rel
            for rel, (kind, _) in self.plan.statuses.items()
            if kind == PARTITIONED
        }
        self._validators = {
            name: _validator(program, name)
            for name in program.input_relations
        }
        self.txn_count = 0
        self.total_txn_time = 0.0
        self._obs_gen = -1
        self._metrics = None
        self._workers: List[object] = []
        self.worker_kind = workers

        shard_ckpts = self._extract_checkpoints(checkpoint)
        self.restored = shard_ckpts is not None
        if self.restored:
            self._start_workers(workers, shard_ckpts)
            if not all(w.ready["restored"] for w in self._workers):
                # Partial restore would leave shards inconsistent with
                # the facade's counts; abandon and start cold.
                self.close()
                self.restored = False
        if not self.restored:
            self._counts = {}
            for state in self._input_state.values():
                state.clear()
            self.txn_count = 0
            self.total_txn_time = 0.0
            self._start_workers(workers, [None] * shards)
        merged, warnings = self._merge(
            [w.ready["result"] for w in self._workers]
        )
        from repro.dlog.engine import TxnResult

        self.initial_result = TxnResult(
            {} if self.restored else merged,
            program.output_relations,
            warnings,
            0.0,
        )

    def _start_workers(self, kind: str, checkpoints: Sequence) -> None:
        self._workers = []
        for shard_id, ckpt in enumerate(checkpoints):
            used_kind, worker = make_worker(
                kind, self.program, shard_id, ckpt, bulk_load=self.bulk_load
            )
            self.worker_kind = used_kind
            self._workers.append(worker)

    # -- transactions ----------------------------------------------------------

    def enable_journal(self) -> None:
        """Record normalized facade-level input deltas per transaction
        (same format as :meth:`Runtime.enable_journal`); the journal
        captures the global rows, so replay through a facade of *any*
        shard count reproduces the same state."""
        if self._journal is None:
            self._journal = []

    def drain_journal(self) -> List[dict]:
        if self._journal is None:
            return []
        drained, self._journal = self._journal, []
        return drained

    def transaction(
        self,
        inserts: Optional[Mapping[str, Iterable[Sequence]]] = None,
        deletes: Optional[Mapping[str, Iterable[Sequence]]] = None,
        initial: bool = False,
    ):
        # ``initial`` is accepted for Runtime API parity; per-shard
        # engines detect the cold-load case from their own empty state.
        from repro.dlog.engine import TxnResult

        started = time.perf_counter()
        warnings: List[str] = []
        per_shard, routed, broadcast = self._route(
            inserts or {}, deletes or {}, warnings
        )
        t_routed = time.perf_counter()

        active = [
            (idx, changes)
            for idx, changes in enumerate(per_shard)
            if changes is not None
        ]
        for idx, changes in active:
            self._workers[idx].submit(
                "txn", changes["inserts"], changes["deletes"]
            )
        results = [self._workers[idx].result() for idx, _ in active]
        t_evaluated = time.perf_counter()

        merged, shard_warnings = self._merge(results)
        warnings.extend(shard_warnings)
        duration = time.perf_counter() - started
        self.txn_count += 1
        self.total_txn_time += duration
        if obs.enabled():
            self._observe(
                active,
                routed,
                broadcast,
                t_routed - started,
                t_evaluated - t_routed,
                duration - (t_evaluated - started),
            )
        return TxnResult(
            merged, self.program.output_relations, warnings, duration
        )

    def _route(self, inserts, deletes, warnings):
        """Normalize inputs and split them per shard.

        Returns ``(per_shard, routed, broadcast)`` where ``per_shard[i]``
        is ``None`` for untouched shards, and the two counters tally
        keyed rows sent to a single owner vs. rows sent everywhere.
        """
        for rel_name in set(inserts) | set(deletes):
            if rel_name not in self._input_state:
                raise TransactionError(f"{rel_name} is not an input relation")
        per_shard: List[Optional[dict]] = [None] * self.shards
        routed = broadcast = 0
        journal = self._journal
        entry: Optional[dict] = (
            {"inserts": {}, "deletes": {}} if journal is not None else None
        )

        def bucket(shard_id: int, key: str, rel: str) -> List[tuple]:
            changes = per_shard[shard_id]
            if changes is None:
                changes = per_shard[shard_id] = {
                    "inserts": {},
                    "deletes": {},
                }
            return changes[key].setdefault(rel, [])

        def dispatch(rel: str, row: tuple, key: str) -> int:
            owner = self.plan.route(rel, row, self.shards)
            if owner is None:
                for shard_id in range(self.shards):
                    bucket(shard_id, key, rel).append(row)
                return 0
            bucket(owner, key, rel).append(row)
            return 1

        # Deletes before inserts, duplicate/absent rows skipped with a
        # warning: byte-for-byte the single engine's normalization.
        for rel_name, rows in deletes.items():
            state = self._input_state[rel_name]
            validate = self._validators[rel_name]
            removed = set()
            for raw in rows:
                row = tuple(raw) if not isinstance(raw, tuple) else raw
                validate(row)
                if row not in state:
                    warnings.append(
                        f"{rel_name}: delete of absent row {row!r}"
                    )
                    continue
                state.discard(row)
                removed.add(row)
                if entry is not None:
                    entry["deletes"].setdefault(rel_name, []).append(row)
                keyed = dispatch(rel_name, row, "deletes")
                routed += keyed
                broadcast += (1 - keyed) * self.shards
        for rel_name, rows in inserts.items():
            state = self._input_state[rel_name]
            validate = self._validators[rel_name]
            added = set()
            for raw in rows:
                row = tuple(raw) if not isinstance(raw, tuple) else raw
                validate(row)
                if row in state or row in added:
                    warnings.append(
                        f"{rel_name}: duplicate insert {row!r}"
                    )
                    continue
                state.add(row)
                added.add(row)
                if entry is not None:
                    entry["inserts"].setdefault(rel_name, []).append(row)
                keyed = dispatch(rel_name, row, "inserts")
                routed += keyed
                broadcast += (1 - keyed) * self.shards
        if entry is not None and (entry["inserts"] or entry["deletes"]):
            journal.append(entry)
        return per_shard, routed, broadcast

    def _merge(self, results: Sequence[dict]):
        """Combine per-shard deltas into one global delta.

        Partitioned relations pass through disjointly (bulk update);
        everything else folds through the reference counts, emitting
        only global 0↔positive transitions."""
        merged: Dict[str, ZSet] = {}
        before: Dict[str, Dict[tuple, int]] = {}
        warnings: List[str] = []
        for result in results:
            warnings.extend(result["warnings"])
            for rel, rows in result["deltas"].items():
                if rel in self._disjoint:
                    existing = merged.get(rel)
                    if existing is None:
                        merged[rel] = ZSet(dict(rows))
                    else:
                        existing.data.update(rows)
                    continue
                counts = self._counts.setdefault(rel, {})
                first = before.setdefault(rel, {})
                for row, weight in rows.items():
                    first.setdefault(row, counts.get(row, 0))
                    new = counts.get(row, 0) + weight
                    if new:
                        counts[row] = new
                    else:
                        counts.pop(row, None)
        for rel, first in before.items():
            counts = self._counts.get(rel, {})
            delta = ZSet()
            for row, old in first.items():
                now = counts.get(row, 0)
                if old == 0 and now > 0:
                    delta.add(row, 1)
                elif old > 0 and now == 0:
                    delta.add(row, -1)
            if delta:
                merged[rel] = delta
        for delta in merged.values():
            _deletes_first(delta)
        return merged, warnings

    def _observe(
        self, active, routed, broadcast, t_route, t_eval, t_merge
    ) -> None:
        registry = obs.REGISTRY
        if self._metrics is None or self._obs_gen != registry.generation:
            self._obs_gen = registry.generation
            self._metrics = {
                "routed": registry.counter("shard_exchange_rows_total"),
                "broadcast": registry.counter("shard_broadcast_rows_total"),
                "txns": registry.counter("shard_txns_total"),
                "route_s": registry.histogram("shard_stage_route_seconds"),
                "eval_s": registry.histogram("shard_stage_eval_seconds"),
                "merge_s": registry.histogram("shard_stage_merge_seconds"),
                "depth": [
                    registry.gauge("shard_queue_depth", shard=str(i))
                    for i in range(self.shards)
                ],
            }
        m = self._metrics
        m["routed"].inc(routed)
        m["broadcast"].inc(broadcast)
        m["txns"].inc()
        m["route_s"].observe(t_route)
        m["eval_s"].observe(t_eval)
        m["merge_s"].observe(t_merge)
        pending = {
            idx: sum(
                len(rows)
                for key in ("inserts", "deletes")
                for rows in changes[key].values()
            )
            for idx, changes in active
        }
        for idx, gauge in enumerate(m["depth"]):
            gauge.set(pending.get(idx, 0))

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> dict:
        for worker in self._workers:
            worker.submit("checkpoint")
        shard_ckpts = [
            {
                "shard_id": shard_id,
                "shard_count": self.shards,
                "program_hash": self.program.program_hash,
                "engine": worker.result(),
            }
            for shard_id, worker in enumerate(self._workers)
        ]
        return {
            "format": CHECKPOINT_FORMAT,
            "sharded": True,
            "program_hash": self.program.program_hash,
            "shard_count": self.shards,
            "inputs": {
                name: set(rows) for name, rows in self._input_state.items()
            },
            "counts": {
                rel: dict(rows) for rel, rows in self._counts.items()
            },
            "shards": shard_ckpts,
            "txn_count": self.txn_count,
            "total_txn_time": self.total_txn_time,
        }

    def _extract_checkpoints(self, data) -> Optional[List[dict]]:
        """Validate a sharded checkpoint against this configuration;
        ``None`` (→ cold start) on any mismatch."""
        if not isinstance(data, dict) or not data.get("sharded"):
            return None
        if data.get("format") != CHECKPOINT_FORMAT:
            return None
        phash = self.program.program_hash
        if phash is None or data.get("program_hash") != phash:
            return None
        if data.get("shard_count") != self.shards:
            return None
        shard_ckpts = data.get("shards")
        if (
            not isinstance(shard_ckpts, list)
            or len(shard_ckpts) != self.shards
        ):
            return None
        engines = []
        for shard_id, entry in enumerate(shard_ckpts):
            if not isinstance(entry, dict):
                return None
            if (
                entry.get("shard_id") != shard_id
                or entry.get("shard_count") != self.shards
                or entry.get("program_hash") != phash
            ):
                return None
            engines.append(entry.get("engine"))
        inputs = data.get("inputs", {})
        if set(inputs) != set(self._input_state):
            return None
        for name, rows in inputs.items():
            self._input_state[name] = set(rows)
        self._counts = {
            rel: dict(rows)
            for rel, rows in data.get("counts", {}).items()
        }
        self.txn_count = data.get("txn_count", 0)
        self.total_txn_time = data.get("total_txn_time", 0.0)
        return engines

    # -- inspection ------------------------------------------------------------

    def dump(self, relation: str) -> Set[tuple]:
        """Current global contents of any relation."""
        if relation in self._input_state:
            return set(self._input_state[relation])
        if relation not in self.program.checked.relations:
            raise KeyError(f"unknown relation {relation!r}")
        for worker in self._workers:
            worker.submit("dump", relation)
        out: Set[tuple] = set()
        for worker in self._workers:
            out |= worker.result()
        return out

    def state_size(self) -> int:
        for worker in self._workers:
            worker.submit("state_size")
        return sum(worker.result() for worker in self._workers)

    def profile(self) -> Dict[str, object]:
        for worker in self._workers:
            worker.submit("profile")
        return {
            "transactions": self.txn_count,
            "total_txn_time": self.total_txn_time,
            "shards": self.shards,
            "workers": self.worker_kind,
            "plan": self.plan.explain(),
            "per_shard": [worker.result() for worker in self._workers],
        }

    def close(self) -> None:
        for worker in self._workers:
            worker.close()
        self._workers = []


def _validator(program, relation: str):
    from repro.dlog.engine import _row_validator

    return _row_validator(
        program.checked.relation(relation), program.checked.tenv
    )
