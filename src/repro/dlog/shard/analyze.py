"""Partition analysis: decide how each relation distributes over shards.

The sharded engine (:mod:`repro.dlog.shard.runtime`) runs N unmodified
per-shard :class:`~repro.dlog.engine.Runtime` instances, each evaluating
the *whole program* over a subset of the input rows.  The union of the
per-shard fixpoints equals the global fixpoint only if rows that must
meet inside an operator are guaranteed to be co-located.  This module
computes a :class:`ShardPlan` that makes that guarantee by static
analysis, assigning every relation one of three *distribution statuses*:

``partitioned(c)``
    Rows are hash-distributed by column ``c`` (the **partition key**):
    every row lives on exactly ``shard_for(row[c], n)``.  For input
    relations this is enforced by the router; for derived relations it
    is *proven*: every rule deriving the relation carries the partition
    variable from a partitioned body atom into head position ``c``.

``replicated``
    Every shard holds every row (the **broadcast fallback**).  Input
    relations are replicated when no consistent partition key exists for
    them; a derived relation is replicated when all of its rules read
    only replicated relations (each shard then derives the identical
    full contents, and the facade's cross-shard reference counts
    collapse the N copies into one logical row).

``scattered``
    Derived only: each row lives on at least one shard (wherever a rule
    instance derived it), but on no statically known one, and possibly
    on several.  Scattered relations may feed further rules only in
    positions where co-location is irrelevant (see below).

A rule is **shard-safe** when every ground instance of its body is fully
contained in at least one shard, and — when the rule involves negation
or aggregation — in *exactly* the shards that matter:

* all body atoms replicated → safe anywhere (derives replicated);
* exactly one non-replicated *positive* atom → safe: each of its rows
  meets the full replicated context on its own shard;
* several non-replicated atoms (including negated ones) → safe iff all
  of them are partitioned and their partition-key columns bind the
  *same variable* in this rule (the **link variable**): equal key ⇒
  equal hash ⇒ co-located.  This is the exchange-free equi-join case —
  the router already re-partitioned the inputs by the join key;
* a negated atom must be replicated or co-partitioned with the rule's
  link variable (absence must be decidable shard-locally);
* an ``Aggregate`` groups only rows the local shard holds, so the
  partition/link variable must be among the group-by keys (each group
  is then entirely on one shard).  A partitioned atom whose key column
  is bound to a literal pins the whole rule to one shard, which is also
  safe.

Recursion needs no special machinery: an SCC whose rules all stay
shard-safe under the members' computed statuses is *key-closed* (or
chain-local) and evaluates entirely inside each shard's own DRed
evaluator; otherwise the demotion loop below replicates the inputs
feeding it and every shard computes the full (identical) fixpoint.

The solver is optimistic with monotone demotion: seed partition-key
candidates by voting (join/negation/group-by positions), then re-solve;
any rule that cannot be made shard-safe demotes the input relations
feeding its offending atoms to replicated and the analysis restarts.
Each restart strictly grows the replicated set, so it terminates — in
the worst case with everything replicated, which is always correct
(shard count 1 semantics on every shard, deduplicated by the facade).
"""

from __future__ import annotations

import zlib
from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dlog import ast as A

PARTITIONED = "partitioned"
REPLICATED = "replicated"
SCATTERED = "scattered"

#: A distribution status: ``(kind, column)``; ``column`` is only
#: meaningful for ``partitioned``.
Status = Tuple[str, Optional[int]]

_REPL: Status = (REPLICATED, None)
_SCAT: Status = (SCATTERED, None)


def shard_for(value: object, shards: int) -> int:
    """Stable shard assignment for a partition-key value.

    Deliberately *not* Python's builtin ``hash``: string hashing is
    randomized per process, and the router's choices must survive a
    checkpoint/restore into a different process (a row's delete must
    route to the shard that holds its insert).  ``repr`` is
    deterministic for every runtime value type (ints, strings, floats,
    bools, tuples, ``StructValue``, ``MapValue``).
    """
    return zlib.crc32(repr(value).encode("utf-8")) % shards


class ShardPlan:
    """The analysis result: a status per relation plus diagnostics."""

    def __init__(
        self,
        statuses: Dict[str, Status],
        input_relations: Sequence[str],
        notes: Sequence[str] = (),
    ):
        self.statuses = statuses
        self.input_relations = list(input_relations)
        #: Human-readable demotion decisions (why a relation broadcasts).
        self.notes = list(notes)

    def status(self, relation: str) -> Status:
        return self.statuses.get(relation, _REPL)

    def partition_column(self, relation: str) -> Optional[int]:
        kind, col = self.status(relation)
        return col if kind == PARTITIONED else None

    def is_replicated(self, relation: str) -> bool:
        return self.status(relation)[0] == REPLICATED

    def partitioned_inputs(self) -> List[str]:
        return [
            rel
            for rel in self.input_relations
            if self.status(rel)[0] == PARTITIONED
        ]

    def route(self, relation: str, row: tuple, shards: int) -> Optional[int]:
        """Owner shard of an input row, or ``None`` for broadcast."""
        kind, col = self.status(relation)
        if kind != PARTITIONED:
            return None
        return shard_for(row[col], shards)

    def explain(self) -> str:
        lines = []
        for rel in sorted(self.statuses):
            kind, col = self.statuses[rel]
            role = "input" if rel in self.input_relations else "derived"
            if kind == PARTITIONED:
                lines.append(f"{rel} ({role}): partitioned by column {col}")
            else:
                lines.append(f"{rel} ({role}): {kind}")
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def analyze(program) -> ShardPlan:
    """Compute the :class:`ShardPlan` of a compiled program."""
    checked = program.checked
    rules = checked.ast.rules
    input_relations = [
        r.name for r in checked.ast.relations if r.role == "input"
    ]
    seed_cols = _vote_partition_columns(checked, input_relations)
    forced: Set[str] = set()
    notes: List[str] = []
    # Each failed solve demotes at least one more input to replicated,
    # so len(inputs) + 1 rounds always suffice.
    for _ in range(len(input_relations) + 1):
        outcome = _solve(program, seed_cols, forced)
        if isinstance(outcome, dict):
            return ShardPlan(outcome, input_relations, notes)
        demoted, why = outcome
        fresh = [rel for rel in demoted if rel not in forced]
        if not fresh:
            # Nothing left to demote yet the program still conflicts:
            # give up and broadcast everything (always correct).
            fresh = [r for r in input_relations if r not in forced]
            if not fresh:
                break
        forced.update(fresh)
        notes.append(f"replicating {', '.join(sorted(fresh))}: {why}")
    statuses = {rel: _REPL for rel in input_relations}
    for rel in {r.head.relation for r in rules}:
        statuses.setdefault(rel, _REPL)
    return ShardPlan(statuses, input_relations, notes)


# ---------------------------------------------------------------------------
# Seeding: pick a candidate partition column per input relation.
# ---------------------------------------------------------------------------


def _atom_items(rule: A.Rule) -> List[Tuple[A.Atom, bool]]:
    """The rule's atoms as ``(atom, is_positive)`` pairs, in body order."""
    out = []
    for item in rule.body:
        if isinstance(item, A.AtomItem):
            out.append((item.atom, True))
        elif isinstance(item, A.NegAtom):
            out.append((item.atom, False))
    return out


def _var_positions(atom: A.Atom) -> Dict[str, List[int]]:
    positions: Dict[str, List[int]] = {}
    for idx, arg in enumerate(atom.args):
        if isinstance(arg, A.PVar):
            positions.setdefault(arg.name, []).append(idx)
    return positions


def _vote_partition_columns(
    checked, input_relations: Sequence[str]
) -> Dict[str, int]:
    """Choose each input's candidate key: the column most often bound to
    a variable that links atoms (join/negation) or keys a group-by."""
    votes: Counter = Counter()
    for rule in checked.ast.rules:
        atoms = _atom_items(rule)
        occurrences: Dict[str, List[Tuple[str, int]]] = {}
        for atom, _ in atoms:
            for var, positions in _var_positions(atom).items():
                for pos in positions:
                    occurrences.setdefault(var, []).append(
                        (atom.relation, pos)
                    )
        group_vars: Set[str] = set()
        for item in rule.body:
            if isinstance(item, A.AggregateItem):
                group_vars.update(item.group_by)
        for var, occs in occurrences.items():
            linking = len(occs) > 1
            if linking or var in group_vars:
                for rel, pos in occs:
                    votes[(rel, pos)] += 2 if linking else 1
    columns: Dict[str, int] = {}
    decls = {r.name: r for r in checked.ast.relations}
    for rel in input_relations:
        arity = decls[rel].arity
        best, best_votes = 0, -1
        for col in range(arity):
            count = votes.get((rel, col), 0)
            if count > best_votes:
                best, best_votes = col, count
        columns[rel] = best
    return columns


# ---------------------------------------------------------------------------
# Solving: fixpoint over derived statuses, violations demand demotions.
# ---------------------------------------------------------------------------


class _Violation(Exception):
    def __init__(self, relations: Sequence[str], why: str):
        super().__init__(why)
        self.relations = list(relations)
        self.why = why


def _solve(program, seed_cols: Dict[str, int], forced: Set[str]):
    """One analysis round.  Returns the status map on success, or a
    ``(inputs_to_demote, reason)`` pair when a rule cannot be made
    shard-safe under the current input assignment."""
    checked = program.checked
    strat = program.stratification
    rules_by_head: Dict[str, List[A.Rule]] = {}
    for rule in checked.ast.rules:
        rules_by_head.setdefault(rule.head.relation, []).append(rule)
    feeds = _base_input_map(checked, rules_by_head)

    statuses: Dict[str, Status] = {}
    for rel in checked.ast.relations:
        if rel.role == "input":
            if rel.name in forced:
                statuses[rel.name] = _REPL
            else:
                statuses[rel.name] = (PARTITIONED, seed_cols[rel.name])

    try:
        for scc_idx, scc in enumerate(strat.order):
            members = [m for m in scc if m not in statuses]
            if not members:
                continue  # inputs (or already solved)
            if not strat.recursive[scc_idx]:
                rel = members[0]
                statuses[rel] = _combine(
                    [
                        _contribution(rule, statuses)
                        for rule in rules_by_head.get(rel, ())
                    ]
                )
                continue
            # Recursive SCC: start each member from its non-recursive
            # (base) rules — a member with none is empty until the
            # recursion feeds it, and replicated-of-nothing is sound as
            # a starting point — then iterate to a fixpoint.
            scc_set = set(scc)
            for member in members:
                base = [
                    _contribution(rule, statuses)
                    for rule in rules_by_head.get(member, ())
                    if not _mentions(rule, scc_set)
                ]
                statuses[member] = _combine(base) if base else _REPL
            for _ in range(8 * len(members) + 8):
                changed = False
                for member in members:
                    combined = _combine(
                        [
                            _contribution(rule, statuses)
                            for rule in rules_by_head.get(member, ())
                        ]
                    )
                    if combined != statuses[member]:
                        statuses[member] = combined
                        changed = True
                if not changed:
                    break
            else:
                raise _Violation(
                    list(scc),
                    f"recursive component {sorted(scc)} did not converge",
                )
    except _Violation as exc:
        demote: Set[str] = set()
        for rel in exc.relations:
            demote.update(feeds.get(rel, {rel} if rel in feeds else set()))
            if checked.relations.get(rel) is not None and rel in feeds:
                continue
            if rel in seed_cols:  # an input itself
                demote.add(rel)
        demote = {r for r in demote if r in seed_cols}
        return demote, exc.why
    return statuses


def _mentions(rule: A.Rule, relations: Set[str]) -> bool:
    return any(
        atom.relation in relations for atom, _ in _atom_items(rule)
    )


def _base_input_map(checked, rules_by_head) -> Dict[str, Set[str]]:
    """``relation -> input relations transitively feeding it``."""
    cache: Dict[str, Set[str]] = {}
    roles = {r.name: r.role for r in checked.ast.relations}

    def visit(rel: str, seen: Set[str]) -> Set[str]:
        if rel in cache:
            return cache[rel]
        if roles.get(rel) == "input":
            cache[rel] = {rel}
            return cache[rel]
        if rel in seen:
            return set()  # recursive back-edge; the root fills it in
        seen.add(rel)
        out: Set[str] = set()
        for rule in rules_by_head.get(rel, ()):
            for atom, _ in _atom_items(rule):
                out |= visit(atom.relation, seen)
        seen.discard(rel)
        cache[rel] = out
        return out

    for rel in roles:
        visit(rel, set())
    return cache


def _contribution(rule: A.Rule, statuses: Dict[str, Status]) -> Status:
    """Distribution status of the rows this one rule derives, or raise
    :class:`_Violation` when the rule is not shard-safe."""
    atoms = _atom_items(rule)
    non_repl = [
        (atom, positive)
        for atom, positive in atoms
        if statuses.get(atom.relation, _REPL)[0] != REPLICATED
    ]
    aggregates = [
        item for item in rule.body if isinstance(item, A.AggregateItem)
    ]

    if not non_repl:
        return _REPL

    link_var: Optional[str] = None
    pinned = False
    if len(non_repl) == 1:
        atom, positive = non_repl[0]
        kind, col = statuses.get(atom.relation, _REPL)
        if not positive:
            # ``not R`` over a partitioned/scattered R: absence on the
            # local shard proves nothing about the other shards.
            raise _Violation(
                [atom.relation],
                f"rule {rule.name}: negated {atom.relation} must be "
                "replicated (or co-partitioned with a positive atom)",
            )
        if kind == PARTITIONED:
            arg = atom.args[col]
            if isinstance(arg, A.PVar):
                link_var = arg.name
            elif isinstance(arg, A.PLit):
                pinned = True  # every matching row is on one shard
    else:
        names: Set[str] = set()
        for atom, _positive in non_repl:
            kind, col = statuses.get(atom.relation, _REPL)
            arg = atom.args[col] if kind == PARTITIONED else None
            if kind != PARTITIONED or not isinstance(arg, A.PVar):
                raise _Violation(
                    [a.relation for a, _ in non_repl],
                    f"rule {rule.name}: atoms "
                    f"{sorted({a.relation for a, _ in non_repl})} join "
                    "across shard boundaries without a shared key",
                )
            names.add(arg.name)
        if len(names) != 1:
            raise _Violation(
                [a.relation for a, _ in non_repl],
                f"rule {rule.name}: partition keys bind different "
                f"variables {sorted(names)} — rows are not co-located",
            )
        link_var = names.pop()

    if aggregates and not pinned:
        if link_var is None or not all(
            link_var in item.group_by for item in aggregates
        ):
            raise _Violation(
                [a.relation for a, _ in non_repl],
                f"rule {rule.name}: aggregate groups span shards "
                "(partition key is not a group-by key)",
            )

    if link_var is not None:
        for pos, arg in enumerate(rule.head.args):
            if isinstance(arg, A.PVar) and arg.name == link_var:
                return (PARTITIONED, pos)
    return _SCAT


def _combine(contributions: Sequence[Status]) -> Status:
    """Merge per-rule contributions into one relation status.

    Mixed contributions (one rule derives partitioned rows, another
    replicated or differently-partitioned ones) leave rows in places no
    single description covers — the relation degrades to scattered,
    whose downstream uses are restricted accordingly.
    """
    if not contributions:
        return _REPL
    first = contributions[0]
    if all(c == first for c in contributions):
        return first
    return _SCAT
