"""The control-plane type system.

The paper argues that a *shared, checked* type system across planes is a
key correctness lever ("all three parts are type-checked together").
This module defines the types themselves; rule typechecking lives in
:mod:`repro.dlog.typecheck`, and the cross-plane mapping in
:mod:`repro.core.typebridge`.

Types are immutable value objects; two structurally equal types compare
equal.  Named (user-defined) types are represented by :class:`TUser`
and resolved against a :class:`TypeEnv` that owns the typedefs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TypeCheckError


class Type:
    """Base class of all types; subclasses are value objects."""

    def key(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def __eq__(self, other):
        return type(self) is type(other) and self.key() == other.key()

    def __hash__(self):
        return hash((type(self).__name__, self.key()))

    def __repr__(self):
        return str(self)


class TBool(Type):
    def key(self):
        return ()

    def __str__(self):
        return "bool"


class TString(Type):
    def key(self):
        return ()

    def __str__(self):
        return "string"


class TBigInt(Type):
    def key(self):
        return ()

    def __str__(self):
        return "bigint"


class TFloat(Type):
    def key(self):
        return ()

    def __str__(self):
        return "float"


class TBit(Type):
    """Unsigned integer of a fixed width: ``bit<N>``."""

    def __init__(self, width: int):
        if width <= 0:
            raise TypeCheckError(f"bit width must be positive, got {width}")
        self.width = width

    def key(self):
        return (self.width,)

    def __str__(self):
        return f"bit<{self.width}>"


class TSigned(Type):
    """Two's-complement integer of a fixed width: ``signed<N>``."""

    def __init__(self, width: int):
        if width <= 0:
            raise TypeCheckError(f"signed width must be positive, got {width}")
        self.width = width

    def key(self):
        return (self.width,)

    def __str__(self):
        return f"signed<{self.width}>"


class TTuple(Type):
    def __init__(self, elems: Sequence[Type]):
        self.elems = tuple(elems)

    def key(self):
        return self.elems

    def __str__(self):
        return "(" + ", ".join(str(e) for e in self.elems) + ")"


class TVec(Type):
    def __init__(self, elem: Type):
        self.elem = elem

    def key(self):
        return (self.elem,)

    def __str__(self):
        return f"Vec<{self.elem}>"


class TMap(Type):
    def __init__(self, kty: Type, vty: Type):
        self.kty = kty
        self.vty = vty

    def key(self):
        return (self.kty, self.vty)

    def __str__(self):
        return f"Map<{self.kty}, {self.vty}>"


class TUser(Type):
    """A reference to a named typedef, e.g. ``Option<string>``.

    ``args`` instantiates the typedef's type parameters, if any.
    """

    def __init__(self, name: str, args: Sequence[Type] = ()):
        self.name = name
        self.args = tuple(args)

    def key(self):
        return (self.name, self.args)

    def __str__(self):
        if self.args:
            return f"{self.name}<{', '.join(str(a) for a in self.args)}>"
        return self.name


class TVar(Type):
    """A typedef's type parameter (only inside typedef bodies)."""

    def __init__(self, name: str):
        self.name = name

    def key(self):
        return (self.name,)

    def __str__(self):
        return f"'{self.name}"


BOOL = TBool()
STRING = TString()
BIGINT = TBigInt()
FLOAT = TFloat()


class Field:
    """A named, typed struct/constructor field."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: Type):
        self.name = name
        self.type = type

    def __eq__(self, other):
        return (
            isinstance(other, Field)
            and self.name == other.name
            and self.type == other.type
        )

    def __hash__(self):
        return hash((self.name, self.type))

    def __repr__(self):
        return f"{self.name}: {self.type}"


class Constructor:
    """One alternative of a union type (or the sole shape of a struct)."""

    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: Sequence[Field]):
        self.name = name
        self.fields = tuple(fields)

    def field_index(self, field_name: str) -> int:
        for i, f in enumerate(self.fields):
            if f.name == field_name:
                return i
        raise TypeCheckError(
            f"constructor {self.name} has no field {field_name!r}"
        )

    def __repr__(self):
        inner = ", ".join(repr(f) for f in self.fields)
        return f"{self.name}{{{inner}}}"


class TypeDef:
    """A named type: one constructor (struct) or several (tagged union)."""

    def __init__(self, name: str, params: Sequence[str], constructors: Sequence[Constructor]):
        self.name = name
        self.params = tuple(params)
        self.constructors = tuple(constructors)
        self._by_name = {c.name: c for c in self.constructors}
        if len(self._by_name) != len(self.constructors):
            raise TypeCheckError(f"duplicate constructor names in typedef {name}")

    @property
    def is_union(self) -> bool:
        return len(self.constructors) > 1

    def constructor(self, name: str) -> Constructor:
        try:
            return self._by_name[name]
        except KeyError:
            raise TypeCheckError(
                f"typedef {self.name} has no constructor {name!r}"
            ) from None


class TypeEnv:
    """Registry of typedefs; resolves :class:`TUser` references.

    Pre-populated with the built-in ``Option<T>`` union so every program
    gets ``Some{x}`` / ``None`` for free (mirroring DDlog's stdlib).
    """

    def __init__(self):
        self._defs: Dict[str, TypeDef] = {}
        self._ctor_owner: Dict[str, TypeDef] = {}
        self.define(
            TypeDef(
                "Option",
                ("A",),
                [
                    Constructor("Some", [Field("x", TVar("A"))]),
                    Constructor("None", []),
                ],
            )
        )

    def define(self, tdef: TypeDef) -> None:
        if tdef.name in self._defs:
            raise TypeCheckError(f"duplicate typedef {tdef.name}")
        for ctor in tdef.constructors:
            if ctor.name in self._ctor_owner:
                raise TypeCheckError(
                    f"constructor {ctor.name} already defined by typedef "
                    f"{self._ctor_owner[ctor.name].name}"
                )
        self._defs[tdef.name] = tdef
        for ctor in tdef.constructors:
            self._ctor_owner[ctor.name] = tdef

    def lookup(self, name: str) -> TypeDef:
        try:
            return self._defs[name]
        except KeyError:
            raise TypeCheckError(f"unknown type {name!r}") from None

    def owner_of_constructor(self, ctor_name: str) -> Optional[TypeDef]:
        return self._ctor_owner.get(ctor_name)

    def typedefs(self) -> List[TypeDef]:
        return list(self._defs.values())

    # -- resolution ----------------------------------------------------

    def resolve(self, ty: Type) -> Type:
        """Validate a type (all names known, arities right); return it."""
        if isinstance(ty, TUser):
            tdef = self.lookup(ty.name)
            if len(ty.args) != len(tdef.params):
                raise TypeCheckError(
                    f"type {ty.name} expects {len(tdef.params)} parameter(s), "
                    f"got {len(ty.args)}"
                )
            for a in ty.args:
                self.resolve(a)
            return ty
        if isinstance(ty, TTuple):
            for e in ty.elems:
                self.resolve(e)
            return ty
        if isinstance(ty, TVec):
            self.resolve(ty.elem)
            return ty
        if isinstance(ty, TMap):
            self.resolve(ty.kty)
            self.resolve(ty.vty)
            return ty
        return ty

    def instantiate(self, ty: TUser) -> List[Constructor]:
        """Return the constructors of ``ty`` with type params substituted."""
        tdef = self.lookup(ty.name)
        subst = dict(zip(tdef.params, ty.args))
        return [
            Constructor(
                c.name,
                [Field(f.name, substitute(f.type, subst)) for f in c.fields],
            )
            for c in tdef.constructors
        ]

    def constructor_signature(
        self, ctor_name: str, result_hint: Optional[Type] = None
    ) -> Tuple[TUser, Constructor]:
        """Find the typedef owning ``ctor_name``; return (result type, ctor).

        If the typedef is generic, ``result_hint`` (a ``TUser`` of that
        typedef) supplies the type arguments; otherwise the constructor's
        fields keep their :class:`TVar` parameters and the rule
        typechecker unifies them.
        """
        tdef = self.owner_of_constructor(ctor_name)
        if tdef is None:
            raise TypeCheckError(f"unknown constructor {ctor_name!r}")
        if (
            isinstance(result_hint, TUser)
            and result_hint.name == tdef.name
            and len(result_hint.args) == len(tdef.params)
        ):
            args: Tuple[Type, ...] = result_hint.args
        else:
            args = tuple(TVar(p) for p in tdef.params)
        result = TUser(tdef.name, args)
        subst = dict(zip(tdef.params, args))
        ctor = tdef.constructor(ctor_name)
        ctor = Constructor(
            ctor.name,
            [Field(f.name, substitute(f.type, subst)) for f in ctor.fields],
        )
        return result, ctor


def substitute(ty: Type, subst: Dict[str, Type]) -> Type:
    """Replace :class:`TVar` occurrences per ``subst``."""
    if isinstance(ty, TVar):
        return subst.get(ty.name, ty)
    if isinstance(ty, TTuple):
        return TTuple([substitute(e, subst) for e in ty.elems])
    if isinstance(ty, TVec):
        return TVec(substitute(ty.elem, subst))
    if isinstance(ty, TMap):
        return TMap(substitute(ty.kty, subst), substitute(ty.vty, subst))
    if isinstance(ty, TUser):
        return TUser(ty.name, [substitute(a, subst) for a in ty.args])
    return ty


def is_integer(ty: Type) -> bool:
    return isinstance(ty, (TBit, TSigned, TBigInt))


def is_numeric(ty: Type) -> bool:
    return is_integer(ty) or isinstance(ty, TFloat)
