"""Hand-written lexer for the control-plane language.

The token stream is a list of :class:`Token`; the parser indexes into
it.  Comments (``//`` and ``/* */``) and whitespace are skipped.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError

KEYWORDS = {
    "input",
    "output",
    "relation",
    "typedef",
    "function",
    "var",
    "not",
    "and",
    "or",
    "if",
    "else",
    "match",
    "as",
    "true",
    "false",
    "bit",
    "signed",
    "bigint",
    "bool",
    "string",
    "float",
}

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    ":-",
    "==",
    "!=",
    "<=",
    ">=",
    "<<",
    ">>",
    "->",
    "++",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ".",
    ":",
    ";",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "_",
    "#",
    "@",
]


class Token:
    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value, line: int, column: int):
        self.kind = kind  # 'ident' | 'keyword' | 'int' | 'float' | 'string' | 'op' | 'eof'
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r} @{self.line}:{self.column})"


class Lexer:
    def __init__(self, text: str, source: str = "<input>"):
        self.text = text
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> LexError:
        return LexError(message, self.source, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind == "eof":
                return out

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise self.error("unterminated block comment")
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.text):
            return Token("eof", None, line, column)
        ch = self._peek()

        if ch.isdigit():
            return self._lex_number(line, column)
        if ch.isalpha() or ch == "_" and (self._peek(1).isalnum() or self._peek(1) == "_"):
            return self._lex_word(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        for op in OPERATORS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, line, column)
        raise self.error(f"unexpected character {ch!r}")

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        word = self.text[start : self.pos]
        if word == "_":
            return Token("op", "_", line, column)
        kind = "keyword" if word in KEYWORDS else "ident"
        return Token(kind, word, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        text = self.text
        if text.startswith("0x", self.pos) or text.startswith("0X", self.pos):
            self._advance(2)
            while self.pos < len(text) and (self._peek() in "0123456789abcdefABCDEF_"):
                self._advance()
            raw = text[start : self.pos].replace("_", "")
            return Token("int", (int(raw, 16), None), line, column)
        if text.startswith("0b", self.pos) or text.startswith("0B", self.pos):
            self._advance(2)
            while self.pos < len(text) and self._peek() in "01_":
                self._advance()
            raw = text[start : self.pos].replace("_", "")
            return Token("int", (int(raw, 2), None), line, column)

        while self.pos < len(text) and (self._peek().isdigit() or self._peek() == "_"):
            self._advance()

        # Width-annotated literal: 32'd5, 8'hFF, 4'b1010.
        if self._peek() == "'":
            width = int(text[start : self.pos].replace("_", ""))
            self._advance()
            base_char = self._peek()
            bases = {"d": 10, "h": 16, "x": 16, "b": 2, "o": 8}
            if base_char not in bases:
                raise self.error(f"bad base character {base_char!r} in sized literal")
            self._advance()
            digits_start = self.pos
            while self.pos < len(text) and (self._peek().isalnum() or self._peek() == "_"):
                self._advance()
            raw = text[digits_start : self.pos].replace("_", "")
            if not raw:
                raise self.error("sized literal missing digits")
            try:
                value = int(raw, bases[base_char])
            except ValueError:
                raise self.error(f"bad digits {raw!r} for base {bases[base_char]}")
            return Token("int", (value, width), line, column)

        # Float?
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self.pos < len(text) and self._peek().isdigit():
                self._advance()
            if self._peek() in "eE":
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self.pos < len(text) and self._peek().isdigit():
                    self._advance()
            return Token("float", float(text[start : self.pos]), line, column)
        if self._peek() in "eE" and (
            self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self.pos < len(text) and self._peek().isdigit():
                self._advance()
            return Token("float", float(text[start : self.pos]), line, column)

        raw = text[start : self.pos].replace("_", "")
        return Token("int", (int(raw), None), line, column)

    _ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "0": "\0"}

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error("unterminated string literal")
            ch = self._peek()
            if ch == '"':
                self._advance()
                return Token("string", "".join(chars), line, column)
            if ch == "\\":
                self._advance()
                esc = self._peek()
                if esc not in self._ESCAPES:
                    raise self.error(f"bad escape \\{esc}")
                chars.append(self._ESCAPES[esc])
                self._advance()
            else:
                chars.append(ch)
                self._advance()


def tokenize(text: str, source: str = "<input>") -> List[Token]:
    """Tokenize ``text``; the last token is always ``eof``."""
    return Lexer(text, source).tokens()
