"""Incremental dataflow operators.

Every operator consumes per-port input deltas (Z-sets) and emits an
output delta.  Stateless operators (map, filter, flatmap, union) are
linear: they apply to the delta directly.  Stateful operators maintain
arrangements and implement the standard incremental update rules:

* **join**:      ``δ(L ⋈ R) = δL ⋈ R' + L ⋈ δR``  (R' is R after δR)
* **antijoin**:  recomputed exactly per affected key from pre/post state
* **distinct**:  emits ±1 on support transitions of the running count
* **aggregate**: re-aggregates only groups whose key appears in the delta

The update rules are the entire point of the system: a transaction that
touches *k* records costs time proportional to *k* (times the matching
group sizes), never to the size of the relations.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.dlog.dataflow.arrangement import Arrangement
from repro.dlog.dataflow.zset import ZSet


class Node:
    """Base dataflow node: ``n_ports`` inputs, one output delta.

    Nodes with ``multi_output = True`` (the recursive-SCC evaluator)
    return a ``dict`` of named deltas from :meth:`process`; their
    downstream edges select one via ``out_key``.
    """

    n_ports = 1
    multi_output = False

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self.downstream: List[Tuple["Node", int, Optional[str]]] = []

    def connect_to(self, child: "Node", port: int = 0, out_key: Optional[str] = None) -> None:
        if not 0 <= port < child.n_ports:
            raise ValueError(f"{child.name} has no port {port}")
        if (out_key is not None) != self.multi_output:
            raise ValueError(
                f"{self.name}: out_key must be given exactly for multi-output nodes"
            )
        self.downstream.append((child, port, out_key))

    def process(self, deltas: List[Optional[ZSet]]) -> ZSet:
        raise NotImplementedError  # pragma: no cover

    def process_bulk(self, deltas: List[Optional[ZSet]]) -> Optional[ZSet]:
        """Batch-process a bulk load; ``None`` means "no bulk path".

        Called by ``Graph.run(bulk=True)`` before :meth:`process`.  A
        node may take the bulk path only when the result is identical to
        what the incremental path would produce — stateful nodes accept
        it only from empty state (the cold-start / restore case), and
        the recursive SCC evaluator never does.  Returning ``None``
        falls the node back to the incremental path, so bulk and
        per-delta processing interleave freely within one transaction.
        """
        return None

    def state_size(self) -> int:
        """Number of records held in this node's state (0 if stateless)."""
        return 0

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"


def _port(deltas: List[Optional[ZSet]], i: int) -> ZSet:
    d = deltas[i] if i < len(deltas) else None
    return d if d is not None else ZSet()


class SourceNode(Node):
    """Entry point: the engine injects a relation's input delta here."""

    def process(self, deltas):
        return _port(deltas, 0)

    process_bulk = process


class MapNode(Node):
    """Apply ``fn`` to every record; weights pass through (linear).

    The planner may attach ``fast_fn`` — a compiled positional selector
    (``operator.itemgetter``-based) proven equivalent to ``fn`` — which
    the bulk path uses to skip the generic expression interpreter.
    """

    fast_fn: Optional[Callable[[object], object]] = None

    def __init__(self, fn: Callable[[object], object], name: str = ""):
        super().__init__(name)
        self.fn = fn

    def process(self, deltas):
        out = ZSet()
        fn = self.fn
        for record, weight in _port(deltas, 0).items():
            out.add(fn(record), weight)
        return out

    def process_bulk(self, deltas):
        data = _port(deltas, 0).data
        fn = self.fast_fn or self.fn
        if all(w == 1 for w in data.values()):
            # Common cold-start shape: a unit-weight batch.  Build the
            # output in one comprehension; a length mismatch reveals a
            # collision (fn not injective on this batch) and we redo it
            # with full weight accumulation.
            out = {fn(record): 1 for record in data}
            if len(out) == len(data):
                return ZSet(out)
        out = {}
        get = out.get
        for record, weight in data.items():
            produced = fn(record)
            new = get(produced, 0) + weight
            if new:
                out[produced] = new
            else:
                del out[produced]
        return ZSet(out)


class FilterNode(Node):
    """Keep records satisfying ``pred`` (linear)."""

    def __init__(self, pred: Callable[[object], bool], name: str = ""):
        super().__init__(name)
        self.pred = pred

    def process(self, deltas):
        out = ZSet()
        pred = self.pred
        for record, weight in _port(deltas, 0).items():
            if pred(record):
                out.add(record, weight)
        return out

    def process_bulk(self, deltas):
        pred = self.pred
        return ZSet({r: w for r, w in _port(deltas, 0).data.items() if pred(r)})


class FlatMapNode(Node):
    """Expand each record into zero or more records (linear).

    ``bulk_identity`` is set by the planner when ``fn`` provably maps
    every record to ``[record]`` (a scan over all-distinct variables):
    the bulk path then forwards the input delta unchanged.  That is safe
    because ``Graph.run`` treats emitted deltas as immutable (borrowed
    slots are copied before any merge).  ``bulk_map`` is the
    one-record-per-record analogue: a compiled projection proven
    equivalent to ``fn`` returning exactly one record.
    """

    bulk_identity = False
    bulk_map: Optional[Callable[[object], object]] = None

    def __init__(self, fn: Callable[[object], Iterable[object]], name: str = ""):
        super().__init__(name)
        self.fn = fn

    def process(self, deltas):
        out = ZSet()
        fn = self.fn
        for record, weight in _port(deltas, 0).items():
            for produced in fn(record):
                out.add(produced, weight)
        return out

    def process_bulk(self, deltas):
        delta = _port(deltas, 0)
        if self.bulk_identity:
            return delta
        out: Dict[object, int] = {}
        get = out.get
        project = self.bulk_map
        if project is not None:
            data = delta.data
            if all(w == 1 for w in data.values()):
                out = {project(record): 1 for record in data}
                if len(out) == len(data):
                    return ZSet(out)
                out = {}
                get = out.get
            for record, weight in data.items():
                produced = project(record)
                new = get(produced, 0) + weight
                if new:
                    out[produced] = new
                else:
                    del out[produced]
            return ZSet(out)
        fn = self.fn
        for record, weight in delta.data.items():
            for produced in fn(record):
                new = get(produced, 0) + weight
                if new:
                    out[produced] = new
                else:
                    del out[produced]
        return ZSet(out)


class UnionNode(Node):
    """Sum of all input ports (linear)."""

    def __init__(self, n_ports: int, name: str = ""):
        super().__init__(name)
        self.n_ports = n_ports

    def process(self, deltas):
        out = ZSet()
        for i in range(self.n_ports):
            out.merge(_port(deltas, i))
        return out

    def process_bulk(self, deltas):
        live = [d for d in deltas if d]
        if len(live) == 1:
            return live[0]  # borrowed; Graph.run copies before merging
        out = ZSet()
        for d in live:
            out.merge(d)
        return out


class DistinctNode(Node):
    """Set semantics over a multiset stream.

    Accepts several ports (summed) so a derived relation can union all
    of its rules here.  Maintains the total derivation count of each
    record and emits +1/-1 only when a record's support appears or
    disappears — exactly the "counting" algorithm for non-recursive
    incremental view maintenance.
    """

    def __init__(self, n_ports: int = 1, name: str = ""):
        super().__init__(name)
        self.n_ports = n_ports
        self.counts = ZSet()

    def process(self, deltas):
        combined = ZSet()
        for i in range(self.n_ports):
            combined.merge(_port(deltas, i))
        out = ZSet()
        # Inlined count maintenance: one dict walk per batched delta
        # instead of per-record weight()/add() call pairs.
        counts = self.counts.data
        get = counts.get
        out_add = out.add
        for record, weight in combined.data.items():
            old = get(record, 0)
            new = old + weight
            if new == 0:
                del counts[record]
            else:
                counts[record] = new
            if new > 0:
                if old <= 0:
                    out_add(record, 1)
            elif old > 0:
                out_add(record, -1)
        return out

    def process_bulk(self, deltas):
        if self.counts:
            return None  # existing support counts: incremental path
        live = [d for d in deltas if d]
        if not live:
            return ZSet()
        if len(live) == 1:
            combined = dict(live[0].data)
        else:
            combined = {}
            get = combined.get
            for d in live:
                for record, weight in d.data.items():
                    new = get(record, 0) + weight
                    if new:
                        combined[record] = new
                    else:
                        del combined[record]
        self.counts.data = combined
        return ZSet({r: 1 for r, w in combined.items() if w > 0})

    def state_size(self) -> int:
        return len(self.counts)

    def positive_records(self):
        return (r for r, w in self.counts.items() if w > 0)


class JoinNode(Node):
    """Binary equi-join with arranged inputs.

    ``merge(left_record, right_record)`` builds the output record and
    may return ``None`` to drop the pair (used for residual pattern
    constraints that are not part of the equality key).

    ``fast_merge``, when attached by the planner, is a compiled
    positional concatenation (never ``None``-returning, proven
    equivalent to ``merge``) that the bulk path uses to bypass the
    generic pattern-match interpreter.
    """

    n_ports = 2
    fast_merge: Optional[Callable[[object, object], object]] = None

    def __init__(
        self,
        left_key: Callable[[object], object],
        right_key: Callable[[object], object],
        merge: Callable[[object, object], Optional[object]],
        name: str = "",
    ):
        super().__init__(name)
        self.left_key = left_key
        self.right_key = right_key
        self.merge = merge
        self.left = Arrangement()
        self.right = Arrangement()

    def process(self, deltas):
        dl, dr = _port(deltas, 0), _port(deltas, 1)
        out = ZSet()
        merge = self.merge
        # δL ⋈ R_post  +  L_pre ⋈ δR  — update right first, left last.
        self.right.update(dr, self.right_key)
        if dl:
            # Group the delta by key first so each key's matching group
            # is fetched once per batch, not once per record.
            lk = self.left_key
            rdata = self.right.data
            grouped: Dict[object, List[Tuple[object, int]]] = {}
            for lrec, lw in dl.data.items():
                key = lk(lrec)
                bucket = grouped.get(key)
                if bucket is None:
                    grouped[key] = [(lrec, lw)]
                else:
                    bucket.append((lrec, lw))
            for key, bucket in grouped.items():
                rgroup = rdata.get(key)
                if not rgroup:
                    continue
                for lrec, lw in bucket:
                    for rrec, rw in rgroup.items():
                        merged = merge(lrec, rrec)
                        if merged is not None:
                            out.add(merged, lw * rw)
        if dr:
            rk = self.right_key
            ldata = self.left.data
            grouped = {}
            for rrec, rw in dr.data.items():
                key = rk(rrec)
                bucket = grouped.get(key)
                if bucket is None:
                    grouped[key] = [(rrec, rw)]
                else:
                    bucket.append((rrec, rw))
            for key, bucket in grouped.items():
                lgroup = ldata.get(key)
                if not lgroup:
                    continue
                for rrec, rw in bucket:
                    for lrec, lw in lgroup.items():
                        merged = merge(lrec, rrec)
                        if merged is not None:
                            out.add(merged, lw * rw)
        self.left.update(dl, self.left_key)
        return out

    def process_bulk(self, deltas):
        if self.left.data or self.right.data:
            return None  # existing arranged state: incremental path
        dl, dr = _port(deltas, 0), _port(deltas, 1)
        self.left.build(dl, self.left_key)
        self.right.build(dr, self.right_key)
        ldata, rdata = self.left.data, self.right.data
        if not ldata or not rdata:
            return ZSet()
        # From empty state the join is bilinear: out = δL ⋈ δR.  Probe
        # the smaller key set against the larger.
        merge = self.fast_merge or self.merge
        out: Dict[object, int] = {}
        get = out.get
        if len(ldata) <= len(rdata):
            small, big, small_is_left = ldata, rdata, True
        else:
            small, big, small_is_left = rdata, ldata, False
        for key, sgroup in small.items():
            bgroup = big.get(key)
            if bgroup is None:
                continue
            lgroup, rgroup = (sgroup, bgroup) if small_is_left else (bgroup, sgroup)
            for lrec, lw in lgroup.items():
                for rrec, rw in rgroup.items():
                    merged = merge(lrec, rrec)
                    if merged is None:
                        continue
                    new = get(merged, 0) + lw * rw
                    if new:
                        out[merged] = new
                    else:
                        del out[merged]
        return ZSet(out)

    def state_size(self) -> int:
        return self.left.total_records() + self.right.total_records()


class AntiJoinNode(Node):
    """Left records whose key has no support on the right.

    Port 0 carries left records; port 1 carries *keys* (the planner
    projects the negated relation down to the join key first).  The
    output delta is computed exactly as the difference between the
    post- and pre-state of each affected key, which handles same-
    transaction changes to both sides.
    """

    n_ports = 2

    def __init__(self, left_key: Callable[[object], object], name: str = ""):
        super().__init__(name)
        self.left_key = left_key
        self.left = Arrangement()
        self.right_counts: Dict[object, int] = {}

    def _right_present(self, key) -> bool:
        return self.right_counts.get(key, 0) > 0

    def process(self, deltas):
        dl, dr = _port(deltas, 0), _port(deltas, 1)
        lk = self.left_key

        affected = set()
        for rec, _ in dl.items():
            affected.add(lk(rec))
        for key, _ in dr.items():
            affected.add(key)

        pre: Dict[object, Tuple[Dict[object, int], bool]] = {}
        for key in affected:
            pre[key] = (dict(self.left.group(key)), self._right_present(key))

        # Apply updates.
        self.left.update(dl, lk)
        counts = self.right_counts
        for key, weight in dr.items():
            new = counts.get(key, 0) + weight
            if new == 0:
                counts.pop(key, None)
            else:
                counts[key] = new

        out = ZSet()
        for key in affected:
            pre_group, pre_present = pre[key]
            post_group = self.left.group(key)
            post_present = self._right_present(key)
            if not post_present:
                for rec, w in post_group.items():
                    out.add(rec, w)
            if not pre_present:
                for rec, w in pre_group.items():
                    out.add(rec, -w)
        return out

    def process_bulk(self, deltas):
        if self.left.data or self.right_counts:
            return None  # existing state: incremental path
        dl, dr = _port(deltas, 0), _port(deltas, 1)
        self.left.build(dl, self.left_key)
        counts = self.right_counts
        counts.update(dr.data)
        # From empty pre-state the output is exactly the left groups
        # whose key has no positive right support.  Records are unique
        # across groups (one key per record), so plain dict updates
        # suffice.
        out: Dict[object, int] = {}
        get = counts.get
        for key, group in self.left.data.items():
            if get(key, 0) > 0:
                continue
            out.update(group)
        return ZSet(out)

    def state_size(self) -> int:
        return self.left.total_records() + len(self.right_counts)


class AggregateNode(Node):
    """Group-by aggregation, incrementally maintained per group.

    ``key_fn(record)`` extracts the group key (a tuple of group-by
    variable values); ``args_fn(record)`` evaluates the aggregate's
    argument expressions.  On each delta, only the groups whose key
    occurs in the delta are re-aggregated; the old aggregate row is
    retracted and the new one inserted.
    """

    def __init__(
        self,
        key_fn: Callable[[object], tuple],
        args_fn: Callable[[object], tuple],
        fold: Callable[[List[tuple]], object],
        name: str = "",
    ):
        super().__init__(name)
        self.key_fn = key_fn
        self.args_fn = args_fn
        self.fold = fold
        self.groups = Arrangement()  # key -> {args_tuple -> count}

    def _aggregate(self, group: Dict[object, int]) -> Optional[object]:
        if not group:
            return None
        rows: List[tuple] = []
        for args, count in group.items():
            if count < 0:
                raise ValueError(
                    f"{self.name}: negative multiplicity in aggregate group"
                )
            rows.extend([args] * count)
        if not rows:
            return None
        return self.fold(rows)

    def process(self, deltas):
        delta = _port(deltas, 0)
        key_fn, args_fn = self.key_fn, self.args_fn
        pre: Dict[object, Optional[object]] = {}
        keyed: List[Tuple[object, object, int]] = []
        for record, weight in delta.items():
            key = key_fn(record)
            if key not in pre:
                pre[key] = self._aggregate(self.groups.group(key))
            keyed.append((key, args_fn(record), weight))
        for key, args, weight in keyed:
            self.groups.add(key, args, weight)
        out = ZSet()
        for key, old_value in pre.items():
            new_value = self._aggregate(self.groups.group(key))
            if old_value == new_value:
                continue
            if old_value is not None:
                out.add(key + (old_value,), -1)
            if new_value is not None:
                out.add(key + (new_value,), 1)
        return out

    def process_bulk(self, deltas):
        if self.groups.data:
            return None  # existing groups: incremental path
        delta = _port(deltas, 0)
        key_fn, args_fn = self.key_fn, self.args_fn
        data: Dict[object, Dict[object, int]] = {}
        for record, weight in delta.data.items():
            key = key_fn(record)
            args = args_fn(record)
            group = data.get(key)
            if group is None:
                data[key] = {args: weight}
            else:
                new = group.get(args, 0) + weight
                if new:
                    group[args] = new
                else:
                    del group[args]
        if any(not g for g in data.values()):
            data = {k: g for k, g in data.items() if g}
        self.groups.data = data
        self.groups.records = sum(len(g) for g in data.values())
        out = ZSet()
        aggregate = self._aggregate
        for key, group in data.items():
            value = aggregate(group)
            if value is not None:
                out.add(key + (value,), 1)
        return out

    def state_size(self) -> int:
        return self.groups.total_records()
