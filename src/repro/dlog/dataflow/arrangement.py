"""Arrangements: key-indexed operator state.

An arrangement is a Z-set organized as ``key -> {record -> weight}``.
Stateful operators keep their inputs arranged by join key so that a
delta on one side only touches the matching keys of the other —
the core mechanism that makes join/antijoin/aggregate incremental.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.dlog.dataflow.zset import ZSet

_EMPTY: Dict[object, int] = {}


class Arrangement:
    """``key -> {record -> weight}`` with eager zero-entry removal.

    A running record count is maintained alongside the index so
    :meth:`total_records` (hit by ``Runtime.state_size`` and the obs
    gauges on every scrape) is O(1) instead of O(all keys).
    """

    __slots__ = ("data", "records")

    def __init__(self):
        self.data: Dict[object, Dict[object, int]] = {}
        self.records: int = 0

    def add(self, key, record, weight: int) -> None:
        if weight == 0:
            return
        group = self.data.get(key)
        if group is None:
            group = {}
            self.data[key] = group
        new = group.get(record, 0) + weight
        if new == 0:
            del group[record]
            self.records -= 1
            if not group:
                del self.data[key]
        else:
            if record not in group:
                self.records += 1
            group[record] = new

    def update(self, delta: ZSet, key_fn) -> None:
        """Apply a keyed delta: each record is indexed under ``key_fn(record)``."""
        add = self.add
        for record, weight in delta.data.items():
            add(key_fn(record), record, weight)

    def build(self, delta: ZSet, key_fn) -> None:
        """Bulk-build from a delta in one grouped pass.

        Only valid when ``self`` is empty and the delta is free of zero
        weights (the ZSet invariant): groups are formed with plain dict
        writes, skipping the per-record transition bookkeeping of
        :meth:`add`.  Negative weights are fine — they are stored as-is,
        matching what repeated ``add`` calls would leave behind.
        """
        if self.data:
            self.update(delta, key_fn)
            return
        data = self.data
        for record, weight in delta.data.items():
            key = key_fn(record)
            group = data.get(key)
            if group is None:
                data[key] = {record: weight}
            else:
                group[record] = weight
        self.records = len(delta.data)

    def group(self, key) -> Dict[object, int]:
        """The records under ``key`` (empty mapping if none). Do not mutate."""
        return self.data.get(key, _EMPTY)

    def has_key(self, key) -> bool:
        return key in self.data

    def keys(self) -> Iterator[object]:
        return iter(self.data.keys())

    def items(self) -> Iterator[Tuple[object, Dict[object, int]]]:
        return iter(self.data.items())

    def total_records(self) -> int:
        return self.records

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Arrangement({len(self.data)} keys, {self.total_records()} records)"
