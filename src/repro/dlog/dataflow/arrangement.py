"""Arrangements: key-indexed operator state.

An arrangement is a Z-set organized as ``key -> {record -> weight}``.
Stateful operators keep their inputs arranged by join key so that a
delta on one side only touches the matching keys of the other —
the core mechanism that makes join/antijoin/aggregate incremental.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.dlog.dataflow.zset import ZSet

_EMPTY: Dict[object, int] = {}


class Arrangement:
    """``key -> {record -> weight}`` with eager zero-entry removal."""

    __slots__ = ("data",)

    def __init__(self):
        self.data: Dict[object, Dict[object, int]] = {}

    def add(self, key, record, weight: int) -> None:
        if weight == 0:
            return
        group = self.data.get(key)
        if group is None:
            group = {}
            self.data[key] = group
        new = group.get(record, 0) + weight
        if new == 0:
            del group[record]
            if not group:
                del self.data[key]
        else:
            group[record] = new

    def update(self, delta: ZSet, key_fn) -> None:
        """Apply a keyed delta: each record is indexed under ``key_fn(record)``."""
        for record, weight in delta.items():
            self.add(key_fn(record), record, weight)

    def group(self, key) -> Dict[object, int]:
        """The records under ``key`` (empty mapping if none). Do not mutate."""
        return self.data.get(key, _EMPTY)

    def has_key(self, key) -> bool:
        return key in self.data

    def keys(self) -> Iterator[object]:
        return iter(self.data.keys())

    def items(self) -> Iterator[Tuple[object, Dict[object, int]]]:
        return iter(self.data.items())

    def total_records(self) -> int:
        return sum(len(g) for g in self.data.values())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Arrangement({len(self.data)} keys, {self.total_records()} records)"
