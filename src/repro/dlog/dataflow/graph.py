"""Dataflow graph construction and per-transaction scheduling.

The graph is a DAG of :class:`~repro.dlog.dataflow.operators.Node`
(recursive rule sets are collapsed into a single evaluator node by the
engine, so cycles never appear here).  ``run`` pushes a set of source
deltas through the graph in topological order and returns every node's
output delta for the transaction.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.dlog.dataflow.operators import Node
from repro.dlog.dataflow.zset import ZSet


class Graph:
    def __init__(self):
        self.nodes: List[Node] = []
        self._order: Optional[List[Node]] = None

    def add(self, node: Node) -> Node:
        self.nodes.append(node)
        self._order = None
        return node

    def topo_order(self) -> List[Node]:
        """Kahn's algorithm; raises on cycles (engine must prevent them)."""
        if self._order is not None:
            return self._order
        indegree: Dict[int, int] = {id(n): 0 for n in self.nodes}
        by_id: Dict[int, Node] = {id(n): n for n in self.nodes}
        for node in self.nodes:
            for child, _, _ in node.downstream:
                if id(child) not in indegree:
                    raise ValueError(
                        f"edge to node {child.name} that is not in the graph"
                    )
                indegree[id(child)] += 1
        queue = deque(n for n in self.nodes if indegree[id(n)] == 0)
        order: List[Node] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for child, _, _ in node.downstream:
                indegree[id(child)] -= 1
                if indegree[id(child)] == 0:
                    queue.append(child)
        if len(order) != len(self.nodes):
            cyclic = [by_id[i].name for i, d in indegree.items() if d > 0]
            raise ValueError(f"dataflow graph has a cycle through {cyclic}")
        self._order = order
        return order

    def run(
        self,
        source_deltas: Dict[int, ZSet],
        profile: Optional[List[Tuple[Node, float, int, int]]] = None,
        bulk: bool = False,
    ) -> Dict[int, ZSet]:
        """Propagate deltas; returns ``id(node) -> output delta``.

        ``source_deltas`` maps ``id(node)`` to the delta injected at its
        port 0.  Nodes with no pending input are skipped entirely — an
        empty transaction does no work, and a small one touches only the
        paths it reaches.

        With ``bulk=True`` each node is first offered the batch via
        :meth:`Node.process_bulk`; a node that cannot take the bulk path
        (stateful node with existing state, recursive SCC evaluator)
        returns ``None`` and is run through its incremental ``process``
        instead, so the two paths are freely interleavable.

        When ``profile`` is a list, every processed node appends a
        ``(node, seconds, in_tuples, out_tuples)`` sample to it.

        Output deltas are treated as immutable once emitted: a
        downstream input slot *borrows* the producer's delta on first
        assignment and only copies it if a second producer has to merge
        into the same slot.  Operators must therefore never mutate their
        input deltas (they don't — they read inputs and build fresh
        outputs).
        """
        pending: Dict[int, List[Optional[ZSet]]] = {}
        for node_id, delta in source_deltas.items():
            if delta:
                pending[node_id] = [delta]
        outputs: Dict[int, object] = {}
        borrowed: Dict[Tuple[int, int], bool] = {}
        for node in self.topo_order():
            inputs = pending.pop(id(node), None)
            if inputs is None:
                continue
            while len(inputs) < node.n_ports:
                inputs.append(None)
            if profile is None:
                result = node.process_bulk(inputs) if bulk else None
                if result is None:
                    result = node.process(inputs)
            else:
                n_in = sum(len(d) for d in inputs if d is not None)
                started = time.perf_counter()
                result = node.process_bulk(inputs) if bulk else None
                if result is None:
                    result = node.process(inputs)
                elapsed = time.perf_counter() - started
                if isinstance(result, dict):
                    n_out = sum(len(z) for z in result.values())
                else:
                    n_out = len(result)
                profile.append((node, elapsed, n_in, n_out))
            outputs[id(node)] = result
            for child, port, out_key in node.downstream:
                out = result[out_key] if out_key is not None else result
                if not out:
                    continue
                slot = pending.get(id(child))
                if slot is None:
                    slot = [None] * child.n_ports
                    pending[id(child)] = slot
                while len(slot) < child.n_ports:
                    slot.append(None)
                if slot[port] is None:
                    slot[port] = out
                    borrowed[(id(child), port)] = True
                else:
                    if borrowed.pop((id(child), port), False):
                        slot[port] = slot[port].copy()
                    slot[port].merge(out)
        return outputs

    def total_state(self) -> int:
        """Total records held across all stateful nodes (for profiling)."""
        return sum(n.state_size() for n in self.nodes)
