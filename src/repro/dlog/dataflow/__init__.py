"""Delta-dataflow machinery behind the incremental engine.

Non-recursive rules compile to chains of the operators in
:mod:`repro.dlog.dataflow.operators`, exchanging weighted multiset
deltas (:class:`~repro.dlog.dataflow.zset.ZSet`).  Stateful operators
(join, antijoin, distinct, aggregate) maintain *arrangements* — indexed
copies of their inputs — so each transaction does work proportional to
the delta, which is the scalability property the paper claims for the
control plane.
"""

from repro.dlog.dataflow.zset import ZSet
from repro.dlog.dataflow.arrangement import Arrangement
from repro.dlog.dataflow.graph import Graph

__all__ = ["Arrangement", "Graph", "ZSet"]
