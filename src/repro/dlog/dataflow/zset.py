"""Weighted multisets (Z-sets) — the currency of the incremental engine.

A Z-set maps records to integer weights.  A relation's *state* is a
Z-set with positive weights; a *delta* may carry negative weights
(deletions).  Operators consume and produce deltas; applying a delta to
a state is just :meth:`ZSet.merge`.

This mirrors the Z-set formalism of DBSP/Differential Datalog (the
paper's reference [11]): linear operators distribute over deltas, and
the nonlinear ones (distinct, join, aggregate) get explicit incremental
implementations in :mod:`repro.dlog.dataflow.operators`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple


class ZSet:
    """A mapping from hashable records to non-zero integer weights.

    Entries with weight zero are removed eagerly, so ``len`` counts
    records with support and equality is semantic equality.
    """

    __slots__ = ("data",)

    def __init__(self, data: Dict[object, int] = None):
        self.data: Dict[object, int] = data if data is not None else {}

    @classmethod
    def from_rows(cls, rows: Iterable[object], weight: int = 1) -> "ZSet":
        out = cls()
        for row in rows:
            out.add(row, weight)
        return out

    # -- mutation -----------------------------------------------------------

    def add(self, record, weight: int = 1) -> None:
        """Add ``weight`` to ``record``'s weight, dropping zero entries."""
        if weight == 0:
            return
        data = self.data
        new = data.get(record, 0) + weight
        if new == 0:
            del data[record]
        else:
            data[record] = new

    def merge(self, other: "ZSet") -> None:
        """In-place ``self += other``."""
        data = self.data
        if not data:
            # Empty receiver: the sum is just ``other`` (already free of
            # zero weights by invariant), so copy the dict wholesale.
            data.update(other.data)
            return
        add = self.add
        for record, weight in other.data.items():
            add(record, weight)

    def clear(self) -> None:
        self.data.clear()

    # -- queries ------------------------------------------------------------

    def weight(self, record) -> int:
        return self.data.get(record, 0)

    def __contains__(self, record) -> bool:
        return record in self.data

    def __len__(self) -> int:
        return len(self.data)

    def __bool__(self) -> bool:
        return bool(self.data)

    def items(self) -> Iterator[Tuple[object, int]]:
        return iter(self.data.items())

    def records(self) -> Iterator[object]:
        return iter(self.data.keys())

    def is_set(self) -> bool:
        """True if every weight is exactly +1."""
        return all(w == 1 for w in self.data.values())

    # -- algebra --------------------------------------------------------------

    def copy(self) -> "ZSet":
        return ZSet(dict(self.data))

    def negated(self) -> "ZSet":
        return ZSet({r: -w for r, w in self.data.items()})

    def added(self, other: "ZSet") -> "ZSet":
        out = self.copy()
        out.merge(other)
        return out

    def scaled(self, factor: int) -> "ZSet":
        if factor == 0:
            return ZSet()
        return ZSet({r: w * factor for r, w in self.data.items()})

    def positive_part(self) -> "ZSet":
        """Records with positive weight, at weight 1 (set semantics)."""
        return ZSet({r: 1 for r, w in self.data.items() if w > 0})

    def __eq__(self, other) -> bool:
        return isinstance(other, ZSet) and self.data == other.data

    def __hash__(self):  # pragma: no cover - ZSets are not hashable
        raise TypeError("ZSet is unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{r!r}: {w:+d}" for r, w in sorted(
            self.data.items(), key=lambda kv: repr(kv[0])
        ))
        return f"ZSet({{{inner}}})"
