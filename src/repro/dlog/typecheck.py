"""Rule and expression typechecking for the control-plane language.

The checker validates a parsed :class:`~repro.dlog.ast.Program` and
produces a :class:`CheckedProgram` carrying:

* the :class:`~repro.dlog.types.TypeEnv` with all typedefs registered;
* relation declarations by name (with duplicate/arity checking);
* per-rule variable types, used by the query planner;
* a *node-type table* mapping expression nodes to their types, which the
  interpreter consults to apply ``bit<N>`` wrap-around semantics;
* head argument patterns converted to plain expressions.

Design notes
------------

Integer literals without an explicit width (``5`` rather than ``32'd5``)
are polymorphic: they adopt the type expected by their context and
default to ``bigint``.  To make the common ``x + 1`` and ``1 + x`` both
work, binary operators check the non-literal side first.

Named constructor fields (``Trunk{native: 5}``) are **normalized to
declaration order in place**, so downstream passes can treat all struct
expressions and patterns as positional.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dlog import ast as A
from repro.dlog import types as T
from repro.dlog.stdlib import AGGREGATES, BUILTINS
from repro.errors import TypeCheckError


class CheckedProgram:
    """A typechecked program plus the side tables later passes need."""

    def __init__(self, ast: A.Program, tenv: T.TypeEnv):
        self.ast = ast
        self.tenv = tenv
        self.relations: Dict[str, A.RelationDecl] = {}
        self.functions: Dict[str, A.FunctionDecl] = {}
        self.node_types: Dict[int, T.Type] = {}
        # rule id -> {var: type} after the whole body has been processed
        self.rule_vars: Dict[int, Dict[str, T.Type]] = {}
        # rule id -> head argument expressions (patterns converted)
        self.head_exprs: Dict[int, List[A.Expr]] = {}

    def relation(self, name: str) -> A.RelationDecl:
        try:
            return self.relations[name]
        except KeyError:
            raise TypeCheckError(f"unknown relation {name!r}") from None

    def type_of(self, node: A.Node) -> Optional[T.Type]:
        return self.node_types.get(id(node))


def _err(pos: A.Pos, message: str) -> TypeCheckError:
    return TypeCheckError(message, pos.source, pos.line, pos.column)


def _is_bare_int_lit(expr: A.Expr) -> bool:
    return (
        isinstance(expr, A.Lit)
        and isinstance(expr.value, int)
        and not isinstance(expr.value, bool)
        and expr.width is None
    )


class Checker:
    def __init__(self, ast: A.Program):
        self.ast = ast
        self.tenv = T.TypeEnv()
        self.out = CheckedProgram(ast, self.tenv)

    # -- program ------------------------------------------------------------

    def check(self) -> CheckedProgram:
        for tdef in self.ast.typedefs:
            self.tenv.define(tdef)
        for tdef in self.tenv.typedefs():
            for ctor in tdef.constructors:
                for field in ctor.fields:
                    self.tenv.resolve(field.type)
        for rel in self.ast.relations:
            if rel.name in self.out.relations:
                raise _err(rel.pos, f"duplicate relation {rel.name}")
            names = rel.column_names()
            if len(set(names)) != len(names):
                raise _err(rel.pos, f"duplicate column name in {rel.name}")
            for _, ty in rel.columns:
                self.tenv.resolve(ty)
            self.out.relations[rel.name] = rel
        for fn in self.ast.functions:
            if fn.name in self.out.functions or fn.name in BUILTINS:
                raise _err(fn.pos, f"duplicate function {fn.name}")
            self.out.functions[fn.name] = fn
        for fn in self.ast.functions:
            self._check_function(fn)
        for rule in self.ast.rules:
            self._check_rule(rule)
        return self.out

    def _check_function(self, fn: A.FunctionDecl) -> None:
        env: Dict[str, T.Type] = {}
        for name, ty in fn.params:
            if name in env:
                raise _err(fn.pos, f"duplicate parameter {name}")
            env[name] = self.tenv.resolve(ty)
        self.tenv.resolve(fn.return_type)
        got = self.check_expr(fn.body, env, fn.return_type)
        if got != fn.return_type:
            raise _err(
                fn.pos,
                f"function {fn.name} declared to return {fn.return_type}, "
                f"body has type {got}",
            )

    # -- rules ----------------------------------------------------------------

    def _check_rule(self, rule: A.Rule) -> None:
        head_rel = self.out.relation(rule.head.relation)
        if head_rel.role == "input":
            raise _err(
                rule.pos,
                f"rule derives into input relation {head_rel.name}; "
                "input relations can only be written by transactions",
            )
        env: Dict[str, T.Type] = {}
        for item in rule.body:
            if isinstance(item, A.AtomItem):
                self._check_atom(item.atom, env, binding=True)
            elif isinstance(item, A.NegAtom):
                self._check_atom(item.atom, env, binding=False)
            elif isinstance(item, A.Guard):
                got = self.check_expr(item.expr, env, T.BOOL)
                if got != T.BOOL:
                    raise _err(item.pos, f"guard must be bool, got {got}")
            elif isinstance(item, A.Assignment):
                ty = self.check_expr(item.expr, env, None)
                self._bind_pattern(item.pattern, ty, env, context="assignment")
            elif isinstance(item, A.FlatMapItem):
                ty = self.check_expr(item.expr, env, None)
                if isinstance(ty, T.TVec):
                    elem: T.Type = ty.elem
                elif isinstance(ty, T.TMap):
                    elem = T.TTuple([ty.kty, ty.vty])
                else:
                    raise _err(item.pos, f"FlatMap expects Vec or Map, got {ty}")
                if item.var in env:
                    raise _err(item.pos, f"variable {item.var} already bound")
                env[item.var] = elem
            elif isinstance(item, A.AggregateItem):
                self._check_aggregate(item, env)
            else:  # pragma: no cover - parser produces no other items
                raise _err(item.pos, f"unsupported body item {item!r}")

        if len(rule.head.args) != head_rel.arity:
            raise _err(
                rule.pos,
                f"head {head_rel.name} expects {head_rel.arity} argument(s), "
                f"got {len(rule.head.args)}",
            )
        head_exprs: List[A.Expr] = []
        for arg, (col, col_ty) in zip(rule.head.args, head_rel.columns):
            expr = pattern_to_expr(arg)
            got = self.check_expr(expr, env, col_ty)
            if got != col_ty:
                raise _err(
                    rule.pos,
                    f"head column {head_rel.name}.{col} has type {col_ty}, "
                    f"rule produces {got}",
                )
            head_exprs.append(expr)
        self.out.head_exprs[id(rule)] = head_exprs
        self.out.rule_vars[id(rule)] = dict(env)

    def _check_atom(self, atom: A.Atom, env: Dict[str, T.Type], binding: bool) -> None:
        rel = self.out.relation(atom.relation)
        if len(atom.args) != rel.arity:
            raise _err(
                atom.pos,
                f"{rel.name} expects {rel.arity} argument(s), got {len(atom.args)}",
            )
        for arg, (_, col_ty) in zip(atom.args, rel.columns):
            self._check_atom_arg(atom, arg, col_ty, env, binding)

    def _check_atom_arg(
        self,
        atom: A.Atom,
        arg: A.Pattern,
        col_ty: T.Type,
        env: Dict[str, T.Type],
        binding: bool,
    ) -> None:
        if isinstance(arg, A.PWildcard):
            return
        if isinstance(arg, A.PVar):
            if arg.name in env:
                if env[arg.name] != col_ty:
                    raise _err(
                        arg.pos,
                        f"variable {arg.name} has type {env[arg.name]}, "
                        f"used at position of type {col_ty}",
                    )
            elif binding:
                env[arg.name] = col_ty
            else:
                raise _err(
                    arg.pos,
                    f"variable {arg.name} is unbound; negated atoms cannot "
                    "bind new variables",
                )
            return
        if isinstance(arg, A.PLit):
            self._check_literal_pattern(arg, col_ty)
            return
        if isinstance(arg, A.PTuple):
            if not isinstance(col_ty, T.TTuple) or len(col_ty.elems) != len(arg.elems):
                raise _err(arg.pos, f"tuple pattern does not match type {col_ty}")
            for sub, sub_ty in zip(arg.elems, col_ty.elems):
                self._check_atom_arg(atom, sub, sub_ty, env, binding)
            return
        if isinstance(arg, A.PStruct):
            fields = self._normalize_struct_pattern(arg, col_ty)
            for (_, sub), field in zip(arg.fields, fields):
                self._check_atom_arg(atom, sub, field.type, env, binding)
            return
        if isinstance(arg, A.PExpr):
            got = self.check_expr(arg.expr, env, col_ty)
            if got != col_ty:
                raise _err(
                    arg.pos,
                    f"argument expression has type {got}, expected {col_ty}",
                )
            return
        raise _err(arg.pos, f"unsupported pattern {arg!r}")  # pragma: no cover

    def _check_aggregate(self, item: A.AggregateItem, env: Dict[str, T.Type]) -> None:
        if item.func not in AGGREGATES:
            raise _err(item.pos, f"unknown aggregate {item.func!r}")
        agg = AGGREGATES[item.func]
        for key in item.group_by:
            if key not in env:
                raise _err(item.pos, f"group-by variable {key} is unbound")
        if item.var in env:
            raise _err(item.pos, f"variable {item.var} already bound")
        arg_types = [self.check_expr(a, env, None) for a in item.args]
        try:
            result = agg.sig(arg_types)
        except TypeCheckError as exc:
            raise _err(item.pos, str(exc)) from None
        # After grouping, only the keys and the aggregate result survive.
        keys = {k: env[k] for k in item.group_by}
        env.clear()
        env.update(keys)
        env[item.var] = result

    # -- patterns --------------------------------------------------------------

    def _check_literal_pattern(self, pat: A.PLit, ty: T.Type) -> None:
        value = pat.value
        if isinstance(value, bool):
            ok = isinstance(ty, T.TBool)
        elif isinstance(value, int):
            ok = T.is_integer(ty)
            if isinstance(ty, T.TBit) and not 0 <= value < (1 << ty.width):
                raise _err(pat.pos, f"literal {value} out of range for {ty}")
        elif isinstance(value, str):
            ok = isinstance(ty, T.TString)
        elif isinstance(value, float):
            ok = isinstance(ty, T.TFloat)
        else:  # pragma: no cover
            ok = False
        if not ok:
            raise _err(pat.pos, f"literal {value!r} does not match type {ty}")

    def _normalize_struct_pattern(self, pat: A.PStruct, ty: T.Type) -> List[T.Field]:
        """Check ``pat`` against ``ty``; reorder named fields in place."""
        if not isinstance(ty, T.TUser):
            raise _err(pat.pos, f"constructor pattern used at type {ty}")
        owner = self.tenv.owner_of_constructor(pat.ctor)
        if owner is None or owner.name != ty.name:
            raise _err(
                pat.pos, f"constructor {pat.ctor} does not belong to type {ty}"
            )
        _, ctor = self.tenv.constructor_signature(pat.ctor, ty)
        pat.fields = _normalize_fields(
            pat.pos, pat.ctor, pat.fields, ctor, allow_partial=False
        )
        return list(ctor.fields)

    def _bind_pattern(
        self,
        pat: A.Pattern,
        ty: T.Type,
        env: Dict[str, T.Type],
        context: str,
        rebind: bool = False,
    ) -> None:
        """Bind pattern variables to types; ``rebind`` permits shadowing
        (used in match arms, which have their own scope)."""
        if isinstance(pat, A.PWildcard):
            return
        if isinstance(pat, A.PVar):
            if pat.name in env and not rebind:
                raise _err(pat.pos, f"variable {pat.name} already bound")
            env[pat.name] = ty
            return
        if isinstance(pat, A.PLit):
            self._check_literal_pattern(pat, ty)
            return
        if isinstance(pat, A.PTuple):
            if not isinstance(ty, T.TTuple) or len(ty.elems) != len(pat.elems):
                raise _err(pat.pos, f"tuple pattern does not match type {ty}")
            for sub, sub_ty in zip(pat.elems, ty.elems):
                self._bind_pattern(sub, sub_ty, env, context, rebind)
            return
        if isinstance(pat, A.PStruct):
            fields = self._normalize_struct_pattern(pat, ty)
            for (_, sub), field in zip(pat.fields, fields):
                self._bind_pattern(sub, field.type, env, context, rebind)
            return
        raise _err(pat.pos, f"pattern not allowed in {context}")

    # -- expressions -------------------------------------------------------------

    def check_expr(
        self, expr: A.Expr, env: Dict[str, T.Type], expected: Optional[T.Type]
    ) -> T.Type:
        ty = self._infer(expr, env, expected)
        self.out.node_types[id(expr)] = ty
        return ty

    def _infer(
        self, expr: A.Expr, env: Dict[str, T.Type], expected: Optional[T.Type]
    ) -> T.Type:
        if isinstance(expr, A.Lit):
            return self._infer_lit(expr, expected)
        if isinstance(expr, A.Var):
            if expr.name not in env:
                raise _err(expr.pos, f"unbound variable {expr.name}")
            return env[expr.name]
        if isinstance(expr, A.BinOp):
            return self._infer_binop(expr, env, expected)
        if isinstance(expr, A.UnaryOp):
            return self._infer_unary(expr, env, expected)
        if isinstance(expr, A.Field):
            return self._infer_field(expr, env)
        if isinstance(expr, A.Call):
            return self._infer_call(expr, env)
        if isinstance(expr, A.TupleExpr):
            elem_expected: List[Optional[T.Type]]
            if isinstance(expected, T.TTuple) and len(expected.elems) == len(
                expr.elems
            ):
                elem_expected = list(expected.elems)
            else:
                elem_expected = [None] * len(expr.elems)
            return T.TTuple(
                [
                    self.check_expr(e, env, want)
                    for e, want in zip(expr.elems, elem_expected)
                ]
            )
        if isinstance(expr, A.VecExpr):
            return self._infer_vec(expr, env, expected)
        if isinstance(expr, A.StructExpr):
            return self._infer_struct(expr, env, expected)
        if isinstance(expr, A.IfExpr):
            cond = self.check_expr(expr.cond, env, T.BOOL)
            if cond != T.BOOL:
                raise _err(expr.pos, f"if condition must be bool, got {cond}")
            then_ty = self.check_expr(expr.then, env, expected)
            els_ty = self.check_expr(expr.els, env, then_ty)
            if then_ty != els_ty:
                raise _err(
                    expr.pos, f"if branches disagree: {then_ty} vs {els_ty}"
                )
            return then_ty
        if isinstance(expr, A.MatchExpr):
            return self._infer_match(expr, env, expected)
        if isinstance(expr, A.Cast):
            src = self.check_expr(expr.expr, env, None)
            dst = self.tenv.resolve(expr.type)
            if not (T.is_numeric(src) and T.is_numeric(dst)):
                raise _err(expr.pos, f"cannot cast {src} to {dst}")
            return dst
        raise _err(expr.pos, f"unsupported expression {expr!r}")  # pragma: no cover

    def _infer_lit(self, expr: A.Lit, expected: Optional[T.Type]) -> T.Type:
        value = expr.value
        if isinstance(value, bool):
            return T.BOOL
        if isinstance(value, str):
            return T.STRING
        if isinstance(value, float):
            return T.FLOAT
        # Integer literal.
        if expr.width is not None:
            ty: T.Type = T.TBit(expr.width)
            if not 0 <= value < (1 << expr.width):
                raise _err(expr.pos, f"literal {value} out of range for {ty}")
            return ty
        if expected is not None and T.is_numeric(expected):
            if isinstance(expected, T.TBit) and not 0 <= value < (1 << expected.width):
                raise _err(expr.pos, f"literal {value} out of range for {expected}")
            if isinstance(expected, T.TSigned):
                half = 1 << (expected.width - 1)
                if not -half <= value < half:
                    raise _err(
                        expr.pos, f"literal {value} out of range for {expected}"
                    )
            return expected
        return T.BIGINT

    _NUMERIC_OPS = {"+", "-", "*", "/", "%"}
    _INTEGER_OPS = {"&", "|", "^", "<<", ">>"}
    _COMPARE_OPS = {"<", "<=", ">", ">="}

    def _infer_binop(
        self, expr: A.BinOp, env: Dict[str, T.Type], expected: Optional[T.Type]
    ) -> T.Type:
        op = expr.op
        if op in ("and", "or"):
            lt = self.check_expr(expr.left, env, T.BOOL)
            rt = self.check_expr(expr.right, env, T.BOOL)
            if lt != T.BOOL or rt != T.BOOL:
                raise _err(expr.pos, f"{op} expects bool operands")
            return T.BOOL
        if op in ("==", "!="):
            lt, rt = self._check_same_type_operands(expr, env, None)
            return T.BOOL
        if op in self._COMPARE_OPS:
            lt, rt = self._check_same_type_operands(expr, env, None)
            if not (T.is_numeric(lt) or isinstance(lt, T.TString)):
                raise _err(expr.pos, f"{op} expects numbers or strings, got {lt}")
            return T.BOOL
        if op in self._NUMERIC_OPS:
            lt, rt = self._check_same_type_operands(expr, env, expected)
            if not T.is_numeric(lt):
                raise _err(expr.pos, f"{op} expects numeric operands, got {lt}")
            return lt
        if op == "++":
            lt = self.check_expr(expr.left, env, expected)
            rt = self.check_expr(expr.right, env, lt)
            if lt != rt or not isinstance(lt, (T.TString, T.TVec)):
                raise _err(expr.pos, f"++ expects two strings or two Vecs, got {lt}")
            return lt
        if op in ("<<", ">>"):
            lt = self.check_expr(expr.left, env, expected)
            rt = self.check_expr(expr.right, env, None)
            if not T.is_integer(lt) or not T.is_integer(rt):
                raise _err(expr.pos, f"{op} expects integer operands")
            return lt
        if op in ("&", "|", "^"):
            lt, rt = self._check_same_type_operands(expr, env, expected)
            if not T.is_integer(lt):
                raise _err(expr.pos, f"{op} expects integer operands, got {lt}")
            return lt
        raise _err(expr.pos, f"unknown operator {op}")  # pragma: no cover

    def _check_same_type_operands(
        self, expr: A.BinOp, env: Dict[str, T.Type], expected: Optional[T.Type]
    ) -> Tuple[T.Type, T.Type]:
        # Bare integer literals adopt the other operand's type, so check
        # the non-literal side first.
        if _is_bare_int_lit(expr.left) and not _is_bare_int_lit(expr.right):
            rt = self.check_expr(expr.right, env, expected)
            lt = self.check_expr(expr.left, env, rt)
        else:
            lt = self.check_expr(expr.left, env, expected)
            rt = self.check_expr(expr.right, env, lt)
        if lt != rt:
            raise _err(
                expr.pos, f"operand types disagree: {lt} {expr.op} {rt}"
            )
        return lt, rt

    def _infer_unary(
        self, expr: A.UnaryOp, env: Dict[str, T.Type], expected: Optional[T.Type]
    ) -> T.Type:
        if expr.op == "not":
            ty = self.check_expr(expr.operand, env, T.BOOL)
            if ty != T.BOOL:
                raise _err(expr.pos, f"not expects bool, got {ty}")
            return T.BOOL
        if expr.op == "-":
            ty = self.check_expr(expr.operand, env, expected)
            if not (
                isinstance(ty, (T.TSigned, T.TBigInt, T.TFloat))
            ):
                raise _err(
                    expr.pos,
                    f"unary - expects signed/bigint/float, got {ty} "
                    "(cast bit<N> values first)",
                )
            return ty
        if expr.op == "~":
            ty = self.check_expr(expr.operand, env, expected)
            if not T.is_integer(ty):
                raise _err(expr.pos, f"~ expects an integer, got {ty}")
            return ty
        raise _err(expr.pos, f"unknown unary operator {expr.op}")  # pragma: no cover

    def _infer_field(self, expr: A.Field, env: Dict[str, T.Type]) -> T.Type:
        base = self.check_expr(expr.expr, env, None)
        if isinstance(base, T.TTuple):
            if not expr.name.isdigit():
                raise _err(expr.pos, f"tuples are indexed by position, got .{expr.name}")
            idx = int(expr.name)
            if idx >= len(base.elems):
                raise _err(expr.pos, f"tuple index {idx} out of range for {base}")
            return base.elems[idx]
        if isinstance(base, T.TUser):
            tdef = self.tenv.lookup(base.name)
            if tdef.is_union:
                raise _err(
                    expr.pos,
                    f"cannot access field of union type {base}; use match",
                )
            ctors = self.tenv.instantiate(base)
            ctor = ctors[0]
            for field in ctor.fields:
                if field.name == expr.name:
                    return field.type
            raise _err(expr.pos, f"type {base} has no field {expr.name!r}")
        raise _err(expr.pos, f"cannot access field {expr.name!r} of {base}")

    def _infer_call(self, expr: A.Call, env: Dict[str, T.Type]) -> T.Type:
        if expr.func in self.out.functions:
            fn = self.out.functions[expr.func]
            if len(expr.args) != len(fn.params):
                raise _err(
                    expr.pos,
                    f"{fn.name}() expects {len(fn.params)} argument(s), "
                    f"got {len(expr.args)}",
                )
            for arg, (pname, pty) in zip(expr.args, fn.params):
                got = self.check_expr(arg, env, pty)
                if got != pty:
                    raise _err(
                        arg.pos,
                        f"{fn.name}() parameter {pname} has type {pty}, got {got}",
                    )
            return fn.return_type
        if expr.func in BUILTINS:
            builtin = BUILTINS[expr.func]
            arg_types = [self.check_expr(a, env, None) for a in expr.args]
            try:
                return builtin.sig(arg_types)
            except TypeCheckError as exc:
                raise _err(expr.pos, f"{expr.func}(): {exc.message}") from None
        raise _err(expr.pos, f"unknown function {expr.func!r}")

    def _infer_vec(
        self, expr: A.VecExpr, env: Dict[str, T.Type], expected: Optional[T.Type]
    ) -> T.Type:
        elem_expected = expected.elem if isinstance(expected, T.TVec) else None
        if not expr.elems:
            if elem_expected is None:
                raise _err(
                    expr.pos,
                    "cannot infer element type of empty vector; "
                    "use it where a Vec<...> is expected",
                )
            return T.TVec(elem_expected)
        first = self.check_expr(expr.elems[0], env, elem_expected)
        for e in expr.elems[1:]:
            got = self.check_expr(e, env, first)
            if got != first:
                raise _err(e.pos, f"vector elements disagree: {first} vs {got}")
        return T.TVec(first)

    def _infer_struct(
        self, expr: A.StructExpr, env: Dict[str, T.Type], expected: Optional[T.Type]
    ) -> T.Type:
        result, ctor = self.tenv.constructor_signature(expr.ctor, expected)
        expr.fields = _normalize_fields(
            expr.pos, expr.ctor, expr.fields, ctor, allow_partial=False
        )
        subst: Dict[str, T.Type] = {}
        for (_, arg), field in zip(expr.fields, ctor.fields):
            want = field.type
            if isinstance(want, T.TVar):
                got = self.check_expr(arg, env, subst.get(want.name))
                prior = subst.setdefault(want.name, got)
                if prior != got:
                    raise _err(
                        arg.pos,
                        f"type parameter {want.name} bound to both {prior} and {got}",
                    )
            else:
                got = self.check_expr(arg, env, want)
                if got != want:
                    raise _err(
                        arg.pos,
                        f"field {field.name} of {expr.ctor} has type {want}, got {got}",
                    )
        final_args = []
        for a in result.args:
            if isinstance(a, T.TVar):
                if a.name not in subst:
                    # Unconstrained parameter (e.g. bare `None`): take it
                    # from the expected type if available.
                    if (
                        isinstance(expected, T.TUser)
                        and expected.name == result.name
                        and len(expected.args) == len(result.args)
                    ):
                        subst[a.name] = expected.args[len(final_args)]
                    else:
                        raise _err(
                            expr.pos,
                            f"cannot infer type parameter {a.name} of {expr.ctor}; "
                            "add an annotation or use it in a typed position",
                        )
                final_args.append(subst[a.name])
            else:
                final_args.append(a)
        return T.TUser(result.name, final_args)

    def _infer_match(
        self, expr: A.MatchExpr, env: Dict[str, T.Type], expected: Optional[T.Type]
    ) -> T.Type:
        subject = self.check_expr(expr.subject, env, None)
        result: Optional[T.Type] = expected
        out_ty: Optional[T.Type] = None
        # Check arms whose expression is not a bare integer literal first,
        # so literal arms can adopt the type the other arms establish.
        ordered = sorted(expr.arms, key=lambda arm: _is_bare_int_lit(arm[1]))
        for pat, arm in ordered:
            arm_env = dict(env)
            self._bind_pattern(pat, subject, arm_env, "match arm", rebind=True)
            got = self.check_expr(arm, arm_env, result)
            if out_ty is None:
                out_ty = got
                result = got
            elif got != out_ty:
                raise _err(expr.pos, f"match arms disagree: {out_ty} vs {got}")
        assert out_ty is not None
        return out_ty


def _normalize_fields(pos, ctor_name, fields, ctor, allow_partial):
    """Reorder named fields to declaration order; validate positional arity.

    Returns the normalized ``(name, item)`` list (names dropped to None).
    """
    named = [f for f in fields if f[0] is not None]
    if named and len(named) != len(fields):
        raise _err(pos, f"{ctor_name}: mix of named and positional fields")
    if not named:
        if len(fields) != len(ctor.fields):
            raise _err(
                pos,
                f"{ctor_name} has {len(ctor.fields)} field(s), got {len(fields)}",
            )
        return list(fields)
    by_name = dict(named)
    if len(by_name) != len(named):
        raise _err(pos, f"{ctor_name}: duplicate field")
    known = {f.name for f in ctor.fields}
    extra = sorted(set(by_name) - known)
    if extra:
        raise _err(pos, f"{ctor_name}: unknown field(s) {', '.join(extra)}")
    out = []
    for field in ctor.fields:
        if field.name not in by_name:
            raise _err(pos, f"{ctor_name}: missing field {field.name!r}")
        out.append((None, by_name.pop(field.name)))
    return out


def pattern_to_expr(pat: A.Pattern) -> A.Expr:
    """Convert a head-atom argument pattern into an expression.

    Head arguments are parsed as patterns (sharing the atom grammar) but
    are semantically expressions over the rule's bound variables.
    """
    if isinstance(pat, A.PVar):
        return A.Var(pat.name, pat.pos)
    if isinstance(pat, A.PLit):
        return A.Lit(pat.value, None, pat.pos)
    if isinstance(pat, A.PExpr):
        return pat.expr
    if isinstance(pat, A.PTuple):
        return A.TupleExpr([pattern_to_expr(p) for p in pat.elems], pat.pos)
    if isinstance(pat, A.PStruct):
        return A.StructExpr(
            pat.ctor,
            [(name, pattern_to_expr(p)) for name, p in pat.fields],
            pat.pos,
        )
    if isinstance(pat, A.PWildcard):
        raise _err(pat.pos, "wildcard _ not allowed in a rule head")
    raise _err(pat.pos, f"unsupported head argument {pat!r}")  # pragma: no cover


def check_program(ast: A.Program) -> CheckedProgram:
    """Typecheck a parsed program; raise :class:`TypeCheckError` on error."""
    return Checker(ast).check()
