"""Dependency analysis and stratification of rule sets.

Relations form a dependency graph (an edge ``B -> H`` for every rule
with head ``H`` and body atom ``B``).  Strongly connected components of
that graph are *strata*; a nontrivial SCC is a recursive rule set and
is evaluated by :mod:`repro.dlog.recursive`, everything else by the
delta-dataflow operators.

Stratified semantics require that negation and aggregation never occur
*inside* an SCC: a rule may negate or aggregate only relations computed
in strictly lower strata.  Violations raise
:class:`~repro.errors.StratificationError` at compile time (this is the
classic "no negation through recursion" condition).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.dlog import ast as A
from repro.errors import StratificationError

POSITIVE = "positive"
NEGATIVE = "negative"  # negated atoms *and* aggregated bodies


def rule_dependencies(rule: A.Rule) -> List[Tuple[str, str]]:
    """``(relation, polarity)`` for every body atom of ``rule``.

    A body atom occurring before an :class:`~repro.dlog.ast.AggregateItem`
    is reported as NEGATIVE: aggregation, like negation, is non-monotonic
    (removing an input row can change a group's aggregate), so the
    aggregated sub-body must be fully computed before this rule runs.
    """
    deps: List[Tuple[str, str]] = []
    has_aggregate = any(isinstance(i, A.AggregateItem) for i in rule.body)
    for item in rule.body:
        if isinstance(item, A.AtomItem):
            polarity = NEGATIVE if has_aggregate else POSITIVE
            deps.append((item.atom.relation, polarity))
        elif isinstance(item, A.NegAtom):
            deps.append((item.atom.relation, NEGATIVE))
    return deps


class Stratification:
    """The SCC condensation of a program's dependency graph.

    ``order`` lists SCCs bottom-up (dependencies first); each SCC is a
    tuple of relation names.  ``scc_of`` maps a relation to its SCC
    index in ``order``.  ``recursive`` marks SCCs that need fixpoint
    evaluation (more than one member, or a self-loop).
    """

    def __init__(
        self,
        order: List[Tuple[str, ...]],
        scc_of: Dict[str, int],
        recursive: List[bool],
    ):
        self.order = order
        self.scc_of = scc_of
        self.recursive = recursive

    def is_recursive_relation(self, name: str) -> bool:
        idx = self.scc_of.get(name)
        return idx is not None and self.recursive[idx]


def _tarjan(vertices: Sequence[str], edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC algorithm, iterative to survive deep graphs.

    Returns SCCs in reverse topological order (consumers before
    dependencies), which we reverse before use.
    """
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in vertices:
        if root in index_of:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            vertex, edge_idx = work.pop()
            if edge_idx == 0:
                index_of[vertex] = counter[0]
                lowlink[vertex] = counter[0]
                counter[0] += 1
                stack.append(vertex)
                on_stack.add(vertex)
            advanced = False
            neighbors = sorted(edges.get(vertex, ()))
            while edge_idx < len(neighbors):
                succ = neighbors[edge_idx]
                edge_idx += 1
                if succ not in index_of:
                    work.append((vertex, edge_idx))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[vertex] = min(lowlink[vertex], index_of[succ])
            if advanced:
                continue
            if lowlink[vertex] == index_of[vertex]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == vertex:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
    return sccs


def stratify(relations: Sequence[str], rules: Sequence[A.Rule]) -> Stratification:
    """Compute the stratification; reject unstratifiable programs."""
    vertices = list(relations)
    vertex_set = set(vertices)
    edges: Dict[str, Set[str]] = {v: set() for v in vertices}
    polarity: Dict[Tuple[str, str], str] = {}
    for rule in rules:
        head = rule.head.relation
        for body_rel, pol in rule_dependencies(rule):
            if body_rel not in vertex_set:
                # Typechecker reports unknown relations with a position.
                continue
            edges[body_rel].add(head)
            key = (body_rel, head)
            if pol == NEGATIVE or polarity.get(key) == NEGATIVE:
                polarity[key] = NEGATIVE
            else:
                polarity.setdefault(key, POSITIVE)

    sccs = _tarjan(vertices, edges)
    sccs.reverse()  # bottom-up: dependencies first
    order = [tuple(sorted(scc)) for scc in sccs]
    scc_of = {rel: i for i, scc in enumerate(order) for rel in scc}

    recursive = []
    for scc in order:
        members = set(scc)
        self_recursive = len(scc) > 1 or any(
            rel in edges[rel] for rel in scc
        )
        recursive.append(self_recursive)
        if not self_recursive:
            continue
        for src in scc:
            for dst in edges[src]:
                if dst in members and polarity.get((src, dst)) == NEGATIVE:
                    raise StratificationError(
                        f"relation {dst} depends on {src} through negation "
                        f"or aggregation inside a recursive cycle "
                        f"({' -> '.join(scc)}); stratified programs must "
                        "negate/aggregate only lower strata"
                    )
    return Stratification(order, scc_of, recursive)
