"""Recursive-descent parser for the control-plane language.

Surface syntax (a DDlog-flavoured dialect)::

    typedef vlan_mode_t = Access | Trunk{native: bit<12>}

    function default_tag(mode: vlan_mode_t): bit<12> {
        match (mode) { Access -> 1, Trunk{n} -> n }
    }

    input relation Port(id: bit<32>, mode: string, tag: bit<12>)
    output relation InVlan(port: bit<32>, vlan: bit<12>)

    InVlan(p, v) :- Port(p, "access", v).
    InVlan(p, v) :- Port(p, mode, v), mode != "access", v > 0.

Bodies may also contain ``var x = expr`` assignments,
``var x = FlatMap(vec_expr)`` iteration, negated atoms ``not R(...)``,
and grouping ``var n = Aggregate((key), count())``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dlog import ast as A
from repro.dlog import types as T
from repro.dlog.lexer import Token, tokenize
from repro.errors import ParseError

AGGREGATE_FUNCS = {
    "count",
    "sum",
    "min",
    "max",
    "avg",
    "group_to_vec",
    "group_to_set",
    "group_to_map",
}


class Parser:
    def __init__(self, text: str, source: str = "<input>"):
        self.source = source
        self.toks: List[Token] = tokenize(text, source)
        self.i = 0

    # -- token helpers ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        i = min(self.i + offset, len(self.toks) - 1)
        return self.toks[i]

    def next(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind != "eof":
            self.i += 1
        return tok

    def at_op(self, op: str) -> bool:
        tok = self.peek()
        return tok.kind == "op" and tok.value == op

    def at_keyword(self, kw: str) -> bool:
        tok = self.peek()
        return tok.kind == "keyword" and tok.value == kw

    def accept_op(self, op: str) -> bool:
        if self.at_op(op):
            self.next()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        tok = self.peek()
        if op == ">" and tok.kind == "op" and tok.value == ">>":
            # Split `>>` so nested generics like Map<string, bit<32>> close.
            tok.value = ">"
            return Token("op", ">", tok.line, tok.column)
        if not self.at_op(op):
            raise self.error(f"expected {op!r}, found {self._describe(tok)}")
        return self.next()

    def expect_keyword(self, kw: str) -> Token:
        tok = self.peek()
        if not self.at_keyword(kw):
            raise self.error(f"expected {kw!r}, found {self._describe(tok)}")
        return self.next()

    def expect_ident(self, what: str = "identifier") -> Token:
        tok = self.peek()
        if tok.kind != "ident":
            raise self.error(f"expected {what}, found {self._describe(tok)}")
        return self.next()

    @staticmethod
    def _describe(tok: Token) -> str:
        if tok.kind == "eof":
            return "end of input"
        return repr(tok.value)

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, self.source, tok.line, tok.column)

    def pos(self) -> A.Pos:
        tok = self.peek()
        return A.Pos(self.source, tok.line, tok.column)

    # -- program ----------------------------------------------------------

    def parse_program(self) -> A.Program:
        typedefs: List[T.TypeDef] = []
        functions: List[A.FunctionDecl] = []
        relations: List[A.RelationDecl] = []
        rules: List[A.Rule] = []
        while self.peek().kind != "eof":
            if self.at_keyword("typedef"):
                typedefs.append(self.parse_typedef())
            elif self.at_keyword("function"):
                functions.append(self.parse_function())
            elif (
                self.at_keyword("input")
                or self.at_keyword("output")
                or self.at_keyword("relation")
            ):
                relations.append(self.parse_relation_decl())
            else:
                rules.append(self.parse_rule())
        return A.Program(typedefs, functions, relations, rules)

    # -- declarations ------------------------------------------------------

    def parse_typedef(self) -> T.TypeDef:
        self.expect_keyword("typedef")
        name = self.expect_ident("typedef name").value
        params: List[str] = []
        if self.accept_op("<"):
            params.append(self.expect_ident("type parameter").value)
            while self.accept_op(","):
                params.append(self.expect_ident("type parameter").value)
            self.expect_op(">")
        self.expect_op("=")
        ctors = [self.parse_constructor()]
        while self.accept_op("|"):
            ctors.append(self.parse_constructor())
        # A "typedef name = type" alias form: single anonymous constructor
        # is not supported; a struct with the typedef's name is the common
        # case and is written "typedef t = T{...}".
        return T.TypeDef(name, params, ctors)

    def parse_constructor(self) -> T.Constructor:
        name = self.expect_ident("constructor name").value
        fields: List[T.Field] = []
        if self.accept_op("{"):
            if not self.at_op("}"):
                fields.append(self.parse_field())
                while self.accept_op(","):
                    fields.append(self.parse_field())
            self.expect_op("}")
        return T.Constructor(name, fields)

    def parse_field(self) -> T.Field:
        name = self.expect_ident("field name").value
        self.expect_op(":")
        return T.Field(name, self.parse_type())

    def parse_function(self) -> A.FunctionDecl:
        pos = self.pos()
        self.expect_keyword("function")
        name = self.expect_ident("function name").value
        self.expect_op("(")
        params: List[Tuple[str, T.Type]] = []
        if not self.at_op(")"):
            params.append(self._parse_param())
            while self.accept_op(","):
                params.append(self._parse_param())
        self.expect_op(")")
        self.expect_op(":")
        ret = self.parse_type()
        self.expect_op("{")
        body = self.parse_expr()
        self.expect_op("}")
        return A.FunctionDecl(name, params, ret, body, pos)

    def _parse_param(self) -> Tuple[str, T.Type]:
        name = self.expect_ident("parameter name").value
        self.expect_op(":")
        return name, self.parse_type()

    def parse_relation_decl(self) -> A.RelationDecl:
        pos = self.pos()
        role = "internal"
        if self.at_keyword("input"):
            self.next()
            role = "input"
        elif self.at_keyword("output"):
            self.next()
            role = "output"
        self.expect_keyword("relation")
        name = self.expect_ident("relation name").value
        self.expect_op("(")
        columns: List[Tuple[str, T.Type]] = []
        if not self.at_op(")"):
            columns.append(self._parse_param())
            while self.accept_op(","):
                columns.append(self._parse_param())
        self.expect_op(")")
        return A.RelationDecl(name, columns, role, pos)

    # -- types --------------------------------------------------------------

    def parse_type(self) -> T.Type:
        tok = self.peek()
        if tok.kind == "keyword":
            if tok.value == "bool":
                self.next()
                return T.BOOL
            if tok.value == "string":
                self.next()
                return T.STRING
            if tok.value == "bigint":
                self.next()
                return T.BIGINT
            if tok.value == "float":
                self.next()
                return T.FLOAT
            if tok.value in ("bit", "signed"):
                self.next()
                self.expect_op("<")
                width_tok = self.peek()
                if width_tok.kind != "int":
                    raise self.error("expected integer width")
                self.next()
                width = width_tok.value[0]
                self.expect_op(">")
                return T.TBit(width) if tok.value == "bit" else T.TSigned(width)
            raise self.error(f"unexpected keyword {tok.value!r} in type")
        if self.accept_op("("):
            elems = [self.parse_type()]
            while self.accept_op(","):
                elems.append(self.parse_type())
            self.expect_op(")")
            return elems[0] if len(elems) == 1 else T.TTuple(elems)
        if tok.kind == "ident":
            name = self.next().value
            args: List[T.Type] = []
            if self.accept_op("<"):
                args.append(self.parse_type())
                while self.accept_op(","):
                    args.append(self.parse_type())
                self.expect_op(">")
            if name == "Vec":
                if len(args) != 1:
                    raise self.error("Vec takes exactly one type parameter")
                return T.TVec(args[0])
            if name == "Map":
                if len(args) != 2:
                    raise self.error("Map takes exactly two type parameters")
                return T.TMap(args[0], args[1])
            return T.TUser(name, args)
        raise self.error(f"expected type, found {self._describe(tok)}")

    # -- rules ---------------------------------------------------------------

    def parse_rule(self) -> A.Rule:
        pos = self.pos()
        head = self.parse_atom()
        body: List[A.BodyItem] = []
        if self.accept_op(":-"):
            body.append(self.parse_body_item())
            while self.accept_op(","):
                body.append(self.parse_body_item())
        self.expect_op(".")
        return A.Rule(head, body, pos)

    def parse_atom(self) -> A.Atom:
        pos = self.pos()
        name_tok = self.expect_ident("relation name")
        self.expect_op("(")
        args: List[A.Pattern] = []
        if not self.at_op(")"):
            args.append(self.parse_arg())
            while self.accept_op(","):
                args.append(self.parse_arg())
        self.expect_op(")")
        return A.Atom(name_tok.value, args, pos)

    def parse_body_item(self) -> A.BodyItem:
        pos = self.pos()
        if self.at_keyword("not"):
            # Negated atom (`not R(...)`) or a boolean guard (`not expr`).
            mark = self.i
            self.next()
            if self._looks_like_atom():
                return A.NegAtom(self.parse_atom(), pos)
            self.i = mark
            return A.Guard(self.parse_expr(), pos)
        if self.at_keyword("var"):
            return self._parse_var_item(pos)
        if self._looks_like_atom():
            return A.AtomItem(self.parse_atom(), pos)
        return A.Guard(self.parse_expr(), pos)

    def _looks_like_atom(self) -> bool:
        """True if the next tokens are ``Uppercase(``, i.e. a relation atom."""
        tok = self.peek()
        nxt = self.peek(1)
        return (
            tok.kind == "ident"
            and tok.value[:1].isupper()
            and nxt.kind == "op"
            and nxt.value == "("
        )

    def _parse_var_item(self, pos: A.Pos) -> A.BodyItem:
        self.expect_keyword("var")
        # Assignment LHS may be a pattern (tuple destructuring), but
        # FlatMap/Aggregate require a simple variable.
        lhs_pattern = self.parse_pattern()
        self.expect_op("=")
        tok = self.peek()
        if tok.kind == "ident" and tok.value == "FlatMap":
            if not isinstance(lhs_pattern, A.PVar):
                raise self.error("FlatMap binds a single variable")
            self.next()
            self.expect_op("(")
            expr = self.parse_expr()
            self.expect_op(")")
            return A.FlatMapItem(lhs_pattern.name, expr, pos)
        if tok.kind == "ident" and tok.value == "Aggregate":
            if not isinstance(lhs_pattern, A.PVar):
                raise self.error("Aggregate binds a single variable")
            self.next()
            self.expect_op("(")
            self.expect_op("(")
            keys: List[str] = []
            if not self.at_op(")"):
                keys.append(self.expect_ident("group-by variable").value)
                while self.accept_op(","):
                    keys.append(self.expect_ident("group-by variable").value)
            self.expect_op(")")
            self.expect_op(",")
            func = self.expect_ident("aggregate function").value
            if func not in AGGREGATE_FUNCS:
                raise self.error(
                    f"unknown aggregate function {func!r}; "
                    f"expected one of {sorted(AGGREGATE_FUNCS)}"
                )
            self.expect_op("(")
            args: List[A.Expr] = []
            if not self.at_op(")"):
                args.append(self.parse_expr())
                while self.accept_op(","):
                    args.append(self.parse_expr())
            self.expect_op(")")
            self.expect_op(")")
            return A.AggregateItem(lhs_pattern.name, keys, func, args, pos)
        return A.Assignment(lhs_pattern, self.parse_expr(), pos)

    def parse_arg(self) -> A.Pattern:
        """Parse one atom argument: a pattern, or an expression constraint."""
        mark = self.i
        try:
            pat = self.parse_pattern()
            if self.at_op(",") or self.at_op(")"):
                return pat
        except ParseError:
            pass
        self.i = mark
        pos = self.pos()
        return A.PExpr(self.parse_expr(), pos)

    # -- patterns -------------------------------------------------------------

    def parse_pattern(self) -> A.Pattern:
        pos = self.pos()
        tok = self.peek()
        if tok.kind == "op" and tok.value == "_":
            self.next()
            return A.PWildcard(pos)
        if tok.kind == "keyword" and tok.value in ("true", "false"):
            self.next()
            return A.PLit(tok.value == "true", pos)
        if tok.kind == "int":
            self.next()
            return A.PLit(tok.value[0], pos)
        if tok.kind == "string":
            self.next()
            return A.PLit(tok.value, pos)
        if tok.kind == "op" and tok.value == "-" and self.peek(1).kind == "int":
            self.next()
            value_tok = self.next()
            return A.PLit(-value_tok.value[0], pos)
        if self.accept_op("("):
            elems = [self.parse_pattern()]
            while self.accept_op(","):
                elems.append(self.parse_pattern())
            self.expect_op(")")
            if len(elems) == 1:
                return elems[0]
            return A.PTuple(elems, pos)
        if tok.kind == "ident":
            name = self.next().value
            if name[:1].isupper():
                fields: List[Tuple[Optional[str], A.Pattern]] = []
                if self.accept_op("{"):
                    if not self.at_op("}"):
                        fields.append(self._parse_struct_pattern_field())
                        while self.accept_op(","):
                            fields.append(self._parse_struct_pattern_field())
                    self.expect_op("}")
                return A.PStruct(name, fields, pos)
            return A.PVar(name, pos)
        raise self.error(f"expected pattern, found {self._describe(tok)}")

    def _parse_struct_pattern_field(self) -> Tuple[Optional[str], A.Pattern]:
        # Named form `field: pat`, or positional `pat`.
        tok = self.peek()
        if (
            tok.kind == "ident"
            and self.peek(1).kind == "op"
            and self.peek(1).value == ":"
        ):
            name = self.next().value
            self.next()  # ':'
            return name, self.parse_pattern()
        return None, self.parse_pattern()

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        left = self._parse_and()
        while self.at_keyword("or"):
            pos = self.pos()
            self.next()
            left = A.BinOp("or", left, self._parse_and(), pos)
        return left

    def _parse_and(self) -> A.Expr:
        left = self._parse_not()
        while self.at_keyword("and"):
            pos = self.pos()
            self.next()
            left = A.BinOp("and", left, self._parse_not(), pos)
        return left

    def _parse_not(self) -> A.Expr:
        if self.at_keyword("not"):
            pos = self.pos()
            self.next()
            return A.UnaryOp("not", self._parse_not(), pos)
        return self._parse_comparison()

    _COMPARISONS = ("==", "!=", "<=", ">=", "<", ">")

    def _parse_comparison(self) -> A.Expr:
        left = self._parse_bitor()
        tok = self.peek()
        if tok.kind == "op" and tok.value in self._COMPARISONS:
            pos = self.pos()
            op = self.next().value
            return A.BinOp(op, left, self._parse_bitor(), pos)
        return left

    def _parse_bitor(self) -> A.Expr:
        left = self._parse_bitxor()
        while self.at_op("|"):
            pos = self.pos()
            self.next()
            left = A.BinOp("|", left, self._parse_bitxor(), pos)
        return left

    def _parse_bitxor(self) -> A.Expr:
        left = self._parse_bitand()
        while self.at_op("^"):
            pos = self.pos()
            self.next()
            left = A.BinOp("^", left, self._parse_bitand(), pos)
        return left

    def _parse_bitand(self) -> A.Expr:
        left = self._parse_shift()
        while self.at_op("&"):
            pos = self.pos()
            self.next()
            left = A.BinOp("&", left, self._parse_shift(), pos)
        return left

    def _parse_shift(self) -> A.Expr:
        left = self._parse_concat()
        while self.at_op("<<") or self.at_op(">>"):
            pos = self.pos()
            op = self.next().value
            left = A.BinOp(op, left, self._parse_concat(), pos)
        return left

    def _parse_concat(self) -> A.Expr:
        left = self._parse_additive()
        while self.at_op("++"):
            pos = self.pos()
            self.next()
            left = A.BinOp("++", left, self._parse_additive(), pos)
        return left

    def _parse_additive(self) -> A.Expr:
        left = self._parse_multiplicative()
        while self.at_op("+") or self.at_op("-"):
            pos = self.pos()
            op = self.next().value
            left = A.BinOp(op, left, self._parse_multiplicative(), pos)
        return left

    def _parse_multiplicative(self) -> A.Expr:
        left = self._parse_unary()
        while self.at_op("*") or self.at_op("/") or self.at_op("%"):
            pos = self.pos()
            op = self.next().value
            left = A.BinOp(op, left, self._parse_unary(), pos)
        return left

    def _parse_unary(self) -> A.Expr:
        pos = self.pos()
        if self.accept_op("-"):
            return A.UnaryOp("-", self._parse_unary(), pos)
        if self.accept_op("~"):
            return A.UnaryOp("~", self._parse_unary(), pos)
        return self._parse_cast()

    def _parse_cast(self) -> A.Expr:
        expr = self._parse_postfix()
        while self.at_keyword("as"):
            pos = self.pos()
            self.next()
            expr = A.Cast(expr, self.parse_type(), pos)
        return expr

    def _is_field_access_ahead(self) -> bool:
        """Distinguish ``e.field`` from a rule-terminating ``.``.

        Field and method names are lowercase by convention (relations and
        constructors are uppercase), and tuple indices are integers; a
        ``.`` followed by anything else terminates the rule.
        """
        nxt = self.peek(1)
        if nxt.kind == "int":
            return True
        return nxt.kind == "ident" and nxt.value[:1].islower()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while self.at_op(".") and self._is_field_access_ahead():
            pos = self.pos()
            self.next()
            tok = self.peek()
            if tok.kind == "int":
                self.next()
                expr = A.Field(expr, str(tok.value[0]), pos)
                continue
            name = self.expect_ident("field or method name").value
            if self.accept_op("("):
                args = [expr]
                if not self.at_op(")"):
                    args.append(self.parse_expr())
                    while self.accept_op(","):
                        args.append(self.parse_expr())
                self.expect_op(")")
                expr = A.Call(name, args, pos)
            else:
                expr = A.Field(expr, name, pos)
        return expr

    def _parse_primary(self) -> A.Expr:
        pos = self.pos()
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            value, width = tok.value
            return A.Lit(value, width, pos)
        if tok.kind == "float":
            self.next()
            return A.Lit(tok.value, None, pos)
        if tok.kind == "string":
            self.next()
            return A.Lit(tok.value, None, pos)
        if tok.kind == "keyword":
            if tok.value == "true":
                self.next()
                return A.Lit(True, None, pos)
            if tok.value == "false":
                self.next()
                return A.Lit(False, None, pos)
            if tok.value == "if":
                return self._parse_if(pos)
            if tok.value == "match":
                return self._parse_match(pos)
            raise self.error(f"unexpected keyword {tok.value!r} in expression")
        if self.accept_op("("):
            elems = [self.parse_expr()]
            while self.accept_op(","):
                elems.append(self.parse_expr())
            self.expect_op(")")
            return elems[0] if len(elems) == 1 else A.TupleExpr(elems, pos)
        if self.accept_op("["):
            elems: List[A.Expr] = []
            if not self.at_op("]"):
                elems.append(self.parse_expr())
                while self.accept_op(","):
                    elems.append(self.parse_expr())
            self.expect_op("]")
            return A.VecExpr(elems, pos)
        if tok.kind == "ident":
            name = self.next().value
            if self.at_op("{") and name[:1].isupper():
                return self._parse_struct_expr(name, pos)
            if self.accept_op("("):
                args: List[A.Expr] = []
                if not self.at_op(")"):
                    args.append(self.parse_expr())
                    while self.accept_op(","):
                        args.append(self.parse_expr())
                self.expect_op(")")
                if name[:1].isupper():
                    return A.StructExpr(name, [(None, a) for a in args], pos)
                return A.Call(name, args, pos)
            if name[:1].isupper():
                # Nullary constructor reference, e.g. `None`.
                return A.StructExpr(name, [], pos)
            return A.Var(name, pos)
        raise self.error(f"expected expression, found {self._describe(tok)}")

    def _parse_struct_expr(self, name: str, pos: A.Pos) -> A.Expr:
        self.expect_op("{")
        fields: List[Tuple[Optional[str], A.Expr]] = []
        if not self.at_op("}"):
            fields.append(self._parse_struct_expr_field())
            while self.accept_op(","):
                fields.append(self._parse_struct_expr_field())
        self.expect_op("}")
        return A.StructExpr(name, fields, pos)

    def _parse_struct_expr_field(self) -> Tuple[Optional[str], A.Expr]:
        tok = self.peek()
        if (
            tok.kind == "ident"
            and self.peek(1).kind == "op"
            and self.peek(1).value == ":"
        ):
            name = self.next().value
            self.next()  # ':'
            return name, self.parse_expr()
        return None, self.parse_expr()

    def _parse_if(self, pos: A.Pos) -> A.Expr:
        self.expect_keyword("if")
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        then = self._parse_braced_or_expr()
        self.expect_keyword("else")
        if self.at_keyword("if"):
            els = self._parse_if(self.pos())
        else:
            els = self._parse_braced_or_expr()
        return A.IfExpr(cond, then, els, pos)

    def _parse_braced_or_expr(self) -> A.Expr:
        if self.accept_op("{"):
            expr = self.parse_expr()
            self.expect_op("}")
            return expr
        return self.parse_expr()

    def _parse_match(self, pos: A.Pos) -> A.Expr:
        self.expect_keyword("match")
        self.expect_op("(")
        subject = self.parse_expr()
        self.expect_op(")")
        self.expect_op("{")
        arms: List[Tuple[A.Pattern, A.Expr]] = []
        while not self.at_op("}"):
            pat = self.parse_pattern()
            self.expect_op("->")
            arms.append((pat, self.parse_expr()))
            if not self.accept_op(","):
                break
        self.expect_op("}")
        if not arms:
            raise self.error("match expression needs at least one arm")
        return A.MatchExpr(subject, arms, pos)


def parse_program(text: str, source: str = "<input>") -> A.Program:
    """Parse a whole program; raise :class:`ParseError` on bad syntax."""
    return Parser(text, source).parse_program()


def parse_type(text: str, source: str = "<type>") -> T.Type:
    """Parse a single type expression (used by codegen round-trips)."""
    parser = Parser(text, source)
    ty = parser.parse_type()
    if parser.peek().kind != "eof":
        raise parser.error("trailing input after type")
    return ty
