"""An incremental Datalog engine — the control plane of the stack.

This package is the reproduction's analog of Differential Datalog
(DDlog), the language the paper uses to program the SDN control plane.
It provides:

* a typed Datalog dialect with structs/unions, vectors, maps, a
  procedural expression language, negation, grouping/aggregation, and
  (stratified) recursion — see :mod:`repro.dlog.parser`;
* **automatic incrementality**: a compiled :class:`~repro.dlog.engine.Program`
  accepts *transactions* of input-relation deltas (inserts/deletes) and
  emits only the corresponding deltas of the output relations, doing
  work proportional to the change, not to the database
  (:mod:`repro.dlog.engine`).

Typical use::

    from repro.dlog import compile_program

    prog = compile_program('''
        input relation Edge(src: bit<32>, dst: bit<32>)
        input relation GivenLabel(node: bit<32>, label: string)
        output relation Label(node: bit<32>, label: string)

        Label(n, l) :- GivenLabel(n, l).
        Label(n2, l) :- Label(n1, l), Edge(n1, n2).
    ''')
    rt = prog.start()
    out = rt.transaction(inserts={"Edge": [(1, 2)], "GivenLabel": [(1, "a")]})
    # out["Label"] == {(1, "a"): +1, (2, "a"): +1}
"""

from repro.dlog.ast import Program as ProgramAst
from repro.dlog.engine import CompiledProgram, Runtime, TxnResult, compile_program
from repro.dlog.parser import parse_program

__all__ = [
    "CompiledProgram",
    "ProgramAst",
    "Runtime",
    "TxnResult",
    "compile_program",
    "parse_program",
]
