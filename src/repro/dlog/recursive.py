"""Incremental evaluation of recursive rule sets (DRed).

A recursive SCC — e.g. the paper's network-labeling program::

    Label(n1, l) :- GivenLabel(n1, l).
    Label(n2, l) :- Label(n1, l), Edge(n1, n2).

cannot be maintained by the counting/delta operators alone: a fact can
support itself through a cycle.  The classical solution, implemented
here, is **delete–rederive (DRed)** with semi-naive evaluation:

1. **Overdelete**: compute everything transitively derivable *using* a
   deleted fact, over the pre-transaction state.
2. **Rederive**: overdeleted facts that still have an alternative
   derivation over the remaining state are put back (top-down head
   binding makes this cheap for the common all-variable heads).
3. **Insert**: semi-naive fixpoint seeded from the inserted facts.

The SCC is wrapped in a :class:`SccNode` so it composes with the
delta-dataflow graph: external relations (lower strata) feed its input
ports, and each member relation's output delta flows onward.

Non-recursive rules whose head happens to live in an SCC (the base case
``Label(n,l) :- GivenLabel(n,l)``) are *not* evaluated here: the engine
plans them as ordinary dataflow and routes their output into the SCC as
a synthetic base relation, so features like aggregation remain usable
in base rules.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.dlog import ast as A
from repro.dlog.dataflow.operators import Node
from repro.dlog.dataflow.zset import ZSet
from repro.dlog.interp import Evaluator
from repro.dlog.plan import (
    _pattern_free_vars,
    classify_args,
    expr_vars,
    pattern_vars,
    pattern_vars_of_atom,
)
from repro.dlog.typecheck import CheckedProgram
from repro.dlog.values import MapValue
from repro.errors import StratificationError


_ADAPTIVE_THRESHOLD = 16


class IndexStore:
    """Row sets per relation with lazily built, incrementally maintained
    hash indexes on position subsets."""

    def __init__(self):
        self.sets: Dict[str, Set[tuple]] = {}
        self.indexes: Dict[Tuple[str, Tuple[int, ...]], Dict[tuple, Set[tuple]]] = {}

    def ensure(self, rel: str) -> Set[tuple]:
        return self.sets.setdefault(rel, set())

    def contains(self, rel: str, row: tuple) -> bool:
        rows = self.sets.get(rel)
        return rows is not None and row in rows

    def add(self, rel: str, row: tuple) -> bool:
        rows = self.ensure(rel)
        if row in rows:
            return False
        rows.add(row)
        for (irel, positions), index in self.indexes.items():
            if irel == rel:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, set()).add(row)
        return True

    def remove(self, rel: str, row: tuple) -> bool:
        rows = self.sets.get(rel)
        if rows is None or row not in rows:
            return False
        rows.discard(row)
        for (irel, positions), index in self.indexes.items():
            if irel == rel:
                key = tuple(row[p] for p in positions)
                bucket = index.get(key)
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del index[key]
        return True

    def lookup(self, rel: str, positions: Tuple[int, ...], key: tuple) -> Iterable[tuple]:
        if not positions:
            return self.sets.get(rel, ())
        index = self.indexes.get((rel, positions))
        if index is None:
            index = {}
            for row in self.sets.get(rel, ()):
                k = tuple(row[p] for p in positions)
                index.setdefault(k, set()).add(row)
            self.indexes[(rel, positions)] = index
        return index.get(key, ())

    def total_rows(self) -> int:
        return sum(len(s) for s in self.sets.values())

    def total_index_entries(self) -> int:
        return sum(
            sum(len(b) for b in idx.values()) for idx in self.indexes.values()
        )


# -- compiled rule steps ---------------------------------------------------------


class _JoinStep:
    __slots__ = ("atom", "positions", "key_exprs", "new_vars", "key_vars")

    def __init__(self, atom, positions, key_exprs, new_vars):
        self.atom = atom
        self.positions = positions
        self.key_exprs = key_exprs
        self.new_vars = new_vars
        # Variables the key needs: if they are all bound, this step can
        # be pulled forward by the adaptive reordering below.
        vars_needed: Set[str] = set()
        for e in key_exprs:
            vars_needed.update(expr_vars(e))
        self.key_vars = frozenset(vars_needed)


class _NegStep:
    __slots__ = ("atom", "positions", "key_exprs", "residual")

    def __init__(self, atom, positions, key_exprs, residual):
        self.atom = atom
        self.positions = positions
        self.key_exprs = key_exprs
        self.residual = residual


class _GuardStep:
    __slots__ = ("expr",)

    def __init__(self, expr):
        self.expr = expr


class _AssignStep:
    __slots__ = ("pattern", "expr")

    def __init__(self, pattern, expr):
        self.pattern = pattern
        self.expr = expr


class _FlatMapStep:
    __slots__ = ("var", "expr")

    def __init__(self, var, expr):
        self.var = var
        self.expr = expr


class _CompiledRule:
    """One rule with precompiled evaluation orders.

    ``variants[v]`` is the step list to use when the seed is:

    * ``None`` — no seed (full evaluation, body order as written);
    * an integer — the body index of the seed atom, whose rows come from
      a delta; the seed atom's pattern match runs first, then the rest;
    * ``"head"`` — top-down rederivation with head variables pre-bound.
    """

    def __init__(self, rule: A.Rule, head_exprs: List[A.Expr]):
        self.rule = rule
        self.head_rel = rule.head.relation
        self.head_exprs = head_exprs
        self.variants: Dict[object, List[object]] = {}
        # Top-down head binding: var name per column, or None if the
        # head column is a computed expression (forces fallback).
        self.head_vars: Optional[List[Tuple[int, str]]] = None
        self.head_consts: List[Tuple[int, object]] = []
        bindable: List[Tuple[int, str]] = []
        ok = True
        for i, e in enumerate(head_exprs):
            if isinstance(e, A.Var):
                bindable.append((i, e.name))
            elif isinstance(e, A.Lit):
                self.head_consts.append((i, e.value))
            else:
                ok = False
        if ok:
            self.head_vars = bindable


class SccEvaluator:
    """DRed-based incremental evaluator for one recursive SCC."""

    def __init__(
        self,
        members: Sequence[str],
        rules: Sequence[A.Rule],
        checked: CheckedProgram,
        evaluator: Optional[Evaluator] = None,
        mode: str = "dred",
    ):
        if mode not in ("dred", "recompute"):
            raise ValueError(f"unknown recursive mode {mode!r}")
        self.mode = mode
        self.members = list(members)
        self.member_set = set(members)
        self.checked = checked
        self.evaluator = evaluator or Evaluator(checked)
        self.state = IndexStore()
        for member in self.members:
            self.state.ensure(member)

        self.rules: List[_CompiledRule] = []
        self.rules_by_head: Dict[str, List[_CompiledRule]] = {m: [] for m in members}
        # external relation -> [(compiled_rule, body_index, polarity)]
        self.ext_watch: Dict[str, List[Tuple[_CompiledRule, int, str]]] = {}
        # member relation -> [(compiled_rule, body_index)]
        self.member_watch: Dict[str, List[Tuple[_CompiledRule, int]]] = {
            m: [] for m in members
        }
        self.externals: List[str] = []
        for rule in rules:
            self._compile_rule(rule)
        self.externals = sorted(self.ext_watch.keys())
        for ext in self.externals:
            self.state.ensure(ext)

    # -- compilation -------------------------------------------------------------

    def _compile_rule(self, rule: A.Rule) -> None:
        compiled = _CompiledRule(rule, self.checked.head_exprs[id(rule)])
        for idx, item in enumerate(rule.body):
            if isinstance(item, A.AggregateItem):
                raise StratificationError(
                    f"rule {rule.name}: aggregation inside recursive SCC "
                    f"({', '.join(self.members)}) is not stratifiable"
                )
            if isinstance(item, A.AtomItem):
                rel = item.atom.relation
                if rel in self.member_set:
                    self.member_watch[rel].append((compiled, idx))
                else:
                    self.ext_watch.setdefault(rel, []).append(
                        (compiled, idx, "positive")
                    )
            elif isinstance(item, A.NegAtom):
                rel = item.atom.relation
                if rel in self.member_set:
                    raise StratificationError(
                        f"rule {rule.name}: negation of {rel} inside its own "
                        "recursive SCC"
                    )
                self.ext_watch.setdefault(rel, []).append(
                    (compiled, idx, "negative")
                )
        compiled.variants[None] = self._compile_variant(rule, None, set())
        for idx, item in enumerate(rule.body):
            if isinstance(item, A.AtomItem):
                seed_bound = set(pattern_vars_of_atom(item.atom))
                compiled.variants[idx] = self._compile_variant(rule, idx, seed_bound)
            elif isinstance(item, A.NegAtom):
                # A negated atom's variables are bound by other atoms;
                # matching the seed row pre-binds them, but the negation
                # itself must still be (re-)checked against the current
                # state, so it is NOT skipped from the step list.
                seed_bound = set(pattern_vars_of_atom(item.atom))
                compiled.variants[idx] = self._compile_variant(rule, None, seed_bound)
        if compiled.head_vars is not None:
            bound = {v for _, v in compiled.head_vars}
            compiled.variants["head"] = self._compile_variant(rule, None, bound)
        self.rules.append(compiled)
        self.rules_by_head[rule.head.relation].append(compiled)

    def _compile_variant(
        self, rule: A.Rule, skip_idx: Optional[int], bound0: Set[str]
    ) -> List[object]:
        """Compile one evaluation order, greedily most-bound-first.

        Body items are conjunctive, so reordering is semantics-
        preserving; choosing the next atom by how many of its argument
        positions are already determined turns e.g. top-down
        rederivation (head variables pre-bound) into index probes
        instead of relation scans.  Guards, assignments, FlatMaps, and
        negations are emitted as soon as their variables are available,
        preserving their relative order.
        """
        steps: List[object] = []
        bound = set(bound0)
        remaining: List[Tuple[int, object]] = [
            (idx, item)
            for idx, item in enumerate(rule.body)
            if idx != skip_idx
        ]
        while remaining:
            emitted = self._emit_ready_non_atoms(rule, remaining, bound, steps)
            if emitted:
                continue
            atom_choices = [
                (i, idx, item.atom)
                for i, (idx, item) in enumerate(remaining)
                if isinstance(item, A.AtomItem)
            ]
            if not atom_choices:
                # Only possible for ill-formed bodies; the typechecker
                # guarantees variables are eventually bound.
                _, item = remaining[0]
                raise StratificationError(
                    f"rule {rule.name}: cannot schedule {item!r}"
                )
            # Score: most keyable positions first; on ties prefer
            # external (input) relations over SCC members — the member
            # is the derived closure and is usually the largest
            # relation in the stratum.
            best = max(
                atom_choices,
                key=lambda c: (
                    len(classify_args(c[2].args, bound)[0]),
                    c[2].relation not in self.member_set,
                    -c[0],
                ),
            )
            i, _, atom = best
            keys, _res = classify_args(atom.args, bound)
            steps.append(
                _JoinStep(
                    atom,
                    tuple(pos for pos, _ in keys),
                    tuple(e for _, e in keys),
                    tuple(
                        v for v in pattern_vars_of_atom(atom) if v not in bound
                    ),
                )
            )
            bound.update(pattern_vars_of_atom(atom))
            del remaining[i]
        return steps

    def _emit_ready_non_atoms(self, rule, remaining, bound, steps) -> bool:
        """Emit the first non-atom item whose variables are bound."""
        for i, (_, item) in enumerate(remaining):
            if isinstance(item, A.Guard):
                if expr_vars(item.expr) <= bound:
                    steps.append(_GuardStep(item.expr))
                    del remaining[i]
                    return True
            elif isinstance(item, A.Assignment):
                if expr_vars(item.expr) <= bound:
                    steps.append(_AssignStep(item.pattern, item.expr))
                    bound.update(pattern_vars(item.pattern))
                    del remaining[i]
                    return True
            elif isinstance(item, A.FlatMapItem):
                if expr_vars(item.expr) <= bound:
                    steps.append(_FlatMapStep(item.var, item.expr))
                    bound.add(item.var)
                    del remaining[i]
                    return True
            elif isinstance(item, A.NegAtom):
                atom = item.atom
                deps = set()
                for arg in atom.args:
                    deps.update(_pattern_free_vars(arg))
                if deps <= bound:
                    keys, residual = classify_args(atom.args, bound)
                    for pos in residual:
                        if _pattern_free_vars(atom.args[pos]):
                            raise StratificationError(
                                f"rule {rule.name}: negated atom "
                                f"{atom.relation} mixes bound variables and "
                                "wildcards in one argument; rewrite as "
                                "separate conditions"
                            )
                    steps.append(
                        _NegStep(
                            atom,
                            tuple(pos for pos, _ in keys),
                            tuple(e for _, e in keys),
                            tuple((pos, atom.args[pos]) for pos in residual),
                        )
                    )
                    del remaining[i]
                    return True
        return False

    # -- step evaluation -----------------------------------------------------------

    def _eval_steps(
        self, steps: List[object], env: Dict[str, object], i: int = 0
    ) -> Iterator[Dict[str, object]]:
        if i == len(steps):
            yield env
            return
        step = steps[i]
        ev = self.evaluator
        if isinstance(step, _JoinStep):
            key = tuple(ev.eval(e, env) for e in step.key_exprs)
            bucket = self.state.lookup(step.atom.relation, step.positions, key)
            # Adaptive ordering: static planning cannot know bucket
            # sizes (e.g. "all labels ell" vs "in-edges of node b").
            # If this bucket is large, pull forward a later join whose
            # key is already computable and whose bucket is smaller.
            if len(bucket) > _ADAPTIVE_THRESHOLD:
                swapped = self._try_pull_forward(steps, i, env, len(bucket))
                if swapped is not None:
                    yield from self._eval_steps(swapped, env, i)
                    return
            for row in bucket:
                env2 = dict(env)
                if self._match_atom(step.atom, row, env2):
                    yield from self._eval_steps(steps, env2, i + 1)
        elif isinstance(step, _NegStep):
            key = tuple(ev.eval(e, env) for e in step.key_exprs)
            blocked = False
            for row in self.state.lookup(step.atom.relation, step.positions, key):
                if all(
                    ev.match(pat, row[pos], {}, bind_always=False)
                    for pos, pat in step.residual
                ):
                    blocked = True
                    break
            if not blocked:
                yield from self._eval_steps(steps, env, i + 1)
        elif isinstance(step, _GuardStep):
            if ev.eval(step.expr, env):
                yield from self._eval_steps(steps, env, i + 1)
        elif isinstance(step, _AssignStep):
            value = ev.eval(step.expr, env)
            env2 = dict(env)
            if ev.match(step.pattern, value, env2, bind_always=True):
                yield from self._eval_steps(steps, env2, i + 1)
        elif isinstance(step, _FlatMapStep):
            value = ev.eval(step.expr, env)
            elems = value.pairs if isinstance(value, MapValue) else value
            for elem in elems:
                env2 = dict(env)
                env2[step.var] = elem
                yield from self._eval_steps(steps, env2, i + 1)
        else:  # pragma: no cover
            raise AssertionError(f"unknown step {step!r}")

    def _try_pull_forward(
        self, steps: List[object], i: int, env: Dict[str, object], current: int
    ) -> Optional[List[object]]:
        """Find a later, already-computable join with a much smaller
        bucket; return the reordered step list, or None.

        Moving a conjunctive step earlier is semantics-preserving: its
        pattern match re-validates every argument, intermediate steps
        never depend on variables it binds (they were planned without
        them), and negations consult the full state regardless of
        position.
        """
        ev = self.evaluator
        bound = env.keys()
        for j in range(i + 1, len(steps)):
            candidate = steps[j]
            if not isinstance(candidate, _JoinStep):
                continue
            if not candidate.positions or not candidate.key_vars <= bound:
                continue
            key = tuple(ev.eval(e, env) for e in candidate.key_exprs)
            size = len(
                self.state.lookup(
                    candidate.atom.relation, candidate.positions, key
                )
            )
            if size * 4 <= current:
                return steps[:i] + [candidate] + steps[i:j] + steps[j + 1 :]
        return None

    def _match_atom(self, atom: A.Atom, row: tuple, env: Dict[str, object]) -> bool:
        ev = self.evaluator
        for pat, value in zip(atom.args, row):
            if not ev.match(pat, value, env, bind_always=False):
                return False
        return True

    def _heads_from_seed(
        self, compiled: _CompiledRule, seed_idx: int, seed_rows: Iterable[tuple]
    ) -> Iterator[tuple]:
        """Evaluate a rule with body atom ``seed_idx`` restricted to rows."""
        steps = compiled.variants[seed_idx]
        atom = compiled.rule.body[seed_idx].atom
        ev = self.evaluator
        for row in seed_rows:
            env = {}
            if not self._match_atom(atom, row, env):
                continue
            for final_env in self._eval_steps(steps, env):
                yield tuple(ev.eval(e, final_env) for e in compiled.head_exprs)

    def _full_heads(self, compiled: _CompiledRule) -> Iterator[tuple]:
        ev = self.evaluator
        for env in self._eval_steps(compiled.variants[None], {}):
            yield tuple(ev.eval(e, env) for e in compiled.head_exprs)

    def _derivable(self, compiled: _CompiledRule, row: tuple) -> Optional[bool]:
        """Top-down: is ``row`` derivable by this rule right now?

        Returns None when the head is not invertible (caller falls back
        to full evaluation)."""
        if compiled.head_vars is None:
            return None
        for pos, const in compiled.head_consts:
            if row[pos] != const:
                return False
        env = {}
        for pos, var in compiled.head_vars:
            if var in env:
                if env[var] != row[pos]:
                    return False
            else:
                env[var] = row[pos]
        for _ in self._eval_steps(compiled.variants["head"], env):
            return True
        return False

    # -- transaction processing -------------------------------------------------------

    def apply(self, ext_deltas: Dict[str, ZSet]) -> Dict[str, ZSet]:
        """Apply external deltas; return per-member output deltas."""
        ins: Dict[str, List[tuple]] = {}
        dels: Dict[str, List[tuple]] = {}
        for rel, delta in ext_deltas.items():
            for row, weight in delta.items():
                if weight > 0:
                    ins.setdefault(rel, []).append(row)
                elif weight < 0:
                    dels.setdefault(rel, []).append(row)

        if self.mode == "recompute":
            return self._apply_recompute(ins, dels)

        out: Dict[str, ZSet] = {m: ZSet() for m in self.members}

        # Phase 1: overdelete (over the pre-transaction state).
        overdeleted: Dict[str, Set[tuple]] = {m: set() for m in self.members}
        frontier: Dict[str, Set[tuple]] = {m: set() for m in self.members}
        for rel, rows in dels.items():
            for compiled, idx, pol in self.ext_watch.get(rel, ()):
                if pol != "positive":
                    continue
                self._overdelete_from(compiled, idx, rows, overdeleted, frontier)
        for rel, rows in ins.items():
            for compiled, idx, pol in self.ext_watch.get(rel, ()):
                if pol != "negative":
                    continue
                self._overdelete_from(compiled, idx, rows, overdeleted, frontier)
        while any(frontier.values()):
            new_frontier: Dict[str, Set[tuple]] = {m: set() for m in self.members}
            for member, rows in frontier.items():
                if not rows:
                    continue
                for compiled, idx in self.member_watch[member]:
                    self._overdelete_from(
                        compiled, idx, rows, overdeleted, new_frontier
                    )
            frontier = new_frontier

        # Apply deletions and external changes.
        for member, rows in overdeleted.items():
            for row in rows:
                if self.state.remove(member, row):
                    out[member].add(row, -1)
        for rel, rows in dels.items():
            for row in rows:
                self.state.remove(rel, row)
        for rel, rows in ins.items():
            for row in rows:
                self.state.add(rel, row)

        # Phase 2: rederive overdeleted facts that survive.  One
        # top-down pass checks each candidate against the remaining
        # state; a worklist then propagates forward from every
        # rederived fact (a rederived fact can only re-enable
        # derivations it participates in, so propagation is complete).
        remaining = {m: set(rows) for m, rows in overdeleted.items()}
        worklist: List[Tuple[str, tuple]] = []
        for member in self.members:
            fallback_heads: Dict[int, Set[tuple]] = {}
            for row in list(remaining[member]):
                ok = False
                for compiled in self.rules_by_head[member]:
                    verdict = self._derivable(compiled, row)
                    if verdict is None:
                        key = id(compiled)
                        if key not in fallback_heads:
                            fallback_heads[key] = set(self._full_heads(compiled))
                        verdict = row in fallback_heads[key]
                    if verdict:
                        ok = True
                        break
                if ok:
                    remaining[member].discard(row)
                    if self.state.add(member, row):
                        out[member].add(row, 1)
                        worklist.append((member, row))
        while worklist:
            member, row = worklist.pop()
            for compiled, idx in self.member_watch[member]:
                head_rel = compiled.head_rel
                for head in self._heads_from_seed(compiled, idx, [row]):
                    if head in remaining[head_rel]:
                        remaining[head_rel].discard(head)
                        if self.state.add(head_rel, head):
                            out[head_rel].add(head, 1)
                            worklist.append((head_rel, head))

        # Phase 3: semi-naive insertion.
        delta: Dict[str, Set[tuple]] = {m: set() for m in self.members}
        for rel, rows in ins.items():
            for compiled, idx, pol in self.ext_watch.get(rel, ()):
                if pol != "positive":
                    continue
                self._insert_from(compiled, idx, rows, out, delta)
        for rel, rows in dels.items():
            for compiled, idx, pol in self.ext_watch.get(rel, ()):
                if pol != "negative":
                    continue
                self._insert_from(compiled, idx, rows, out, delta)
        while any(delta.values()):
            new_delta: Dict[str, Set[tuple]] = {m: set() for m in self.members}
            for member, rows in delta.items():
                if not rows:
                    continue
                for compiled, idx in self.member_watch[member]:
                    self._insert_from(compiled, idx, rows, out, new_delta)
            delta = new_delta

        return out

    def _overdelete_from(self, compiled, idx, rows, overdeleted, frontier) -> None:
        member = compiled.head_rel
        for head in self._heads_from_seed(compiled, idx, rows):
            if head in overdeleted[member]:
                continue
            if not self.state.contains(member, head):
                continue
            overdeleted[member].add(head)
            frontier[member].add(head)

    def _insert_from(self, compiled, idx, rows, out, delta) -> None:
        member = compiled.head_rel
        for head in self._heads_from_seed(compiled, idx, rows):
            if self.state.add(member, head):
                out[member].add(head, 1)
                delta[member].add(head)

    # -- full recomputation (ablation baseline) ------------------------------------------

    def _apply_recompute(self, ins, dels) -> Dict[str, ZSet]:
        old = {m: set(self.state.sets.get(m, ())) for m in self.members}
        for rel, rows in dels.items():
            for row in rows:
                self.state.remove(rel, row)
        for rel, rows in ins.items():
            for row in rows:
                self.state.add(rel, row)
        for member in self.members:
            for row in list(self.state.sets.get(member, ())):
                self.state.remove(member, row)
        # Naive fixpoint: run every rule until nothing new appears.
        changed = True
        while changed:
            changed = False
            for compiled in self.rules:
                for head in list(self._full_heads(compiled)):
                    if self.state.add(compiled.head_rel, head):
                        changed = True
        out: Dict[str, ZSet] = {}
        for member in self.members:
            delta = ZSet()
            new = self.state.sets.get(member, set())
            for row in new - old[member]:
                delta.add(row, 1)
            for row in old[member] - new:
                delta.add(row, -1)
            out[member] = delta
        return out

    # -- introspection ------------------------------------------------------------------

    def extent(self, member: str) -> Set[tuple]:
        return set(self.state.sets.get(member, ()))

    def state_size(self) -> int:
        return self.state.total_rows() + self.state.total_index_entries()


class SccNode(Node):
    """Dataflow node wrapping an :class:`SccEvaluator`.

    Input port *i* carries the delta of ``externals[i]``; the output is
    a dict keyed by member relation name.
    """

    multi_output = True

    def __init__(self, evaluator: SccEvaluator, name: str = ""):
        super().__init__(name or f"scc({','.join(evaluator.members)})")
        self.scc = evaluator
        self.externals = list(evaluator.externals)
        self.n_ports = max(1, len(self.externals))

    def process(self, deltas):
        ext_deltas: Dict[str, ZSet] = {}
        for i, rel in enumerate(self.externals):
            if i < len(deltas) and deltas[i]:
                ext_deltas[rel] = deltas[i]
        return self.scc.apply(ext_deltas)

    def state_size(self) -> int:
        return self.scc.state_size()
