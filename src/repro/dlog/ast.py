"""Abstract syntax for the control-plane language.

A program is a list of declarations:

* ``typedef`` — named structs/unions;
* ``function`` — pure functions usable in expressions;
* ``input relation`` / ``output relation`` / ``relation`` — typed
  relations (inputs are fed by transactions, outputs are observable,
  plain relations are internal views);
* rules — ``Head(args) :- body.``

Rule bodies are sequences of :class:`BodyItem`:

* :class:`Atom` — positive literal; argument *patterns* bind variables;
* :class:`NegAtom` — negated literal (``not R(...)``);
* :class:`Guard` — boolean expression over bound variables;
* :class:`Assignment` — ``var x = expr``;
* :class:`FlatMapItem` — ``var x = FlatMap(expr)`` iterates a Vec/Map;
* :class:`AggregateItem` — ``var x = Aggregate((k1, k2), func(expr))``.

All nodes carry a source position for diagnostics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dlog import types as T


class Pos:
    """Source position (name, 1-based line/column)."""

    __slots__ = ("source", "line", "column")

    def __init__(self, source: str = "<input>", line: int = 0, column: int = 0):
        self.source = source
        self.line = line
        self.column = column

    def __repr__(self):
        return f"{self.source}:{self.line}:{self.column}"


NOPOS = Pos()


class Node:
    """Base AST node."""

    __slots__ = ("pos",)

    def __init__(self, pos: Pos = NOPOS):
        self.pos = pos


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


class Lit(Expr):
    """A literal constant (bool, int, float, or string)."""

    __slots__ = ("value", "width")

    def __init__(self, value, width: Optional[int] = None, pos: Pos = NOPOS):
        super().__init__(pos)
        self.value = value
        self.width = width  # explicit bit width for e.g. 32'd5, else None

    def __repr__(self):
        return f"Lit({self.value!r})"


class Var(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, pos: Pos = NOPOS):
        super().__init__(pos)
        self.name = name

    def __repr__(self):
        return f"Var({self.name})"


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, pos: Pos = NOPOS):
        super().__init__(pos)
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class UnaryOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, pos: Pos = NOPOS):
        super().__init__(pos)
        self.op = op
        self.operand = operand


class Field(Expr):
    """Field access ``e.name`` (structs) or ``e.0`` (tuples)."""

    __slots__ = ("expr", "name")

    def __init__(self, expr: Expr, name: str, pos: Pos = NOPOS):
        super().__init__(pos)
        self.expr = expr
        self.name = name


class Call(Expr):
    """Function call ``f(a, b)``; method sugar ``x.f(a)`` == ``f(x, a)``."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[Expr], pos: Pos = NOPOS):
        super().__init__(pos)
        self.func = func
        self.args = list(args)

    def __repr__(self):
        return f"{self.func}({', '.join(map(repr, self.args))})"


class TupleExpr(Expr):
    __slots__ = ("elems",)

    def __init__(self, elems: Sequence[Expr], pos: Pos = NOPOS):
        super().__init__(pos)
        self.elems = list(elems)


class VecExpr(Expr):
    """Vector literal ``[e1, e2, ...]``."""

    __slots__ = ("elems",)

    def __init__(self, elems: Sequence[Expr], pos: Pos = NOPOS):
        super().__init__(pos)
        self.elems = list(elems)


class StructExpr(Expr):
    """Constructor application ``Ctor{f1: e1, ...}`` or ``Ctor(e1, ...)``.

    ``fields`` is a list of ``(name_or_None, expr)``; names are either
    all present (named form) or all absent (positional form).
    """

    __slots__ = ("ctor", "fields")

    def __init__(
        self,
        ctor: str,
        fields: Sequence[Tuple[Optional[str], Expr]],
        pos: Pos = NOPOS,
    ):
        super().__init__(pos)
        self.ctor = ctor
        self.fields = list(fields)


class IfExpr(Expr):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Expr, els: Expr, pos: Pos = NOPOS):
        super().__init__(pos)
        self.cond = cond
        self.then = then
        self.els = els


class MatchExpr(Expr):
    """``match (e) { pat -> expr, ... }``."""

    __slots__ = ("subject", "arms")

    def __init__(
        self,
        subject: Expr,
        arms: Sequence[Tuple["Pattern", Expr]],
        pos: Pos = NOPOS,
    ):
        super().__init__(pos)
        self.subject = subject
        self.arms = list(arms)


class Cast(Expr):
    """``e as type`` — numeric width/sign conversion."""

    __slots__ = ("expr", "type")

    def __init__(self, expr: Expr, type: T.Type, pos: Pos = NOPOS):
        super().__init__(pos)
        self.expr = expr
        self.type = type


# ---------------------------------------------------------------------------
# Patterns (match arms and atom arguments)
# ---------------------------------------------------------------------------


class Pattern(Node):
    __slots__ = ()


class PWildcard(Pattern):
    __slots__ = ()

    def __repr__(self):
        return "_"


class PVar(Pattern):
    __slots__ = ("name",)

    def __init__(self, name: str, pos: Pos = NOPOS):
        super().__init__(pos)
        self.name = name

    def __repr__(self):
        return self.name


class PLit(Pattern):
    __slots__ = ("value",)

    def __init__(self, value, pos: Pos = NOPOS):
        super().__init__(pos)
        self.value = value

    def __repr__(self):
        return repr(self.value)


class PTuple(Pattern):
    __slots__ = ("elems",)

    def __init__(self, elems: Sequence[Pattern], pos: Pos = NOPOS):
        super().__init__(pos)
        self.elems = list(elems)


class PStruct(Pattern):
    """Constructor pattern ``Ctor{f: pat, ...}`` or ``Ctor(pat, ...)``."""

    __slots__ = ("ctor", "fields")

    def __init__(
        self,
        ctor: str,
        fields: Sequence[Tuple[Optional[str], Pattern]],
        pos: Pos = NOPOS,
    ):
        super().__init__(pos)
        self.ctor = ctor
        self.fields = list(fields)


class PExpr(Pattern):
    """An arbitrary expression used as an atom argument.

    If the expression is evaluable from already-bound variables it acts
    as an equality constraint on that argument position.
    """

    __slots__ = ("expr",)

    def __init__(self, expr: Expr, pos: Pos = NOPOS):
        super().__init__(pos)
        self.expr = expr


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class Atom(Node):
    __slots__ = ("relation", "args")

    def __init__(self, relation: str, args: Sequence[Pattern], pos: Pos = NOPOS):
        super().__init__(pos)
        self.relation = relation
        self.args = list(args)

    def __repr__(self):
        return f"{self.relation}({', '.join(map(repr, self.args))})"


class BodyItem(Node):
    __slots__ = ()


class AtomItem(BodyItem):
    __slots__ = ("atom",)

    def __init__(self, atom: Atom, pos: Pos = NOPOS):
        super().__init__(pos)
        self.atom = atom


class NegAtom(BodyItem):
    __slots__ = ("atom",)

    def __init__(self, atom: Atom, pos: Pos = NOPOS):
        super().__init__(pos)
        self.atom = atom


class Guard(BodyItem):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, pos: Pos = NOPOS):
        super().__init__(pos)
        self.expr = expr


class Assignment(BodyItem):
    """``var x = expr`` — binds a new variable."""

    __slots__ = ("pattern", "expr")

    def __init__(self, pattern: Pattern, expr: Expr, pos: Pos = NOPOS):
        super().__init__(pos)
        self.pattern = pattern
        self.expr = expr


class FlatMapItem(BodyItem):
    """``var x = FlatMap(expr)`` — binds x to each element of a Vec/Map."""

    __slots__ = ("var", "expr")

    def __init__(self, var: str, expr: Expr, pos: Pos = NOPOS):
        super().__init__(pos)
        self.var = var
        self.expr = expr


class AggregateItem(BodyItem):
    """``var out = Aggregate((k1, ...), func(expr...))``.

    Groups the tuples produced by the preceding body items by the key
    variables and applies the aggregate function to each group.  After
    this item, only the key variables and ``out`` remain in scope.
    """

    __slots__ = ("var", "group_by", "func", "args")

    def __init__(
        self,
        var: str,
        group_by: Sequence[str],
        func: str,
        args: Sequence[Expr],
        pos: Pos = NOPOS,
    ):
        super().__init__(pos)
        self.var = var
        self.group_by = list(group_by)
        self.func = func
        self.args = list(args)


class Rule(Node):
    __slots__ = ("head", "body", "name")

    def __init__(
        self,
        head: Atom,
        body: Sequence[BodyItem],
        pos: Pos = NOPOS,
        name: Optional[str] = None,
    ):
        super().__init__(pos)
        self.head = head
        self.body = list(body)
        self.name = name or f"rule@{pos.line}"

    def __repr__(self):
        return f"{self.head!r} :- ..."


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class RelationDecl(Node):
    """``input relation R(col: type, ...)`` etc.

    ``role`` is one of ``"input"``, ``"output"``, ``"internal"``.
    """

    __slots__ = ("name", "columns", "role")

    def __init__(
        self,
        name: str,
        columns: Sequence[Tuple[str, T.Type]],
        role: str,
        pos: Pos = NOPOS,
    ):
        super().__init__(pos)
        self.name = name
        self.columns = list(columns)
        self.role = role

    @property
    def arity(self) -> int:
        return len(self.columns)

    def column_names(self) -> List[str]:
        return [c for c, _ in self.columns]

    def column_types(self) -> List[T.Type]:
        return [t for _, t in self.columns]

    def __repr__(self):
        cols = ", ".join(f"{n}: {t}" for n, t in self.columns)
        return f"{self.role} relation {self.name}({cols})"


class FunctionDecl(Node):
    """``function f(a: T1, b: T2): T3 { expr }``."""

    __slots__ = ("name", "params", "return_type", "body")

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, T.Type]],
        return_type: T.Type,
        body: Expr,
        pos: Pos = NOPOS,
    ):
        super().__init__(pos)
        self.name = name
        self.params = list(params)
        self.return_type = return_type
        self.body = body


class Program(Node):
    """A parsed program: typedefs, functions, relations, and rules."""

    __slots__ = ("typedefs", "functions", "relations", "rules")

    def __init__(
        self,
        typedefs: Sequence[T.TypeDef] = (),
        functions: Sequence[FunctionDecl] = (),
        relations: Sequence[RelationDecl] = (),
        rules: Sequence[Rule] = (),
        pos: Pos = NOPOS,
    ):
        super().__init__(pos)
        self.typedefs = list(typedefs)
        self.functions = list(functions)
        self.relations = list(relations)
        self.rules = list(rules)

    def relation(self, name: str) -> RelationDecl:
        for r in self.relations:
            if r.name == name:
                return r
        raise KeyError(name)

    def merged_with(self, other: "Program") -> "Program":
        """Concatenate two programs (used by Nerpa codegen)."""
        return Program(
            self.typedefs + other.typedefs,
            self.functions + other.functions,
            self.relations + other.relations,
            self.rules + other.rules,
        )
