"""Compilation of rules into incremental dataflow chains.

A rule body is processed left to right, maintaining a *schema* — the
ordered tuple of variables bound so far.  Each body item becomes one
dataflow node:

=====================  =========================================
body item              node
=====================  =========================================
first atom             FlatMap (pattern match over relation rows)
later atom             Join (keyed on the shared/bound positions)
``not R(...)``         AntiJoin (right side projected to the key)
guard                  Filter
``var x = e``          FlatMap (pattern may be refutable)
``var x = FlatMap(e)`` FlatMap
``var x = Aggregate``  Aggregate
=====================  =========================================

The head becomes a Map computing the head expressions, feeding the head
relation's Distinct node.

The classification helpers (:func:`pattern_vars`, :func:`classify_args`)
are shared with the recursive-stratum evaluator, which plans the same
information for its semi-naive join orders.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dlog import ast as A
from repro.dlog.interp import Evaluator
from repro.dlog.typecheck import CheckedProgram, pattern_to_expr
from repro.dlog.dataflow.operators import (
    AggregateNode,
    AntiJoinNode,
    FilterNode,
    FlatMapNode,
    JoinNode,
    MapNode,
    Node,
)
from repro.dlog.stdlib import AGGREGATES
from repro.errors import TypeCheckError
from repro.dlog.values import MapValue


def _tuple_getter(positions: Sequence[int]) -> Callable[[tuple], tuple]:
    """A compiled ``row -> (row[p0], row[p1], ...)`` selector."""
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        p = positions[0]
        return lambda row: (row[p],)
    return itemgetter(*positions)


def _simple_pvar_positions(args: Sequence[A.Pattern]) -> Optional[List[int]]:
    """Positions of PVar args when the atom is a simple projection.

    Returns ``None`` unless every argument is a plain variable or
    wildcard and the variables are pairwise distinct (no implicit
    equality constraints) — the shape whose match never fails and whose
    output is a pure positional projection.
    """
    positions: List[int] = []
    names: Set[str] = set()
    for i, pat in enumerate(args):
        if isinstance(pat, A.PVar):
            if pat.name in names:
                return None
            names.add(pat.name)
            positions.append(i)
        elif not isinstance(pat, A.PWildcard):
            return None
    return positions


class Schema:
    """Ordered variables of an intermediate dataflow record."""

    __slots__ = ("vars", "index")

    def __init__(self, vars: Sequence[str]):
        self.vars = tuple(vars)
        self.index = {v: i for i, v in enumerate(self.vars)}

    def __contains__(self, var: str) -> bool:
        return var in self.index

    def env(self, row: tuple) -> Dict[str, object]:
        return dict(zip(self.vars, row))

    def extended(self, new_vars: Sequence[str]) -> "Schema":
        return Schema(self.vars + tuple(new_vars))

    def __repr__(self):
        return f"Schema{self.vars}"


def pattern_vars(pat: A.Pattern) -> List[str]:
    """Variables bound by a pattern, in left-to-right order."""
    out: List[str] = []

    def walk(p: A.Pattern) -> None:
        if isinstance(p, A.PVar):
            out.append(p.name)
        elif isinstance(p, A.PTuple):
            for sub in p.elems:
                walk(sub)
        elif isinstance(p, A.PStruct):
            for _, sub in p.fields:
                walk(sub)
        # PWildcard, PLit, PExpr bind nothing.

    walk(pat)
    return out


def expr_vars(expr: A.Expr) -> Set[str]:
    """Free variables of an expression."""
    out: Set[str] = set()

    def walk(e: A.Expr) -> None:
        if isinstance(e, A.Var):
            out.add(e.name)
        elif isinstance(e, A.BinOp):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, A.UnaryOp):
            walk(e.operand)
        elif isinstance(e, A.Field):
            walk(e.expr)
        elif isinstance(e, A.Call):
            for a in e.args:
                walk(a)
        elif isinstance(e, (A.TupleExpr, A.VecExpr)):
            for a in e.elems:
                walk(a)
        elif isinstance(e, A.StructExpr):
            for _, a in e.fields:
                walk(a)
        elif isinstance(e, A.IfExpr):
            walk(e.cond)
            walk(e.then)
            walk(e.els)
        elif isinstance(e, A.MatchExpr):
            walk(e.subject)
            for pat, arm in e.arms:
                walk(arm)
                # Pattern-bound vars shadow outer ones; for planning
                # purposes over-approximating free vars is safe.
        elif isinstance(e, A.Cast):
            walk(e.expr)

    walk(expr)
    return out


def _contains_wildcard(pat: A.Pattern) -> bool:
    if isinstance(pat, A.PWildcard):
        return True
    if isinstance(pat, A.PTuple):
        return any(_contains_wildcard(p) for p in pat.elems)
    if isinstance(pat, A.PStruct):
        return any(_contains_wildcard(p) for _, p in pat.fields)
    return False


def _pattern_free_vars(pat: A.Pattern) -> Set[str]:
    """All variables occurring in a pattern, including inside PExpr."""
    out: Set[str] = set(pattern_vars(pat))
    def walk(p: A.Pattern) -> None:
        if isinstance(p, A.PExpr):
            out.update(expr_vars(p.expr))
        elif isinstance(p, A.PTuple):
            for sub in p.elems:
                walk(sub)
        elif isinstance(p, A.PStruct):
            for _, sub in p.fields:
                walk(sub)
    walk(pat)
    return out


def classify_args(
    args: Sequence[A.Pattern], bound: Set[str]
) -> Tuple[List[Tuple[int, A.Expr]], List[int]]:
    """Split atom argument positions into join-key and residual.

    Returns ``(keys, residual)`` where ``keys`` is a list of
    ``(position, expr)`` — the expression computes the expected value of
    that position from already-``bound`` variables — and ``residual``
    lists positions that must be handled by a full pattern match
    (binding new variables or checking complex shapes).
    """
    keys: List[Tuple[int, A.Expr]] = []
    residual: List[int] = []
    for i, pat in enumerate(args):
        expr = _keyable_expr(pat, bound)
        if expr is not None:
            keys.append((i, expr))
        elif isinstance(pat, A.PWildcard):
            continue
        else:
            residual.append(i)
    return keys, residual


def _keyable_expr(pat: A.Pattern, bound: Set[str]) -> Optional[A.Expr]:
    """If the pattern's value is fully determined by ``bound`` variables,
    return the expression computing it; else None."""
    if isinstance(pat, A.PVar):
        return A.Var(pat.name, pat.pos) if pat.name in bound else None
    if isinstance(pat, A.PLit):
        return A.Lit(pat.value, None, pat.pos)
    if isinstance(pat, A.PExpr):
        return pat.expr if expr_vars(pat.expr) <= bound else None
    if isinstance(pat, (A.PTuple, A.PStruct)):
        if _contains_wildcard(pat):
            return None
        if set(_pattern_free_vars(pat)) <= bound:
            try:
                return pattern_to_expr(pat)
            except TypeCheckError:
                return None
        return None
    return None


class RuleChain:
    """The planned dataflow for one rule.

    ``entry`` is ``(relation_name, node)`` for the first node fed by a
    relation; ``taps`` lists additional ``(relation_name, node, port)``
    edges (join/antijoin right inputs); ``nodes`` is every node created
    (in upstream-to-downstream order); ``exit`` is the final node whose
    output rows are the head relation's rows.

    ``static_rows`` is set instead for body-less rules (facts): the rows
    to inject once at startup.
    """

    def __init__(self):
        self.entry: Optional[Tuple[str, Node]] = None
        self.taps: List[Tuple[str, Node, int]] = []
        self.nodes: List[Node] = []
        self.exit: Optional[Node] = None
        self.static_rows: Optional[List[tuple]] = None


class Planner:
    """Compiles the non-recursive rules of a checked program."""

    def __init__(self, checked: CheckedProgram, evaluator: Optional[Evaluator] = None):
        self.checked = checked
        self.evaluator = evaluator or Evaluator(checked)

    # -- expression compilation helpers ------------------------------------

    def compile_expr(self, expr: A.Expr, schema: Schema) -> Callable[[tuple], object]:
        """Compile an expression to a row function (fast path for vars)."""
        if isinstance(expr, A.Var) and expr.name in schema:
            idx = schema.index[expr.name]
            return lambda row: row[idx]
        if isinstance(expr, A.Lit):
            value = expr.value
            return lambda row: value
        evaluator = self.evaluator
        env_of = schema.env
        return lambda row: evaluator.eval(expr, env_of(row))

    def _compile_key(
        self, keys: List[Tuple[int, A.Expr]], schema: Schema
    ) -> Callable[[tuple], tuple]:
        fns = [self.compile_expr(expr, schema) for _, expr in keys]
        if not fns:
            return lambda row: ()
        return lambda row: tuple(fn(row) for fn in fns)

    @staticmethod
    def _row_key(positions: List[int]) -> Callable[[tuple], tuple]:
        if not positions:
            return lambda row: ()
        return lambda row: tuple(row[p] for p in positions)

    # -- rule planning --------------------------------------------------------

    def plan_rule(self, rule: A.Rule) -> RuleChain:
        chain = RuleChain()
        items = rule.body
        head_exprs = self.checked.head_exprs[id(rule)]

        if not any(isinstance(i, (A.AtomItem,)) for i in items):
            chain.static_rows = self._evaluate_static(rule, items, head_exprs)
            return chain

        schema = Schema([])
        current: Optional[Node] = None
        first = True
        for item in items:
            if isinstance(item, A.AtomItem):
                if first:
                    current, schema = self._plan_first_atom(chain, item.atom, rule)
                    first = False
                else:
                    current, schema = self._plan_join(
                        chain, current, schema, item.atom, rule
                    )
            elif isinstance(item, A.NegAtom):
                if first:
                    raise TypeCheckError(
                        f"rule {rule.name}: body cannot start with a negated atom"
                    )
                current = self._plan_antijoin(chain, current, schema, item.atom, rule)
            elif isinstance(item, A.Guard):
                current = self._plan_guard(chain, current, schema, item)
            elif isinstance(item, A.Assignment):
                current, schema = self._plan_assignment(chain, current, schema, item)
            elif isinstance(item, A.FlatMapItem):
                current, schema = self._plan_flatmap(chain, current, schema, item)
            elif isinstance(item, A.AggregateItem):
                current, schema = self._plan_aggregate(chain, current, schema, item)
            else:  # pragma: no cover
                raise TypeCheckError(f"rule {rule.name}: unsupported item {item!r}")

        head_fns = [self.compile_expr(e, schema) for e in head_exprs]
        head_node = MapNode(
            lambda row, fns=tuple(head_fns): tuple(fn(row) for fn in fns),
            name=f"{rule.name}:head",
        )
        if all(isinstance(e, A.Var) and e.name in schema for e in head_exprs):
            head_node.fast_fn = _tuple_getter(
                [schema.index[e.name] for e in head_exprs]
            )
        assert current is not None
        current.connect_to(head_node, 0)
        chain.nodes.append(head_node)
        chain.exit = head_node
        return chain

    def _evaluate_static(self, rule, items, head_exprs) -> List[tuple]:
        """Evaluate a body with no atoms (a fact) at plan time."""
        evaluator = self.evaluator
        envs: List[Dict[str, object]] = [{}]
        for item in items:
            if isinstance(item, A.Guard):
                envs = [e for e in envs if evaluator.eval(item.expr, e)]
            elif isinstance(item, A.Assignment):
                kept = []
                for env in envs:
                    value = evaluator.eval(item.expr, env)
                    env2 = dict(env)
                    if evaluator.match(item.pattern, value, env2, bind_always=True):
                        kept.append(env2)
                envs = kept
            elif isinstance(item, A.FlatMapItem):
                expanded = []
                for env in envs:
                    value = evaluator.eval(item.expr, env)
                    elems = value.pairs if isinstance(value, MapValue) else value
                    for elem in elems:
                        env2 = dict(env)
                        env2[item.var] = elem
                        expanded.append(env2)
                envs = expanded
            else:
                raise TypeCheckError(
                    f"rule {rule.name}: {type(item).__name__} requires at "
                    "least one preceding relation atom"
                )
        return [
            tuple(evaluator.eval(e, env) for e in head_exprs) for env in envs
        ]

    def _match_row_fn(
        self,
        args: Sequence[A.Pattern],
        out_vars: Sequence[str],
        schema_vars: Sequence[str],
    ):
        """Build fn(base_env_pairs, row) used by first-atom and join merges."""
        evaluator = self.evaluator
        args = tuple(args)
        out_vars = tuple(out_vars)

        def match(env: Dict[str, object], row: tuple) -> Optional[tuple]:
            for pat, value in zip(args, row):
                if not evaluator.match(pat, value, env, bind_always=False):
                    return None
            return tuple(env[v] for v in out_vars)

        return match

    def _plan_first_atom(self, chain: RuleChain, atom: A.Atom, rule: A.Rule):
        new_vars = _dedup(pattern_vars_of_atom(atom))
        schema = Schema(new_vars)
        match = self._match_row_fn(atom.args, schema.vars, ())

        def expand(row, match=match):
            out = match({}, row)
            return (out,) if out is not None else ()

        node = FlatMapNode(expand, name=f"{rule.name}:scan({atom.relation})")
        # Simple scans (all-distinct plain variables, maybe wildcards)
        # are pure projections: give the bulk path a compiled selector,
        # or forward the delta untouched when it is the full row.
        positions = _simple_pvar_positions(atom.args)
        if positions is not None:
            if len(positions) == len(atom.args):
                node.bulk_identity = True
            else:
                node.bulk_map = _tuple_getter(positions)
        chain.entry = (atom.relation, node)
        chain.nodes.append(node)
        return node, schema

    def _plan_join(
        self, chain: RuleChain, current: Node, schema: Schema, atom: A.Atom, rule: A.Rule
    ):
        bound = set(schema.vars)
        keys, _residual = classify_args(atom.args, bound)
        left_key = self._compile_key(keys, schema)
        right_key = self._row_key([pos for pos, _ in keys])

        new_vars = [v for v in _dedup(pattern_vars_of_atom(atom)) if v not in bound]
        out_schema = schema.extended(new_vars)
        match = self._match_row_fn(atom.args, out_schema.vars, schema.vars)
        lvars = schema.vars

        def merge(l_row, r_row, lvars=lvars, match=match):
            return match(dict(zip(lvars, l_row)), r_row)

        node = JoinNode(
            left_key, right_key, merge, name=f"{rule.name}:join({atom.relation})"
        )
        # When every residual argument is a fresh, distinct plain
        # variable, the pattern match can never fail (key equality
        # already covers the keyable positions) and the merged row is a
        # pure concatenation — compile it for the bulk path.
        fresh: Set[str] = set()
        simple_residual = True
        for pos in _residual:
            pat = atom.args[pos]
            if (
                not isinstance(pat, A.PVar)
                or pat.name in fresh
                or pat.name in bound
            ):
                simple_residual = False
                break
            fresh.add(pat.name)
        if simple_residual:
            if _residual:
                sel = _tuple_getter(list(_residual))
                node.fast_merge = lambda l_row, r_row, sel=sel: l_row + sel(r_row)
            else:
                node.fast_merge = lambda l_row, r_row: l_row
        current.connect_to(node, 0)
        chain.taps.append((atom.relation, node, 1))
        chain.nodes.append(node)
        return node, out_schema

    def _plan_antijoin(
        self, chain: RuleChain, current: Node, schema: Schema, atom: A.Atom, rule: A.Rule
    ):
        bound = set(schema.vars)
        keys, residual = classify_args(atom.args, bound)
        # Residual positions must be checkable on the right side alone
        # (closed patterns, possibly with wildcards); the typechecker has
        # already rejected new variables under negation.
        checks: List[Tuple[int, A.Pattern]] = []
        for pos in residual:
            pat = atom.args[pos]
            if _pattern_free_vars(pat):
                raise TypeCheckError(
                    f"rule {rule.name}: negated atom {atom.relation} mixes "
                    f"bound variables and wildcards in one argument; "
                    "rewrite the argument as separate conditions"
                )
            checks.append((pos, pat))

        key_positions = [pos for pos, _ in keys]
        evaluator = self.evaluator

        def project(row, checks=tuple(checks), positions=tuple(key_positions)):
            for pos, pat in checks:
                if not evaluator.match(pat, row[pos], {}, bind_always=False):
                    return ()
            return (tuple(row[p] for p in positions),)

        projector = FlatMapNode(
            project, name=f"{rule.name}:negkey({atom.relation})"
        )
        if not checks:
            projector.bulk_map = _tuple_getter(list(key_positions))
        left_key = self._compile_key(keys, schema)
        node = AntiJoinNode(left_key, name=f"{rule.name}:antijoin({atom.relation})")
        current.connect_to(node, 0)
        projector.connect_to(node, 1)
        chain.taps.append((atom.relation, projector, 0))
        chain.nodes.append(projector)
        chain.nodes.append(node)
        return node

    def _plan_guard(self, chain: RuleChain, current: Node, schema: Schema, item: A.Guard):
        fn = self.compile_expr(item.expr, schema)
        node = FilterNode(lambda row, fn=fn: bool(fn(row)), name="guard")
        current.connect_to(node, 0)
        chain.nodes.append(node)
        return node

    def _plan_assignment(
        self, chain: RuleChain, current: Node, schema: Schema, item: A.Assignment
    ):
        new_vars = _dedup(pattern_vars(item.pattern))
        out_schema = schema.extended(new_vars)
        fn = self.compile_expr(item.expr, schema)
        evaluator = self.evaluator
        pattern = item.pattern
        svars = schema.vars
        ovars = out_schema.vars

        def expand(row):
            env = dict(zip(svars, row))
            if evaluator.match(pattern, fn(row), env, bind_always=True):
                return (tuple(env[v] for v in ovars),)
            return ()

        node = FlatMapNode(expand, name="assign")
        current.connect_to(node, 0)
        chain.nodes.append(node)
        return node, out_schema

    def _plan_flatmap(
        self, chain: RuleChain, current: Node, schema: Schema, item: A.FlatMapItem
    ):
        out_schema = schema.extended([item.var])
        fn = self.compile_expr(item.expr, schema)

        def expand(row):
            value = fn(row)
            elems = value.pairs if isinstance(value, MapValue) else value
            return tuple(row + (elem,) for elem in elems)

        node = FlatMapNode(expand, name=f"flatmap({item.var})")
        current.connect_to(node, 0)
        chain.nodes.append(node)
        return node, out_schema

    def _plan_aggregate(
        self, chain: RuleChain, current: Node, schema: Schema, item: A.AggregateItem
    ):
        positions = [schema.index[k] for k in item.group_by]
        key_fn = self._row_key(positions)
        arg_fns = [self.compile_expr(a, schema) for a in item.args]

        def args_fn(row, fns=tuple(arg_fns)):
            return tuple(fn(row) for fn in fns)

        agg = AGGREGATES[item.func]
        node = AggregateNode(
            key_fn, args_fn, agg.fn, name=f"aggregate({item.func})"
        )
        current.connect_to(node, 0)
        chain.nodes.append(node)
        out_schema = Schema(list(item.group_by) + [item.var])
        return node, out_schema


def pattern_vars_of_atom(atom: A.Atom) -> List[str]:
    out: List[str] = []
    for arg in atom.args:
        out.extend(pattern_vars(arg))
    return out


def _dedup(names: Sequence[str]) -> List[str]:
    seen: Set[str] = set()
    out: List[str] = []
    for n in names:
        if n not in seen:
            seen.add(n)
            out.append(n)
    return out
