"""Standard header codecs for tests, workloads, and examples.

These helpers build and dissect common frames (Ethernet, 802.1Q,
IPv4, ARP, UDP) as raw bytes, independently of any P4 program — the
behavioral simulator parses packets with the *program's* parser; these
are for constructing realistic inputs and asserting on outputs.
"""

from __future__ import annotations

from typing import Optional

from repro.p4.packet import BitReader, BitWriter

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100

IPPROTO_TCP = 6
IPPROTO_UDP = 17


def mac_to_int(mac: str) -> int:
    """``"aa:bb:cc:dd:ee:ff"`` -> 48-bit integer."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC {mac!r}")
    return int("".join(parts), 16)


def int_to_mac(value: int) -> str:
    raw = f"{value:012x}"
    return ":".join(raw[i : i + 2] for i in range(0, 12, 2))


def ip_to_int(ip: str) -> int:
    parts = [int(p) for p in ip.split(".")]
    if len(parts) != 4 or any(not 0 <= p <= 255 for p in parts):
        raise ValueError(f"bad IPv4 address {ip!r}")
    return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]


def int_to_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ethernet(
    dst: str,
    src: str,
    ethertype: int = ETHERTYPE_IPV4,
    payload: bytes = b"",
    vlan: Optional[int] = None,
    pcp: int = 0,
) -> bytes:
    """Build an Ethernet frame, optionally 802.1Q tagged."""
    w = BitWriter()
    w.write(mac_to_int(dst), 48)
    w.write(mac_to_int(src), 48)
    if vlan is not None:
        w.write(ETHERTYPE_VLAN, 16)
        w.write(pcp, 3)
        w.write(0, 1)  # DEI
        w.write(vlan, 12)
    w.write(ethertype, 16)
    frame = w.to_bytes() + payload
    return frame


def ipv4(
    src: str,
    dst: str,
    proto: int = IPPROTO_UDP,
    payload: bytes = b"",
    ttl: int = 64,
) -> bytes:
    """Build an IPv4 packet (header checksum computed)."""
    total_len = 20 + len(payload)
    w = BitWriter()
    w.write(4, 4)  # version
    w.write(5, 4)  # IHL
    w.write(0, 8)  # DSCP/ECN
    w.write(total_len, 16)
    w.write(0, 16)  # identification
    w.write(0, 3)  # flags
    w.write(0, 13)  # fragment offset
    w.write(ttl, 8)
    w.write(proto, 8)
    w.write(0, 16)  # checksum placeholder
    w.write(ip_to_int(src), 32)
    w.write(ip_to_int(dst), 32)
    header = bytearray(w.to_bytes())
    checksum = _ipv4_checksum(bytes(header))
    header[10] = checksum >> 8
    header[11] = checksum & 0xFF
    return bytes(header) + payload


def udp(sport: int, dport: int, payload: bytes = b"") -> bytes:
    w = BitWriter()
    w.write(sport, 16)
    w.write(dport, 16)
    w.write(8 + len(payload), 16)
    w.write(0, 16)  # checksum optional in IPv4
    return w.to_bytes() + payload


def arp_request(sender_mac: str, sender_ip: str, target_ip: str) -> bytes:
    w = BitWriter()
    w.write(1, 16)  # htype ethernet
    w.write(ETHERTYPE_IPV4, 16)
    w.write(6, 8)
    w.write(4, 8)
    w.write(1, 16)  # opcode request
    w.write(mac_to_int(sender_mac), 48)
    w.write(ip_to_int(sender_ip), 32)
    w.write(0, 48)
    w.write(ip_to_int(target_ip), 32)
    return w.to_bytes()


def _ipv4_checksum(header: bytes) -> int:
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class EthernetView:
    """Dissect the Ethernet (+optional 802.1Q) prefix of a frame."""

    def __init__(self, frame: bytes):
        r = BitReader(frame)
        self.dst = int_to_mac(r.read(48))
        self.src = int_to_mac(r.read(48))
        ethertype = r.read(16)
        if ethertype == ETHERTYPE_VLAN:
            self.pcp = r.read(3)
            r.read(1)
            self.vlan: Optional[int] = r.read(12)
            ethertype = r.read(16)
        else:
            self.pcp = 0
            self.vlan = None
        self.ethertype = ethertype
        self.payload = r.rest()
