"""Compilation of a parsed P4 program into an executable pipeline.

``compile_p4`` validates the program against the subset's rules (every
path resolves, widths are known, table keys/actions exist, digest
structs match their emitted fields) and produces a :class:`Pipeline`:
the parser state machine, the ingress/egress controls, and the
:class:`~repro.p4.p4info.P4Info` runtime contract.

Role conventions (v1model-flavored):

* exactly one ``parser``; its ``out`` struct parameter is the headers
  struct; a parameter of type ``standard_metadata_t`` (if any) is the
  standard metadata; the remaining ``inout`` struct is user metadata;
* one or two ``control`` declarations: the first is ingress, the
  optional second is egress.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import DataPlaneError
from repro.p4 import ast as P
from repro.p4.p4info import ActionParam, MatchField, P4Info
from repro.p4.parser import parse_p4

STANDARD_METADATA = "standard_metadata_t"

# Fields of the built-in standard metadata and their widths.  Port ids
# are 16 bits (PSA-style) rather than v1model's 9: the paper's own
# scalability evaluation adds 2,000 ports, which cannot exist in a
# 9-bit port space.
STD_FIELDS: Dict[str, int] = {
    "ingress_port": 16,
    "egress_spec": 16,
    "egress_port": 16,
    "mcast_grp": 16,
    "instance_type": 32,
    "packet_length": 32,
}


class ControlBinding:
    """Maps a control's parameter names onto runtime roles."""

    def __init__(self, headers_param: str, meta_param: Optional[str], std_param: Optional[str]):
        self.headers_param = headers_param
        self.meta_param = meta_param
        self.std_param = std_param


class Pipeline:
    """A validated, executable P4 program."""

    def __init__(
        self,
        program: P.P4Program,
        parser: P.ParserDecl,
        ingress: P.ControlDecl,
        egress: Optional[P.ControlDecl],
        headers_struct: P.StructDecl,
        meta_struct: Optional[P.StructDecl],
        parser_binding: ControlBinding,
        ingress_binding: ControlBinding,
        egress_binding: Optional[ControlBinding],
        p4info: P4Info,
    ):
        self.program = program
        self.parser = parser
        self.ingress = ingress
        self.egress = egress
        self.headers_struct = headers_struct
        self.meta_struct = meta_struct
        self.parser_binding = parser_binding
        self.ingress_binding = ingress_binding
        self.egress_binding = egress_binding
        self.p4info = p4info

    def header_decl(self, name: str) -> P.HeaderDecl:
        try:
            return self.program.headers[name]
        except KeyError:
            raise DataPlaneError(f"unknown header type {name!r}") from None


def _err(pos, message) -> DataPlaneError:
    return DataPlaneError(f"{pos}: {message}")


class _Compiler:
    def __init__(self, program: P.P4Program):
        self.program = program
        self.p4info = P4Info()

    def compile(self) -> Pipeline:
        program = self.program
        if len(program.parsers) != 1:
            raise DataPlaneError(
                f"expected exactly one parser, found {len(program.parsers)}"
            )
        parser = next(iter(program.parsers.values()))
        controls = list(program.controls.values())
        if not 1 <= len(controls) <= 2:
            raise DataPlaneError(
                f"expected one or two controls (ingress[, egress]), "
                f"found {len(controls)}"
            )
        ingress = controls[0]
        egress = controls[1] if len(controls) > 1 else None

        headers_struct, parser_binding = self._bind_parser(parser)
        meta_struct = self._find_meta_struct(parser, headers_struct)
        ingress_binding = self._bind_control(ingress, headers_struct, meta_struct)
        egress_binding = (
            self._bind_control(egress, headers_struct, meta_struct)
            if egress is not None
            else None
        )

        self._validate_parser(parser, parser_binding, headers_struct)
        for control, binding in (
            [(ingress, ingress_binding)]
            + ([(egress, egress_binding)] if egress else [])
        ):
            self._validate_control(control, binding, headers_struct, meta_struct)

        return Pipeline(
            program,
            parser,
            ingress,
            egress,
            headers_struct,
            meta_struct,
            parser_binding,
            ingress_binding,
            egress_binding,
            self.p4info,
        )

    # -- binding ---------------------------------------------------------------

    def _struct_of(self, ty: P.P4Type) -> Optional[P.StructDecl]:
        if isinstance(ty, P.NamedType):
            return self.program.structs.get(ty.name)
        return None

    def _bind_parser(self, parser: P.ParserDecl) -> Tuple[P.StructDecl, ControlBinding]:
        headers_param = None
        headers_struct = None
        meta_param = None
        std_param = None
        for param in parser.params:
            if isinstance(param.type, P.NamedType) and param.type.name == STANDARD_METADATA:
                std_param = param.name
            elif param.direction == "out":
                struct = self._struct_of(param.type)
                if struct is None:
                    raise DataPlaneError(
                        f"parser 'out' parameter {param.name} must be a struct"
                    )
                headers_param, headers_struct = param.name, struct
            elif param.direction == "inout":
                meta_param = param.name
        if headers_struct is None:
            raise DataPlaneError("parser needs an 'out' headers struct parameter")
        return headers_struct, ControlBinding(headers_param, meta_param, std_param)

    def _find_meta_struct(
        self, parser: P.ParserDecl, headers_struct: P.StructDecl
    ) -> Optional[P.StructDecl]:
        for param in parser.params:
            if param.direction == "inout":
                struct = self._struct_of(param.type)
                if struct is not None and struct.name != headers_struct.name:
                    return struct
        # Fall back to any control's metadata parameter.
        for control in self.program.controls.values():
            for param in control.params:
                struct = self._struct_of(param.type)
                if (
                    struct is not None
                    and struct.name != headers_struct.name
                    and not (
                        isinstance(param.type, P.NamedType)
                        and param.type.name == STANDARD_METADATA
                    )
                ):
                    return struct
        return None

    def _bind_control(
        self,
        control: P.ControlDecl,
        headers_struct: P.StructDecl,
        meta_struct: Optional[P.StructDecl],
    ) -> ControlBinding:
        headers_param = None
        meta_param = None
        std_param = None
        for param in control.params:
            if isinstance(param.type, P.NamedType):
                if param.type.name == STANDARD_METADATA:
                    std_param = param.name
                elif param.type.name == headers_struct.name:
                    headers_param = param.name
                elif meta_struct is not None and param.type.name == meta_struct.name:
                    meta_param = param.name
        if headers_param is None:
            raise DataPlaneError(
                f"control {control.name} has no headers parameter of type "
                f"{headers_struct.name}"
            )
        return ControlBinding(headers_param, meta_param, std_param)

    # -- path typing ---------------------------------------------------------------

    def path_width(
        self,
        path: P.Path,
        binding: ControlBinding,
        headers_struct: P.StructDecl,
        meta_struct: Optional[P.StructDecl],
        action_params: Optional[Dict[str, P.P4Type]] = None,
    ) -> Optional[int]:
        """Width in bits of the value at ``path`` (None for bool)."""
        root = path.parts[0]
        if action_params and root in action_params and len(path.parts) == 1:
            ty = action_params[root]
            if isinstance(ty, P.BitType):
                return ty.width
            if isinstance(ty, P.BoolType):
                return None
            raise _err(path.pos, f"action parameter {root} must be bit<N> or bool")
        if binding.std_param is not None and root == binding.std_param:
            if len(path.parts) != 2 or path.parts[1] not in STD_FIELDS:
                raise _err(path.pos, f"unknown standard metadata field {path!r}")
            return STD_FIELDS[path.parts[1]]
        if root == binding.headers_param:
            return self._resolve_struct_path(path, 1, headers_struct)
        if binding.meta_param is not None and root == binding.meta_param:
            if meta_struct is None:
                raise _err(path.pos, "program has no metadata struct")
            return self._resolve_struct_path(path, 1, meta_struct)
        raise _err(path.pos, f"unknown name {root!r} in {path!r}")

    def _resolve_struct_path(
        self, path: P.Path, index: int, struct: P.StructDecl
    ) -> Optional[int]:
        if index >= len(path.parts):
            raise _err(path.pos, f"path {path!r} names a struct, not a field")
        part = path.parts[index]
        try:
            field = struct.field(part)
        except KeyError:
            raise _err(
                path.pos, f"{struct.name} has no field {part!r}"
            ) from None
        ty = field.type
        if isinstance(ty, P.BitType):
            if index != len(path.parts) - 1:
                raise _err(path.pos, f"{path!r}: {part} is a scalar field")
            return ty.width
        if isinstance(ty, P.BoolType):
            if index != len(path.parts) - 1:
                raise _err(path.pos, f"{path!r}: {part} is a scalar field")
            return None
        if isinstance(ty, P.NamedType):
            if ty.name in self.program.headers:
                header = self.program.headers[ty.name]
                if index == len(path.parts) - 1:
                    raise _err(
                        path.pos,
                        f"path {path!r} names header {ty.name}, not a field",
                    )
                fname = path.parts[index + 1]
                try:
                    hfield = header.field(fname)
                except KeyError:
                    raise _err(
                        path.pos, f"header {ty.name} has no field {fname!r}"
                    ) from None
                if index + 1 != len(path.parts) - 1:
                    raise _err(path.pos, f"{path!r}: too many components")
                if isinstance(hfield.type, P.BitType):
                    return hfield.type.width
                if isinstance(hfield.type, P.BoolType):
                    return None
                raise _err(path.pos, "header fields must be bit<N> or bool")
            if ty.name in self.program.structs:
                return self._resolve_struct_path(
                    path, index + 1, self.program.structs[ty.name]
                )
        raise _err(path.pos, f"cannot resolve {path!r}")

    def header_path(self, path: P.Path, binding: ControlBinding) -> Optional[str]:
        """If ``path`` names a header member of the headers struct
        (``hdr.vlan``), return the header type name."""
        if path.parts[0] != binding.headers_param or len(path.parts) != 2:
            return None
        return path.parts[1]

    # -- validation --------------------------------------------------------------------

    def _validate_parser(self, parser, binding, headers_struct) -> None:
        for state in parser.states.values():
            for stmt in state.statements:
                target = stmt.target
                if target.parts[0] != binding.headers_param or len(target.parts) != 2:
                    raise _err(
                        stmt.pos, f"extract target must be hdr.<member>, got {target!r}"
                    )
                member = target.parts[1]
                try:
                    field = headers_struct.field(member)
                except KeyError:
                    raise _err(
                        stmt.pos,
                        f"{headers_struct.name} has no member {member!r}",
                    ) from None
                if (
                    not isinstance(field.type, P.NamedType)
                    or field.type.name not in self.program.headers
                ):
                    raise _err(stmt.pos, f"{member} is not a header")
            transition = state.transition
            targets = (
                [transition.target]
                if transition.target
                else [c.state for c in transition.cases]
            )
            for target_state in targets:
                if target_state in ("accept", "reject"):
                    continue
                if target_state not in parser.states:
                    raise _err(
                        transition.pos, f"transition to unknown state {target_state!r}"
                    )
            if transition.select_expr is not None:
                self._validate_expr(
                    transition.select_expr, binding, headers_struct, None
                )

    def _validate_control(self, control, binding, headers_struct, meta_struct) -> None:
        for action in control.actions.values():
            params = {name: ty for ty, name in action.params}
            param_info = []
            for ty, name in action.params:
                if not isinstance(ty, P.BitType):
                    raise _err(
                        action.pos,
                        f"action {action.name}: parameter {name} must be bit<N>",
                    )
                param_info.append(ActionParam(name, ty.width))
            self.p4info.add_action(action.name, param_info)
            self._validate_block(
                action.body, control, binding, headers_struct, meta_struct, params
            )
        self.p4info.add_action("NoAction", [])

        for table in control.tables.values():
            match_fields = []
            for key in table.keys:
                width = self.path_width(
                    key.expr, binding, headers_struct, meta_struct
                )
                if width is None:
                    raise _err(table.pos, f"table key {key.expr!r} must be bit<N>")
                match_fields.append(
                    MatchField(repr(key.expr), width, key.match_kind)
                )
            for action_name in table.actions:
                if action_name != "NoAction" and action_name not in control.actions:
                    raise _err(
                        table.pos,
                        f"table {table.name} references unknown action "
                        f"{action_name!r}",
                    )
            default = table.default_action
            default_params: List[int] = []
            if default is not None and default != "NoAction":
                if default not in control.actions:
                    raise _err(
                        table.pos,
                        f"default_action {default!r} is not an action",
                    )
                want = len(control.actions[default].params)
                if len(table.default_args) != want:
                    raise _err(
                        table.pos,
                        f"default_action {default} expects {want} argument(s)",
                    )
                for arg in table.default_args:
                    default_params.append(self._const_value(arg))
            self.p4info.add_table(
                table.name,
                match_fields,
                list(table.actions),
                default,
                table.size,
                default_params,
            )

        self._validate_block(
            control.apply_block, control, binding, headers_struct, meta_struct, None
        )

    def _validate_block(
        self, block, control, binding, headers_struct, meta_struct, action_params
    ) -> None:
        for stmt in block:
            if isinstance(stmt, P.AssignStmt):
                self.path_width(
                    stmt.target, binding, headers_struct, meta_struct, action_params
                )
                self._validate_expr(
                    stmt.value, binding, headers_struct, meta_struct, action_params
                )
            elif isinstance(stmt, P.ApplyTableStmt):
                if stmt.table not in control.tables:
                    raise _err(stmt.pos, f"unknown table {stmt.table!r}")
            elif isinstance(stmt, P.CallActionStmt):
                if stmt.action not in control.actions:
                    raise _err(stmt.pos, f"unknown action {stmt.action!r}")
                want = len(control.actions[stmt.action].params)
                if len(stmt.args) != want:
                    raise _err(
                        stmt.pos,
                        f"action {stmt.action} expects {want} argument(s)",
                    )
                for arg in stmt.args:
                    self._validate_expr(
                        arg, binding, headers_struct, meta_struct, action_params
                    )
            elif isinstance(stmt, P.IfStmt):
                self._validate_expr(
                    stmt.cond, binding, headers_struct, meta_struct, action_params
                )
                self._validate_block(
                    stmt.then_block, control, binding, headers_struct,
                    meta_struct, action_params,
                )
                self._validate_block(
                    stmt.else_block, control, binding, headers_struct,
                    meta_struct, action_params,
                )
            elif isinstance(stmt, P.DigestStmt):
                self._validate_digest(
                    stmt, binding, headers_struct, meta_struct, action_params
                )
            elif isinstance(stmt, P.SetValidStmt):
                if self.header_path(stmt.header, binding) is None:
                    raise _err(
                        stmt.pos, f"setValid target {stmt.header!r} is not a header"
                    )
            elif isinstance(stmt, P.ClonePortStmt):
                self._validate_expr(
                    stmt.port, binding, headers_struct, meta_struct, action_params
                )
            elif isinstance(stmt, (P.MarkToDropStmt, P.NoOpStmt)):
                pass
            else:  # pragma: no cover
                raise _err(stmt.pos, f"unsupported statement {stmt!r}")

    def _validate_digest(
        self, stmt, binding, headers_struct, meta_struct, action_params
    ) -> None:
        struct = self.program.structs.get(stmt.struct_name)
        if struct is None:
            raise _err(stmt.pos, f"unknown digest struct {stmt.struct_name!r}")
        if len(struct.fields) != len(stmt.fields):
            raise _err(
                stmt.pos,
                f"digest {stmt.struct_name} has {len(struct.fields)} field(s), "
                f"{len(stmt.fields)} given",
            )
        fields = []
        for field, expr in zip(struct.fields, stmt.fields):
            if not isinstance(field.type, P.BitType):
                raise _err(stmt.pos, "digest fields must be bit<N>")
            self._validate_expr(
                expr, binding, headers_struct, meta_struct, action_params
            )
            fields.append(ActionParam(field.name, field.type.width))
        self.p4info.add_digest(stmt.struct_name, fields)

    def _const_value(self, expr) -> int:
        """Evaluate a compile-time constant (default-action argument)."""
        if isinstance(expr, P.IntLit):
            return expr.value
        if isinstance(expr, P.BoolLit):
            return 1 if expr.value else 0
        if isinstance(expr, P.Path) and len(expr.parts) == 1:
            name = expr.parts[0]
            if name in self.program.constants:
                return self.program.constants[name]
        raise _err(
            expr.pos, f"default_action arguments must be constants, got {expr!r}"
        )

    def _validate_expr(
        self, expr, binding, headers_struct, meta_struct, action_params=None
    ) -> None:
        if isinstance(expr, (P.IntLit, P.BoolLit)):
            return
        if isinstance(expr, P.Path):
            self.path_width(expr, binding, headers_struct, meta_struct, action_params)
            return
        if isinstance(expr, P.IsValidExpr):
            if self.header_path(expr.header, binding) is None:
                raise _err(
                    expr.pos, f"isValid() on non-header {expr.header!r}"
                )
            return
        if isinstance(expr, P.BinaryExpr):
            self._validate_expr(
                expr.left, binding, headers_struct, meta_struct, action_params
            )
            self._validate_expr(
                expr.right, binding, headers_struct, meta_struct, action_params
            )
            return
        if isinstance(expr, P.UnaryExpr):
            self._validate_expr(
                expr.operand, binding, headers_struct, meta_struct, action_params
            )
            return
        raise _err(expr.pos, f"unsupported expression {expr!r}")  # pragma: no cover


def compile_p4(text_or_program, source: str = "<p4>") -> Pipeline:
    """Compile P4 source text (or a parsed program) into a pipeline."""
    if isinstance(text_or_program, str):
        program = parse_p4(text_or_program, source)
    else:
        program = text_or_program
    return _Compiler(program).compile()
