"""Abstract syntax for the P4-16 subset.

The subset covers what the paper's data planes need (and what the
``snvs`` switch uses): header/struct declarations, one parser with
``select``-based state machines, controls containing actions and
match-action tables, and an ``apply`` block with assignments,
conditionals, table applications, ``mark_to_drop()``, ``digest()``, and
header validity operations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Pos:
    __slots__ = ("source", "line", "column")

    def __init__(self, source="<p4>", line=0, column=0):
        self.source = source
        self.line = line
        self.column = column

    def __repr__(self):
        return f"{self.source}:{self.line}:{self.column}"


NOPOS = Pos()


# -- types -------------------------------------------------------------------


class P4Type:
    pass


class BitType(P4Type):
    __slots__ = ("width",)

    def __init__(self, width: int):
        self.width = width

    def __eq__(self, other):
        return isinstance(other, BitType) and self.width == other.width

    def __hash__(self):
        return hash(("bit", self.width))

    def __repr__(self):
        return f"bit<{self.width}>"


class BoolType(P4Type):
    def __eq__(self, other):
        return isinstance(other, BoolType)

    def __hash__(self):
        return hash("bool")

    def __repr__(self):
        return "bool"


class NamedType(P4Type):
    """Reference to a header or struct type by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, NamedType) and self.name == other.name

    def __hash__(self):
        return hash(("named", self.name))

    def __repr__(self):
        return self.name


BOOL = BoolType()


# -- declarations ----------------------------------------------------------------


class FieldDecl:
    __slots__ = ("name", "type")

    def __init__(self, name: str, type: P4Type):
        self.name = name
        self.type = type

    def __repr__(self):
        return f"{self.type} {self.name}"


class HeaderDecl:
    __slots__ = ("name", "fields", "pos")

    def __init__(self, name: str, fields: Sequence[FieldDecl], pos=NOPOS):
        self.name = name
        self.fields = list(fields)
        self.pos = pos

    def field(self, name: str) -> FieldDecl:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)

    @property
    def bit_width(self) -> int:
        return sum(
            f.type.width for f in self.fields if isinstance(f.type, BitType)
        )


class StructDecl:
    __slots__ = ("name", "fields", "pos")

    def __init__(self, name: str, fields: Sequence[FieldDecl], pos=NOPOS):
        self.name = name
        self.fields = list(fields)
        self.pos = pos

    def field(self, name: str) -> FieldDecl:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)


class Param:
    __slots__ = ("direction", "type", "name")

    def __init__(self, direction: str, type: P4Type, name: str):
        self.direction = direction  # "in" | "out" | "inout" | "none"
        self.type = type
        self.name = name


# -- expressions ---------------------------------------------------------------------


class Expr:
    __slots__ = ("pos",)

    def __init__(self, pos=NOPOS):
        self.pos = pos


class IntLit(Expr):
    __slots__ = ("value", "width")

    def __init__(self, value: int, width: Optional[int] = None, pos=NOPOS):
        super().__init__(pos)
        self.value = value
        self.width = width

    def __repr__(self):
        return str(self.value)


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool, pos=NOPOS):
        super().__init__(pos)
        self.value = value


class Path(Expr):
    """A dotted lvalue/rvalue path: ``hdr.eth.dst``, ``meta.vlan``."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[str], pos=NOPOS):
        super().__init__(pos)
        self.parts = tuple(parts)

    def __repr__(self):
        return ".".join(self.parts)


class BinaryExpr(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, pos=NOPOS):
        super().__init__(pos)
        self.op = op
        self.left = left
        self.right = right


class UnaryExpr(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, pos=NOPOS):
        super().__init__(pos)
        self.op = op
        self.operand = operand


class IsValidExpr(Expr):
    """``hdr.vlan.isValid()``"""

    __slots__ = ("header",)

    def __init__(self, header: Path, pos=NOPOS):
        super().__init__(pos)
        self.header = header


# -- parser section ---------------------------------------------------------------------


class ExtractStmt:
    __slots__ = ("target", "pos")

    def __init__(self, target: Path, pos=NOPOS):
        self.target = target
        self.pos = pos


class SelectCase:
    __slots__ = ("value", "state")

    def __init__(self, value: Optional[Tuple[int, Optional[int]]], state: str):
        # value None = default; else (value, mask_or_None)
        self.value = value
        self.state = state


class Transition:
    __slots__ = ("select_expr", "cases", "target", "pos")

    def __init__(
        self,
        target: Optional[str] = None,
        select_expr: Optional[Expr] = None,
        cases: Optional[List[SelectCase]] = None,
        pos=NOPOS,
    ):
        self.target = target  # direct transition when not a select
        self.select_expr = select_expr
        self.cases = cases or []
        self.pos = pos


class ParserState:
    __slots__ = ("name", "statements", "transition", "pos")

    def __init__(self, name, statements, transition, pos=NOPOS):
        self.name = name
        self.statements = statements
        self.transition = transition
        self.pos = pos


class ParserDecl:
    __slots__ = ("name", "params", "states", "pos")

    def __init__(self, name, params, states, pos=NOPOS):
        self.name = name
        self.params = params
        self.states = {s.name: s for s in states}
        self.pos = pos


# -- control section -----------------------------------------------------------------------


class Statement:
    __slots__ = ("pos",)

    def __init__(self, pos=NOPOS):
        self.pos = pos


class AssignStmt(Statement):
    __slots__ = ("target", "value")

    def __init__(self, target: Path, value: Expr, pos=NOPOS):
        super().__init__(pos)
        self.target = target
        self.value = value


class ApplyTableStmt(Statement):
    __slots__ = ("table",)

    def __init__(self, table: str, pos=NOPOS):
        super().__init__(pos)
        self.table = table


class CallActionStmt(Statement):
    """Direct invocation of an action from the apply block."""

    __slots__ = ("action", "args")

    def __init__(self, action: str, args: List[Expr], pos=NOPOS):
        super().__init__(pos)
        self.action = action
        self.args = args


class IfStmt(Statement):
    __slots__ = ("cond", "then_block", "else_block")

    def __init__(self, cond, then_block, else_block, pos=NOPOS):
        super().__init__(pos)
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block


class MarkToDropStmt(Statement):
    pass


class DigestStmt(Statement):
    """``digest(digest_struct_name, {expr, expr, ...});``"""

    __slots__ = ("struct_name", "fields")

    def __init__(self, struct_name: str, fields: List[Expr], pos=NOPOS):
        super().__init__(pos)
        self.struct_name = struct_name
        self.fields = fields


class SetValidStmt(Statement):
    __slots__ = ("header", "valid")

    def __init__(self, header: Path, valid: bool, pos=NOPOS):
        super().__init__(pos)
        self.header = header
        self.valid = valid


class ClonePortStmt(Statement):
    """``clone_port(expr);`` — emit a copy of the packet to a port.

    A simplified stand-in for BMv2's clone sessions: the clone carries
    the post-ingress packet state and goes through egress like any
    replica.  Used for port mirroring.
    """

    __slots__ = ("port",)

    def __init__(self, port: Expr, pos=NOPOS):
        super().__init__(pos)
        self.port = port


class NoOpStmt(Statement):
    pass


class ActionDecl:
    __slots__ = ("name", "params", "body", "pos")

    def __init__(self, name, params, body, pos=NOPOS):
        self.name = name
        self.params = params  # [(type, name)]
        self.body = body
        self.pos = pos


class KeyElement:
    __slots__ = ("expr", "match_kind", "name")

    def __init__(self, expr: Path, match_kind: str, name: Optional[str] = None):
        self.expr = expr
        self.match_kind = match_kind  # exact | lpm | ternary
        self.name = name or repr(expr)


class TableDecl:
    __slots__ = ("name", "keys", "actions", "default_action", "default_args", "size", "pos")

    def __init__(
        self,
        name,
        keys,
        actions,
        default_action=None,
        default_args=None,
        size=1024,
        pos=NOPOS,
    ):
        self.name = name
        self.keys = keys
        self.actions = actions  # action names, may include "NoAction"
        self.default_action = default_action
        self.default_args = default_args or []
        self.size = size
        self.pos = pos


class ControlDecl:
    __slots__ = ("name", "params", "actions", "tables", "apply_block", "pos")

    def __init__(self, name, params, actions, tables, apply_block, pos=NOPOS):
        self.name = name
        self.params = params
        self.actions = {a.name: a for a in actions}
        self.tables = {t.name: t for t in tables}
        self.apply_block = apply_block
        self.pos = pos


class P4Program:
    __slots__ = ("headers", "structs", "parsers", "controls", "constants", "pos")

    def __init__(self, headers, structs, parsers, controls, constants, pos=NOPOS):
        self.headers = {h.name: h for h in headers}
        self.structs = {s.name: s for s in structs}
        self.parsers = {p.name: p for p in parsers}
        self.controls = {c.name: c for c in controls}
        self.constants = dict(constants)
        self.pos = pos
