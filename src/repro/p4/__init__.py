"""The data plane: a P4-16 subset compiler and behavioral simulator.

The paper programs its data plane in P4 and executes it on BMv2 (the P4
behavioral model).  This package reproduces that layer:

* :mod:`repro.p4.parser` — a parser for a useful P4-16 subset (headers,
  structs, parser state machines, controls with match-action tables,
  actions, digests);
* :mod:`repro.p4.ir` / :mod:`repro.p4.p4info` — the compiled pipeline
  and its runtime metadata (what P4Runtime calls P4Info);
* :mod:`repro.p4.packet` — bit-exact packet encoding/decoding;
* :mod:`repro.p4.tables` — match-action table state (exact, LPM,
  ternary with priorities);
* :mod:`repro.p4.simulator` — a BMv2-like behavioral model executing
  the pipeline on real packet bytes, with multicast groups and digests;
* :mod:`repro.p4.openflow` — the ``p4c-of`` analog: compile a pipeline
  to OpenFlow-style flow fragments and run them on a flow-table switch.
"""

from repro.p4.parser import parse_p4
from repro.p4.ir import compile_p4
from repro.p4.simulator import Simulator

__all__ = ["Simulator", "compile_p4", "parse_p4"]
