"""The ``p4c-of`` analog: compile a pipeline to OpenFlow-style flows.

The Nerpa repository includes ``p4c-of``, "which compiles P4 into
OpenFlow and allows the use of high-performance software switches".
This module reproduces that layer:

* :func:`compile_to_openflow` statically lowers a compiled pipeline
  into a :class:`FlowProgram`: one OpenFlow table per P4 table (in
  apply order), and one **flow fragment template** per (table, action)
  pair.  The fragment count is the metric Figure 3 tracks — each
  fragment corresponds to one place that emits flows;
* :func:`instantiate_entries` turns a simulator's current table
  contents into concrete :class:`FlowRule` s;
* :class:`OFSwitch` evaluates field-map packets against the flow
  tables (match under mask, highest priority wins, ``goto`` to the
  next table), so the lowering can be checked against the behavioral
  simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DataPlaneError
from repro.p4.ir import Pipeline
from repro.p4.tables import TableState


class FlowFragment:
    """A template for flows some controller code path would emit.

    ``table`` / ``action`` identify the (table, action) pair; the
    ``match_fields`` are the fields a concrete flow will match on.
    """

    __slots__ = ("table_id", "table", "action", "match_fields")

    def __init__(self, table_id: int, table: str, action: str, match_fields):
        self.table_id = table_id
        self.table = table
        self.action = action
        self.match_fields = list(match_fields)

    def __repr__(self):
        return f"Fragment(t{self.table_id}/{self.table} -> {self.action})"


class FlowRule:
    """A concrete flow: match (field -> (value, mask)) + actions."""

    __slots__ = ("table_id", "match", "priority", "actions", "goto")

    def __init__(self, table_id, match, priority, actions, goto):
        self.table_id = table_id
        self.match = match
        self.priority = priority
        self.actions = actions  # [("set", field, value) | ("output", port) | ...]
        self.goto = goto

    def matches(self, fields: Dict[str, int]) -> bool:
        for name, (value, mask) in self.match.items():
            if (fields.get(name, 0) & mask) != (value & mask):
                return False
        return True


class FlowProgram:
    """The static lowering of one pipeline."""

    def __init__(self, pipeline: Pipeline):
        self.pipeline = pipeline
        self.table_ids: Dict[str, int] = {}
        self.fragments: List[FlowFragment] = []

    @property
    def fragment_count(self) -> int:
        return len(self.fragments)


def compile_to_openflow(pipeline: Pipeline) -> FlowProgram:
    """Lower a pipeline: table order follows the controls' apply blocks."""
    program = FlowProgram(pipeline)
    order: List[str] = []
    controls = [pipeline.ingress] + (
        [pipeline.egress] if pipeline.egress is not None else []
    )
    for control in controls:
        for name in control.tables:
            order.append(name)
    for table_id, name in enumerate(order):
        program.table_ids[name] = table_id
        info = pipeline.p4info.table(name)
        for action in info.action_names:
            program.fragments.append(
                FlowFragment(
                    table_id,
                    name,
                    action,
                    [f.name for f in info.match_fields],
                )
            )
        if info.default_action and info.default_action not in info.action_names:
            program.fragments.append(
                FlowFragment(table_id, name, info.default_action, [])
            )
    return program


def instantiate_entries(
    program: FlowProgram, tables: Dict[str, TableState]
) -> List[FlowRule]:
    """Concrete flows for the current table contents.

    Action lowering is symbolic: each P4 action becomes a ``("apply",
    action_name, params)`` OpenFlow action; a real backend would expand
    these into set-field/output primitives per target.
    """
    rules: List[FlowRule] = []
    max_id = max(program.table_ids.values(), default=-1)
    for name, state in tables.items():
        table_id = program.table_ids.get(name)
        if table_id is None:
            raise DataPlaneError(f"table {name!r} not in flow program")
        goto = table_id + 1 if table_id < max_id else None
        info = state.info
        for entry in state.entries():
            match = {}
            for field, fm in zip(info.match_fields, entry.matches):
                full = (1 << field.width) - 1
                if fm.kind == "exact":
                    match[field.name] = (fm.value, full)
                elif fm.kind == "lpm":
                    plen = fm.arg or 0
                    mask = ((1 << plen) - 1) << (field.width - plen) if plen else 0
                    match[field.name] = (fm.value, mask)
                else:
                    match[field.name] = (fm.value, fm.arg or 0)
            priority = entry.priority if entry.priority else 1
            rules.append(
                FlowRule(
                    table_id,
                    match,
                    priority,
                    [("apply", entry.action, entry.action_params)],
                    goto,
                )
            )
        if state.default_action:
            rules.append(
                FlowRule(
                    table_id,
                    {},
                    0,
                    [("apply", state.default_action, state.default_params)],
                    goto,
                )
            )
    return rules


class OFSwitch:
    """A minimal flow-table switch: field-map in, action trace out."""

    def __init__(self, rules: Sequence[FlowRule]):
        self.tables: Dict[int, List[FlowRule]] = {}
        for rule in rules:
            self.tables.setdefault(rule.table_id, []).append(rule)
        for rules_list in self.tables.values():
            rules_list.sort(key=lambda r: -r.priority)
        self.lookups = 0

    def process(self, fields: Dict[str, int]) -> List[Tuple[str, tuple]]:
        """Walk the tables from 0; returns the applied action trace."""
        trace: List[Tuple[str, tuple]] = []
        table_id: Optional[int] = 0
        seen = set()
        while table_id is not None and table_id in self.tables:
            if table_id in seen:
                raise DataPlaneError("goto loop in flow program")
            seen.add(table_id)
            self.lookups += 1
            matched = None
            for rule in self.tables[table_id]:
                if rule.matches(fields):
                    matched = rule
                    break
            if matched is None:
                break
            for action in matched.actions:
                trace.append((action[1], tuple(action[2])))
            table_id = matched.goto
        return trace
