"""Bit-exact packet buffers.

P4 headers are sequences of fields with arbitrary bit widths (a VLAN
tag is 3+1+12+16 bits), packed MSB-first.  :class:`BitReader` and
:class:`BitWriter` implement that packing over byte strings, and
:class:`Packet` couples a buffer with a read cursor for parsing.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import DataPlaneError


class BitReader:
    """Reads big-endian bit fields from bytes."""

    __slots__ = ("data", "bit_pos")

    def __init__(self, data: bytes, bit_pos: int = 0):
        self.data = data
        self.bit_pos = bit_pos

    @property
    def bits_remaining(self) -> int:
        return len(self.data) * 8 - self.bit_pos

    def read(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width <= 0:
            raise DataPlaneError(f"bad field width {width}")
        if self.bits_remaining < width:
            raise DataPlaneError(
                f"packet too short: need {width} bits, have {self.bits_remaining}"
            )
        value = 0
        pos = self.bit_pos
        data = self.data
        for _ in range(width):
            byte = data[pos >> 3]
            bit = (byte >> (7 - (pos & 7))) & 1
            value = (value << 1) | bit
            pos += 1
        self.bit_pos = pos
        return value

    def read_bytes(self, count: int) -> bytes:
        if self.bit_pos % 8 != 0:
            raise DataPlaneError("byte read at non-byte boundary")
        start = self.bit_pos // 8
        if start + count > len(self.data):
            raise DataPlaneError("packet too short for byte read")
        self.bit_pos += count * 8
        return self.data[start : start + count]

    def rest(self) -> bytes:
        if self.bit_pos % 8 != 0:
            raise DataPlaneError("payload starts at non-byte boundary")
        return self.data[self.bit_pos // 8 :]


class BitWriter:
    """Writes big-endian bit fields into a growing buffer."""

    __slots__ = ("_bits",)

    def __init__(self):
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        if width <= 0:
            raise DataPlaneError(f"bad field width {width}")
        if value < 0 or value >= (1 << width):
            raise DataPlaneError(f"value {value} does not fit in {width} bits")
        for i in range(width - 1, -1, -1):
            self._bits.append((value >> i) & 1)

    def write_bytes(self, data: bytes) -> None:
        if len(self._bits) % 8 != 0:
            raise DataPlaneError("byte write at non-byte boundary")
        for byte in data:
            for i in range(7, -1, -1):
                self._bits.append((byte >> i) & 1)

    def to_bytes(self) -> bytes:
        if len(self._bits) % 8 != 0:
            raise DataPlaneError(
                f"packet is {len(self._bits)} bits, not a whole number of bytes"
            )
        out = bytearray(len(self._bits) // 8)
        for i, bit in enumerate(self._bits):
            if bit:
                out[i >> 3] |= 1 << (7 - (i & 7))
        return bytes(out)


class Packet:
    """A packet with metadata used by the behavioral model."""

    __slots__ = ("data", "ingress_port")

    def __init__(self, data: bytes, ingress_port: int = 0):
        self.data = data
        self.ingress_port = ingress_port

    def reader(self) -> BitReader:
        return BitReader(self.data)

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        return f"Packet({len(self.data)}B @port {self.ingress_port})"


def pack_fields(fields: List[Tuple[int, int]]) -> bytes:
    """Pack ``(value, width)`` pairs into bytes (must total whole bytes)."""
    writer = BitWriter()
    for value, width in fields:
        writer.write(value, width)
    return writer.to_bytes()


def unpack_fields(data: bytes, widths: List[int]) -> List[int]:
    reader = BitReader(data)
    return [reader.read(w) for w in widths]
