"""A BMv2-like behavioral model executing compiled pipelines.

The simulator runs real packet bytes through the program's own parser,
ingress (and optional egress) controls, and a deparser, with:

* match-action tables whose contents are written at runtime (the
  P4Runtime layer, or tests, call :meth:`Simulator.table`);
* multicast groups for flooding (``std.mcast_grp``);
* digests queued for the control plane (MAC learning's feedback loop);
* per-port tx/rx counters.

Deparsing emits the *valid* headers in the declaration order of the
headers struct, then the payload — the order BMv2 programs almost
always encode explicitly in their deparser.
Reading a field of an invalid header yields 0 (BMv2 leaves it
undefined; zero keeps runs reproducible).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import DataPlaneError
from repro.p4 import ast as P
from repro.p4.ir import STD_FIELDS, ControlBinding, Pipeline
from repro.p4.packet import BitReader, BitWriter
from repro.p4.tables import TableState


class HeaderInstance:
    __slots__ = ("decl", "fields", "valid")

    def __init__(self, decl: P.HeaderDecl):
        self.decl = decl
        self.fields: Dict[str, int] = {f.name: 0 for f in decl.fields}
        self.valid = False

    def copy(self) -> "HeaderInstance":
        out = HeaderInstance(self.decl)
        out.fields = dict(self.fields)
        out.valid = self.valid
        return out


class DigestMessage:
    __slots__ = ("name", "values", "update_id")

    def __init__(
        self,
        name: str,
        values: Tuple[int, ...],
        update_id: Optional[str] = None,
    ):
        self.name = name
        self.values = values
        # The update-id of the config change that last wrote this
        # device (its ``config_epoch``), linking digest feedback back
        # to the originating trace.
        self.update_id = update_id

    def __repr__(self):
        return f"Digest({self.name}, {self.values})"


class _Context:
    """Per-packet execution state."""

    __slots__ = ("headers", "meta", "std", "payload", "drop", "clone_ports")

    def __init__(self, headers, meta, std, payload):
        self.headers = headers
        self.meta = meta
        self.std = std
        self.payload = payload
        self.drop = False
        self.clone_ports: List[int] = []

    def clone(self) -> "_Context":
        out = _Context(
            {name: h.copy() for name, h in self.headers.items()},
            dict(self.meta),
            dict(self.std),
            self.payload,
        )
        out.drop = self.drop
        return out


class Simulator:
    """One simulated programmable switch running one pipeline."""

    def __init__(
        self,
        pipeline: Pipeline,
        n_ports: int = 64,
        digest_callback: Optional[Callable[[DigestMessage], None]] = None,
        cpu_port: Optional[int] = None,
    ):
        self.pipeline = pipeline
        self.n_ports = n_ports
        self.tables: Dict[str, TableState] = {
            name: TableState(info)
            for name, info in pipeline.p4info.tables.items()
        }
        self.multicast_groups: Dict[int, List[int]] = {}
        self.digests: List[DigestMessage] = []
        self.digest_callback = digest_callback
        # Packets forwarded to the CPU port become packet-ins for the
        # control plane instead of egressing (BMv2's CPU-port pattern).
        self.cpu_port = cpu_port
        self.packet_ins: List[Tuple[int, bytes]] = []
        self.packet_in_callback: Optional[Callable[[int, bytes], None]] = None
        self.rx_count: Dict[int, int] = {}
        self.tx_count: Dict[int, int] = {}
        self.dropped = 0
        # Update-id of the most recent control-plane write batch (set
        # by DeviceService.write); stamped onto emitted digests.
        self.config_epoch: Optional[str] = None

    # -- control-plane surface ----------------------------------------------

    def table(self, name: str) -> TableState:
        try:
            return self.tables[name]
        except KeyError:
            raise DataPlaneError(f"no table {name!r}") from None

    def set_multicast_group(self, group_id: int, ports: List[int]) -> None:
        if group_id <= 0:
            raise DataPlaneError("multicast group ids are positive")
        self.multicast_groups[group_id] = list(ports)

    def delete_multicast_group(self, group_id: int) -> None:
        self.multicast_groups.pop(group_id, None)

    def drain_digests(self) -> List[DigestMessage]:
        out = self.digests
        self.digests = []
        return out

    # -- packet processing ----------------------------------------------------

    def inject(self, port: int, data: bytes) -> List[Tuple[int, bytes]]:
        """Process one packet; returns ``[(egress_port, bytes), ...]``."""
        if not 0 <= port < self.n_ports:
            raise DataPlaneError(f"no port {port}")
        self.rx_count[port] = self.rx_count.get(port, 0) + 1
        if obs.enabled():
            obs.REGISTRY.counter("dataplane_packets_total").inc()

        ctx = self._parse(port, data)
        if ctx is None:
            self.dropped += 1
            return []

        self._run_control(
            self.pipeline.ingress, self.pipeline.ingress_binding, ctx
        )
        # Clones survive an ingress drop of the original (mirroring taps
        # traffic even when the switch decides to drop it).
        clone_replicas = []
        for p in ctx.clone_ports:
            cloned = ctx.clone()
            cloned.drop = False  # the clone is independent of the verdict
            clone_replicas.append((p, cloned))
        if ctx.drop:
            self.dropped += 1
            replicas = clone_replicas
        else:
            replicas: List[Tuple[int, _Context]] = []
            mcast = ctx.std.get("mcast_grp", 0)
            if mcast:
                for out_port in self.multicast_groups.get(mcast, []):
                    replicas.append((out_port, ctx.clone()))
            else:
                out_port = ctx.std.get("egress_spec", 0)
                replicas.append((out_port, ctx))
            replicas.extend(clone_replicas)

        outputs: List[Tuple[int, bytes]] = []
        for out_port, rctx in replicas:
            rctx.std["egress_port"] = out_port
            if self.pipeline.egress is not None:
                self._run_control(
                    self.pipeline.egress, self.pipeline.egress_binding, rctx
                )
                if rctx.drop:
                    self.dropped += 1
                    continue
            if self.cpu_port is not None and out_port == self.cpu_port:
                frame = self._deparse(rctx)
                ingress = rctx.std.get("ingress_port", 0)
                self.packet_ins.append((ingress, frame))
                if self.packet_in_callback is not None:
                    self.packet_in_callback(ingress, frame)
                continue
            if not 0 <= out_port < self.n_ports:
                self.dropped += 1
                continue
            outputs.append((out_port, self._deparse(rctx)))
            self.tx_count[out_port] = self.tx_count.get(out_port, 0) + 1
        return outputs

    def drain_packet_ins(self) -> List[Tuple[int, bytes]]:
        out = self.packet_ins
        self.packet_ins = []
        return out

    # -- parser --------------------------------------------------------------------

    def _parse(self, port: int, data: bytes) -> Optional[_Context]:
        pipeline = self.pipeline
        headers = {}
        for field in pipeline.headers_struct.fields:
            if (
                isinstance(field.type, P.NamedType)
                and field.type.name in pipeline.program.headers
            ):
                headers[field.name] = HeaderInstance(
                    pipeline.program.headers[field.type.name]
                )
        meta: Dict[str, object] = {}
        if pipeline.meta_struct is not None:
            for field in pipeline.meta_struct.fields:
                meta[field.name] = False if isinstance(field.type, P.BoolType) else 0
        std: Dict[str, int] = {name: 0 for name in STD_FIELDS}
        std["ingress_port"] = port
        std["packet_length"] = len(data)

        ctx = _Context(headers, meta, std, b"")
        reader = BitReader(data)
        state_name = "start"
        steps = 0
        while state_name not in ("accept", "reject"):
            steps += 1
            if steps > 1000:
                raise DataPlaneError("parser loop exceeded 1000 states")
            state = self.pipeline.parser.states.get(state_name)
            if state is None:
                return None
            try:
                for stmt in state.statements:
                    self._extract(ctx, reader, stmt.target)
                state_name = self._transition(ctx, state.transition)
            except DataPlaneError:
                state_name = "reject"
        if state_name == "reject":
            return None
        try:
            ctx.payload = reader.rest()
        except DataPlaneError:
            ctx.payload = b""
        return ctx

    def _extract(self, ctx: _Context, reader: BitReader, target: P.Path) -> None:
        member = target.parts[1]
        instance = ctx.headers[member]
        for field in instance.decl.fields:
            if isinstance(field.type, P.BitType):
                instance.fields[field.name] = reader.read(field.type.width)
            else:
                instance.fields[field.name] = bool(reader.read(1))
        instance.valid = True

    def _transition(self, ctx: _Context, transition: P.Transition) -> str:
        if transition.target is not None:
            return transition.target
        value = self._eval(ctx, transition.select_expr, None, None)
        default = "reject"
        for case in transition.cases:
            if case.value is None:
                default = case.state
                continue
            case_value, mask = case.value
            if mask is None:
                if value == case_value:
                    return case.state
            elif (value & mask) == (case_value & mask):
                return case.state
        return default

    # -- controls --------------------------------------------------------------------

    def _run_control(
        self, control: P.ControlDecl, binding: ControlBinding, ctx: _Context
    ) -> None:
        self._run_block(control.apply_block, control, binding, ctx, None)

    def _run_block(self, block, control, binding, ctx, action_env) -> None:
        for stmt in block:
            if isinstance(stmt, P.AssignStmt):
                value = self._eval(ctx, stmt.value, binding, action_env)
                self._assign(ctx, stmt.target, value, binding, action_env)
            elif isinstance(stmt, P.ApplyTableStmt):
                self._apply_table(control, binding, ctx, stmt.table)
            elif isinstance(stmt, P.CallActionStmt):
                args = [
                    self._eval(ctx, a, binding, action_env) for a in stmt.args
                ]
                self._run_action(control, binding, ctx, stmt.action, args)
            elif isinstance(stmt, P.IfStmt):
                if self._eval(ctx, stmt.cond, binding, action_env):
                    self._run_block(
                        stmt.then_block, control, binding, ctx, action_env
                    )
                else:
                    self._run_block(
                        stmt.else_block, control, binding, ctx, action_env
                    )
            elif isinstance(stmt, P.MarkToDropStmt):
                ctx.drop = True
            elif isinstance(stmt, P.DigestStmt):
                values = tuple(
                    int(self._eval(ctx, f, binding, action_env))
                    for f in stmt.fields
                )
                message = DigestMessage(
                    stmt.struct_name, values, update_id=self.config_epoch
                )
                self.digests.append(message)
                if obs.enabled():
                    obs.REGISTRY.counter(
                        "dataplane_digests_total", digest=stmt.struct_name
                    ).inc()
                if self.digest_callback is not None:
                    self.digest_callback(message)
            elif isinstance(stmt, P.ClonePortStmt):
                port = int(self._eval(ctx, stmt.port, binding, action_env))
                ctx.clone_ports.append(port)
            elif isinstance(stmt, P.SetValidStmt):
                member = stmt.header.parts[1]
                ctx.headers[member].valid = stmt.valid
            elif isinstance(stmt, P.NoOpStmt):
                pass
            else:  # pragma: no cover
                raise DataPlaneError(f"unsupported statement {stmt!r}")

    def _apply_table(self, control, binding, ctx, table_name: str) -> None:
        table_decl = control.tables[table_name]
        state = self.tables[table_name]
        values = [
            int(self._eval(ctx, key.expr, binding, None))
            for key in table_decl.keys
        ]
        action, params, _hit = state.lookup(values)
        if action is None or action == "NoAction":
            return
        self._run_action(control, binding, ctx, action, list(params))

    def _run_action(self, control, binding, ctx, action_name: str, args) -> None:
        if action_name == "NoAction":
            return
        action = control.actions[action_name]
        env = {}
        for (ptype, pname), value in zip(action.params, args):
            if isinstance(ptype, P.BitType):
                value = int(value) & ((1 << ptype.width) - 1)
            env[pname] = value
        self._run_block(action.body, control, binding, ctx, env)

    # -- expressions --------------------------------------------------------------------

    def _eval(self, ctx, expr, binding, action_env):
        if isinstance(expr, P.IntLit):
            return expr.value
        if isinstance(expr, P.BoolLit):
            return expr.value
        if isinstance(expr, P.Path):
            return self._read_path(ctx, expr, binding, action_env)
        if isinstance(expr, P.IsValidExpr):
            member = expr.header.parts[1]
            return ctx.headers[member].valid
        if isinstance(expr, P.UnaryExpr):
            value = self._eval(ctx, expr.operand, binding, action_env)
            if expr.op == "!":
                return not value
            if expr.op == "~":
                return ~int(value)
            return -int(value)
        if isinstance(expr, P.BinaryExpr):
            op = expr.op
            if op == "&&":
                return bool(
                    self._eval(ctx, expr.left, binding, action_env)
                ) and bool(self._eval(ctx, expr.right, binding, action_env))
            if op == "||":
                return bool(
                    self._eval(ctx, expr.left, binding, action_env)
                ) or bool(self._eval(ctx, expr.right, binding, action_env))
            left = self._eval(ctx, expr.left, binding, action_env)
            right = self._eval(ctx, expr.right, binding, action_env)
            if op == "==":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            left, right = int(left), int(right)
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise DataPlaneError("division by zero in data plane")
                return left // right
            if op == "%":
                if right == 0:
                    raise DataPlaneError("modulo by zero in data plane")
                return left % right
            if op == "&":
                return left & right
            if op == "|":
                return left | right
            if op == "^":
                return left ^ right
            if op == "<<":
                return left << right
            if op == ">>":
                return left >> right
        raise DataPlaneError(f"unsupported expression {expr!r}")  # pragma: no cover

    def _read_path(self, ctx, path: P.Path, binding, action_env):
        root = path.parts[0]
        if action_env is not None and root in action_env and len(path.parts) == 1:
            return action_env[root]
        if binding is None:
            binding = self.pipeline.parser_binding
        if binding.std_param is not None and root == binding.std_param:
            return ctx.std.get(path.parts[1], 0)
        if root == binding.headers_param:
            member = path.parts[1]
            instance = ctx.headers.get(member)
            if instance is None:
                raise DataPlaneError(f"unknown header member {member!r}")
            if len(path.parts) == 2:
                raise DataPlaneError(f"{path!r} names a header, not a field")
            if not instance.valid:
                return 0
            return instance.fields.get(path.parts[2], 0)
        if binding.meta_param is not None and root == binding.meta_param:
            return ctx.meta.get(path.parts[1], 0)
        raise DataPlaneError(f"cannot read {path!r}")

    def _assign(self, ctx, path: P.Path, value, binding, action_env) -> None:
        root = path.parts[0]
        if binding.std_param is not None and root == binding.std_param:
            field = path.parts[1]
            width = STD_FIELDS.get(field)
            if width is None:
                raise DataPlaneError(f"unknown std field {field!r}")
            ctx.std[field] = int(value) & ((1 << width) - 1)
            return
        if root == binding.headers_param:
            member = path.parts[1]
            instance = ctx.headers[member]
            field = instance.decl.field(path.parts[2])
            if isinstance(field.type, P.BitType):
                instance.fields[field.name] = int(value) & (
                    (1 << field.type.width) - 1
                )
            else:
                instance.fields[field.name] = bool(value)
            return
        if binding.meta_param is not None and root == binding.meta_param:
            field_name = path.parts[1]
            meta_struct = self.pipeline.meta_struct
            field = meta_struct.field(field_name) if meta_struct else None
            if field is not None and isinstance(field.type, P.BitType):
                ctx.meta[field_name] = int(value) & ((1 << field.type.width) - 1)
            else:
                ctx.meta[field_name] = (
                    bool(value) if isinstance(value, bool) or (
                        field is not None and isinstance(field.type, P.BoolType)
                    ) else value
                )
            return
        raise DataPlaneError(f"cannot assign to {path!r}")

    # -- deparser -----------------------------------------------------------------------

    def _deparse(self, ctx: _Context) -> bytes:
        writer = BitWriter()
        for field in self.pipeline.headers_struct.fields:
            instance = ctx.headers.get(field.name)
            if instance is None or not instance.valid:
                continue
            for hfield in instance.decl.fields:
                if isinstance(hfield.type, P.BitType):
                    writer.write(
                        instance.fields[hfield.name], hfield.type.width
                    )
                else:
                    writer.write(1 if instance.fields[hfield.name] else 0, 1)
        return writer.to_bytes() + ctx.payload

    # -- stats --------------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "rx": dict(self.rx_count),
            "tx": dict(self.tx_count),
            "dropped": self.dropped,
            "tables": {name: len(t) for name, t in self.tables.items()},
        }
