"""Match-action table state: entries and lookup.

Lookup semantics follow P4 (and BMv2):

* all keys ``exact`` — hash lookup;
* ``exact`` keys plus one ``lpm`` key — longest prefix wins among
  entries whose exact parts match;
* any ``ternary`` key — highest priority entry whose every field
  matches (exact fields compare equal, lpm fields prefix-match,
  ternary fields match under mask).

Entries are validated against the table's
:class:`~repro.p4.p4info.TableInfo` (field count, widths, value
ranges), which is exactly the validation P4Runtime performs on writes.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeApiError
from repro.p4.p4info import TableInfo


class FieldMatch:
    """One key field of an entry.

    ``kind`` mirrors the table's match kind; payload by kind:
    exact -> value; lpm -> (value, prefix_len); ternary -> (value, mask).
    """

    __slots__ = ("kind", "value", "arg")

    def __init__(self, kind: str, value: int, arg: Optional[int] = None):
        self.kind = kind
        self.value = value
        self.arg = arg

    @classmethod
    def exact(cls, value: int) -> "FieldMatch":
        return cls("exact", value)

    @classmethod
    def lpm(cls, value: int, prefix_len: int) -> "FieldMatch":
        return cls("lpm", value, prefix_len)

    @classmethod
    def ternary(cls, value: int, mask: int) -> "FieldMatch":
        return cls("ternary", value, mask)

    def key(self) -> tuple:
        return (self.kind, self.value, self.arg)

    def matches(self, packet_value: int, width: int) -> bool:
        if self.kind == "exact":
            return packet_value == self.value
        if self.kind == "lpm":
            prefix_len = self.arg or 0
            if prefix_len == 0:
                return True
            mask = ((1 << prefix_len) - 1) << (width - prefix_len)
            return (packet_value & mask) == (self.value & mask)
        mask = self.arg or 0
        return (packet_value & mask) == (self.value & mask)

    def __repr__(self):
        if self.kind == "exact":
            return f"={self.value}"
        if self.kind == "lpm":
            return f"{self.value}/{self.arg}"
        return f"{self.value}&{self.arg}"


class TableEntry:
    __slots__ = ("matches", "action", "action_params", "priority")

    def __init__(
        self,
        matches: Sequence[FieldMatch],
        action: str,
        action_params: Sequence[int],
        priority: int = 0,
    ):
        self.matches = tuple(matches)
        self.action = action
        self.action_params = tuple(action_params)
        self.priority = priority

    def match_key(self) -> tuple:
        """Identity of the entry (match fields + priority), per P4Runtime."""
        return (tuple(m.key() for m in self.matches), self.priority)

    def __repr__(self):
        return (
            f"TableEntry([{', '.join(map(repr, self.matches))}] "
            f"-> {self.action}{self.action_params} prio={self.priority})"
        )


class TableState:
    """The runtime contents of one match-action table."""

    def __init__(self, info: TableInfo):
        self.info = info
        self.kinds = [m.match_kind for m in info.match_fields]
        self.widths = [m.width for m in info.match_fields]
        self._entries: Dict[tuple, TableEntry] = {}
        self.default_action: Optional[str] = info.default_action
        self.default_params: Tuple[int, ...] = tuple(info.default_params)
        self._mode = self._pick_mode()
        # exact mode: key tuple -> entry
        self._exact_index: Dict[tuple, TableEntry] = {}
        # lpm mode: exact part -> prefix_len -> {masked prefix -> entry}
        self._lpm_index: Dict[tuple, Dict[int, Dict[int, TableEntry]]] = {}
        self._lpm_pos = self.kinds.index("lpm") if "lpm" in self.kinds else -1
        # ternary mode: (-priority, seq, entry), kept sorted by bisect
        self._scan_list: List[Tuple[int, int, TableEntry]] = []
        self._scan_seq = 0

    def _pick_mode(self) -> str:
        if any(k == "ternary" for k in self.kinds):
            return "scan"
        if self.kinds.count("lpm") > 1:
            return "scan"
        if "lpm" in self.kinds:
            return "lpm"
        return "exact"

    # -- mutation --------------------------------------------------------------

    def validate_entry(self, entry: TableEntry) -> None:
        info = self.info
        if len(entry.matches) != len(info.match_fields):
            raise RuntimeApiError(
                f"table {info.name}: entry has {len(entry.matches)} match "
                f"field(s), expected {len(info.match_fields)}"
            )
        for match, field in zip(entry.matches, info.match_fields):
            if match.kind != field.match_kind:
                raise RuntimeApiError(
                    f"table {info.name}: field {field.name} is "
                    f"{field.match_kind}, entry gives {match.kind}"
                )
            limit = 1 << field.width
            if not 0 <= match.value < limit:
                raise RuntimeApiError(
                    f"table {info.name}: value {match.value} out of range "
                    f"for {field.name} (bit<{field.width}>)"
                )
            if match.kind == "lpm":
                plen = match.arg or 0
                if not 0 <= plen <= field.width:
                    raise RuntimeApiError(
                        f"table {info.name}: prefix length {match.arg} "
                        f"out of range for {field.name}"
                    )
                dont_care = (1 << (field.width - plen)) - 1
                if match.value & dont_care:
                    raise RuntimeApiError(
                        f"table {info.name}: non-canonical lpm value for "
                        f"{field.name}: bits below the /{plen} prefix must "
                        "be zero (P4Runtime canonical form)"
                    )
            if match.kind == "ternary":
                mask = match.arg or 0
                if not 0 <= mask < limit:
                    raise RuntimeApiError(
                        f"table {info.name}: mask {match.arg} out of range "
                        f"for {field.name}"
                    )
                if match.value & ~mask & (limit - 1):
                    raise RuntimeApiError(
                        f"table {info.name}: non-canonical ternary value for "
                        f"{field.name}: masked-out bits must be zero"
                    )
        if entry.action not in info.action_names:
            raise RuntimeApiError(
                f"table {info.name}: action {entry.action!r} not allowed "
                f"(allowed: {info.action_names})"
            )
        if self._mode == "scan":
            if entry.priority <= 0:
                raise RuntimeApiError(
                    f"table {info.name}: ternary tables require priority > 0"
                )
        elif entry.priority != 0:
            # Without ternary fields, entries are identified by their
            # match alone; a priority would let two entries share one
            # index slot and silently shadow each other.
            raise RuntimeApiError(
                f"table {info.name}: priority is only valid for ternary tables"
            )

    def insert(self, entry: TableEntry) -> None:
        self.validate_entry(entry)
        key = entry.match_key()
        if key in self._entries:
            raise RuntimeApiError(
                f"table {self.info.name}: duplicate entry {entry!r}"
            )
        if len(self._entries) >= self.info.size:
            raise RuntimeApiError(
                f"table {self.info.name}: full ({self.info.size} entries)"
            )
        self._entries[key] = entry
        self._index_add(entry)

    def modify(self, entry: TableEntry) -> None:
        self.validate_entry(entry)
        key = entry.match_key()
        old = self._entries.get(key)
        if old is None:
            raise RuntimeApiError(
                f"table {self.info.name}: no entry to modify for {entry!r}"
            )
        self._index_remove(old)
        self._entries[key] = entry
        self._index_add(entry)

    def delete(self, entry: TableEntry) -> None:
        key = entry.match_key()
        old = self._entries.pop(key, None)
        if old is None:
            raise RuntimeApiError(
                f"table {self.info.name}: no entry to delete for {entry!r}"
            )
        self._index_remove(old)

    def set_default(self, action: str, params: Sequence[int]) -> None:
        if action not in self.info.action_names:
            raise RuntimeApiError(
                f"table {self.info.name}: action {action!r} not allowed"
            )
        self.default_action = action
        self.default_params = tuple(params)

    def entries(self) -> List[TableEntry]:
        return list(self._entries.values())

    def get(self, match_key: tuple) -> Optional[TableEntry]:
        """The entry with this exact match key, or ``None``."""
        return self._entries.get(match_key)

    def __len__(self):
        return len(self._entries)

    # -- indexes ------------------------------------------------------------------

    def _exact_key(self, entry: TableEntry) -> tuple:
        return tuple(
            m.value for m, k in zip(entry.matches, self.kinds) if k == "exact"
        )

    def _index_add(self, entry: TableEntry) -> None:
        if self._mode == "exact":
            self._exact_index[self._exact_key(entry)] = entry
        elif self._mode == "lpm":
            match = entry.matches[self._lpm_pos]
            width = self.widths[self._lpm_pos]
            prefix_len = match.arg or 0
            prefix = _prefix_bits(match.value, prefix_len, width)
            by_len = self._lpm_index.setdefault(self._exact_key(entry), {})
            by_len.setdefault(prefix_len, {})[prefix] = entry
        else:
            self._scan_seq += 1
            bisect.insort(
                self._scan_list, (-entry.priority, self._scan_seq, entry)
            )

    def _index_remove(self, entry: TableEntry) -> None:
        if self._mode == "exact":
            self._exact_index.pop(self._exact_key(entry), None)
        elif self._mode == "lpm":
            match = entry.matches[self._lpm_pos]
            width = self.widths[self._lpm_pos]
            prefix_len = match.arg or 0
            prefix = _prefix_bits(match.value, prefix_len, width)
            by_len = self._lpm_index.get(self._exact_key(entry), {})
            bucket = by_len.get(prefix_len)
            if bucket is not None:
                bucket.pop(prefix, None)
                if not bucket:
                    del by_len[prefix_len]
        else:
            key = entry.match_key()
            self._scan_list = [
                item for item in self._scan_list if item[2].match_key() != key
            ]

    # -- lookup --------------------------------------------------------------------

    def lookup(self, values: Sequence[int]) -> Tuple[Optional[str], Tuple[int, ...], bool]:
        """Match packet key ``values``; returns (action, params, hit)."""
        entry = self._lookup_entry(values)
        if entry is not None:
            return entry.action, entry.action_params, True
        if self.default_action is not None:
            return self.default_action, self.default_params, False
        return None, (), False

    def _lookup_entry(self, values: Sequence[int]) -> Optional[TableEntry]:
        if self._mode == "exact":
            return self._exact_index.get(tuple(values))
        if self._mode == "lpm":
            exact_part = tuple(
                v for v, k in zip(values, self.kinds) if k == "exact"
            )
            by_len = self._lpm_index.get(exact_part)
            if not by_len:
                return None
            lpm_value = values[self._lpm_pos]
            width = self.widths[self._lpm_pos]
            for prefix_len in sorted(by_len, reverse=True):
                prefix = _prefix_bits(lpm_value, prefix_len, width)
                entry = by_len[prefix_len].get(prefix)
                if entry is not None:
                    return entry
            return None
        for _, _, entry in self._scan_list:
            if all(
                m.matches(v, w)
                for m, v, w in zip(entry.matches, values, self.widths)
            ):
                return entry
        return None


def _prefix_bits(value: int, prefix_len: int, width: int) -> int:
    if prefix_len == 0:
        return 0
    return value >> (width - prefix_len)
