"""Parser for the P4-16 subset.

Grammar (informal)::

    program     := (header | struct | const | parser | control)*
    header      := "header" NAME "{" (type name ";")* "}"
    struct      := "struct" NAME "{" (type name ";")* "}"
    const       := "const" type name "=" expr ";"
    parser      := "parser" NAME "(" params ")" "{" state+ "}"
    state       := "state" name "{" extract* transition "}"
    extract     := name "." "extract" "(" path ")" ";"
    transition  := "transition" (name ";"
                   | "select" "(" expr ")" "{" case* "}")
    case        := (int ["&&&" int] | "default") ":" name ";"
    control     := "control" NAME "(" params ")" "{"
                       (action | table)* "apply" block "}"
    action      := "action" name "(" [type name, ...] ")" block
    table       := "table" name "{"
                       "key" "=" "{" (path ":" matchkind ";")* "}"
                       "actions" "=" "{" name ";" ... "}"
                       ["default_action" "=" name ["(" args ")"] ";"]
                       ["size" "=" int ";"] "}"
    block       := "{" statement* "}"
    statement   := path "=" expr ";"
                 | name ".apply()" ";"
                 | "if" "(" expr ")" block ["else" (block | if-stmt)]
                 | "mark_to_drop()" ";" | "mark_to_drop(" path ")" ";"
                 | "digest(" NAME "," "{" expr, ... "}" ")" ";"
                 | path ".setValid()" ";" | path ".setInvalid()" ";"
                 | name "(" args ")" ";"          (direct action call)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.p4 import ast as P
from repro.p4.lexer import Token, tokenize


class P4Parser:
    def __init__(self, text: str, source: str = "<p4>"):
        self.source = source
        self.toks = tokenize(text, source)
        self.i = 0

    # -- machinery -----------------------------------------------------------

    def peek(self, offset=0) -> Token:
        return self.toks[min(self.i + offset, len(self.toks) - 1)]

    def next(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind != "eof":
            self.i += 1
        return tok

    def at(self, kind, value=None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def accept(self, kind, value=None) -> bool:
        if self.at(kind, value):
            self.next()
            return True
        return False

    def expect(self, kind, value=None) -> Token:
        tok = self.peek()
        if not self.at(kind, value):
            want = value if value is not None else kind
            raise self.error(f"expected {want!r}, found {tok.value!r}")
        return self.next()

    def error(self, message) -> ParseError:
        tok = self.peek()
        return ParseError(message, self.source, tok.line, tok.column)

    def pos(self) -> P.Pos:
        tok = self.peek()
        return P.Pos(self.source, tok.line, tok.column)

    # -- program -----------------------------------------------------------------

    def parse(self) -> P.P4Program:
        headers, structs, parsers, controls = [], [], [], []
        constants = {}
        while not self.at("eof"):
            if self.at("keyword", "header"):
                headers.append(self._parse_header())
            elif self.at("keyword", "struct"):
                structs.append(self._parse_struct())
            elif self.at("keyword", "parser"):
                parsers.append(self._parse_parser())
            elif self.at("keyword", "control"):
                controls.append(self._parse_control())
            elif self.at("keyword", "const"):
                name, value = self._parse_const()
                constants[name] = value
            else:
                raise self.error(
                    f"expected declaration, found {self.peek().value!r}"
                )
        return P.P4Program(headers, structs, parsers, controls, constants)

    def _parse_type(self) -> P.P4Type:
        if self.accept("keyword", "bit"):
            self.expect("op", "<")
            width = self.expect("int").value[0]
            self.expect("op", ">")
            return P.BitType(width)
        if self.accept("keyword", "bool"):
            return P.BOOL
        tok = self.expect("ident")
        return P.NamedType(tok.value)

    def _parse_fields(self) -> List[P.FieldDecl]:
        self.expect("op", "{")
        fields = []
        while not self.accept("op", "}"):
            ftype = self._parse_type()
            fname = self.expect("ident").value
            self.expect("op", ";")
            fields.append(P.FieldDecl(fname, ftype))
        return fields

    def _parse_header(self) -> P.HeaderDecl:
        pos = self.pos()
        self.expect("keyword", "header")
        name = self.expect("ident").value
        return P.HeaderDecl(name, self._parse_fields(), pos)

    def _parse_struct(self) -> P.StructDecl:
        pos = self.pos()
        self.expect("keyword", "struct")
        name = self.expect("ident").value
        return P.StructDecl(name, self._parse_fields(), pos)

    def _parse_const(self) -> Tuple[str, int]:
        self.expect("keyword", "const")
        self._parse_type()
        name = self.expect("ident").value
        self.expect("op", "=")
        value = self.expect("int").value[0]
        self.expect("op", ";")
        return name, value

    def _parse_params(self) -> List[P.Param]:
        self.expect("op", "(")
        params: List[P.Param] = []
        while not self.accept("op", ")"):
            if params:
                self.expect("op", ",")
            direction = "none"
            tok = self.peek()
            if tok.kind == "keyword" and tok.value in ("in", "out", "inout"):
                direction = self.next().value
            ptype = self._parse_type()
            pname = self.expect("ident").value
            params.append(P.Param(direction, ptype, pname))
        return params

    # -- parser decl ------------------------------------------------------------------

    def _parse_parser(self) -> P.ParserDecl:
        pos = self.pos()
        self.expect("keyword", "parser")
        name = self.expect("ident").value
        params = self._parse_params()
        self.expect("op", "{")
        states = []
        while not self.accept("op", "}"):
            states.append(self._parse_state())
        if not any(s.name == "start" for s in states):
            raise self.error(f"parser {name} has no 'start' state")
        return P.ParserDecl(name, params, states, pos)

    def _parse_state(self) -> P.ParserState:
        pos = self.pos()
        self.expect("keyword", "state")
        name = self.expect("ident").value
        self.expect("op", "{")
        statements = []
        transition = None
        while not self.accept("op", "}"):
            if self.at("keyword", "transition"):
                transition = self._parse_transition()
            else:
                statements.append(self._parse_extract())
        if transition is None:
            raise self.error(f"state {name} has no transition")
        return P.ParserState(name, statements, transition, pos)

    def _parse_extract(self) -> P.ExtractStmt:
        pos = self.pos()
        self.expect("ident")  # packet variable name (by convention 'pkt')
        self.expect("op", ".")
        method = self.expect("ident").value
        if method != "extract":
            raise self.error(f"only extract() is supported in states, got {method}")
        self.expect("op", "(")
        target = self._parse_path()
        self.expect("op", ")")
        self.expect("op", ";")
        return P.ExtractStmt(target, pos)

    def _parse_transition(self) -> P.Transition:
        pos = self.pos()
        self.expect("keyword", "transition")
        if self.accept("keyword", "select"):
            self.expect("op", "(")
            expr = self._parse_expr()
            self.expect("op", ")")
            self.expect("op", "{")
            cases: List[P.SelectCase] = []
            while not self.accept("op", "}"):
                if self.accept("keyword", "default"):
                    value: Optional[Tuple[int, Optional[int]]] = None
                else:
                    v = self.expect("int").value[0]
                    mask = None
                    if self.accept("op", "&&&"):
                        mask = self.expect("int").value[0]
                    value = (v, mask)
                self.expect("op", ":")
                state = self._parse_state_ref()
                self.expect("op", ";")
                cases.append(P.SelectCase(value, state))
            return P.Transition(select_expr=expr, cases=cases, pos=pos)
        target = self._parse_state_ref()
        self.expect("op", ";")
        return P.Transition(target=target, pos=pos)

    def _parse_state_ref(self) -> str:
        tok = self.peek()
        if tok.kind in ("ident",):
            return self.next().value
        raise self.error(f"expected state name, found {tok.value!r}")

    # -- control decl ----------------------------------------------------------------------

    def _parse_control(self) -> P.ControlDecl:
        pos = self.pos()
        self.expect("keyword", "control")
        name = self.expect("ident").value
        params = self._parse_params()
        self.expect("op", "{")
        actions, tables = [], []
        apply_block = None
        while not self.accept("op", "}"):
            if self.at("keyword", "action"):
                actions.append(self._parse_action())
            elif self.at("keyword", "table"):
                tables.append(self._parse_table())
            elif self.at("keyword", "apply"):
                self.next()
                apply_block = self._parse_block()
            else:
                raise self.error(
                    f"expected action/table/apply, found {self.peek().value!r}"
                )
        if apply_block is None:
            raise self.error(f"control {name} has no apply block")
        return P.ControlDecl(name, params, actions, tables, apply_block, pos)

    def _parse_action(self) -> P.ActionDecl:
        pos = self.pos()
        self.expect("keyword", "action")
        name = self.expect("ident").value
        self.expect("op", "(")
        params: List[Tuple[P.P4Type, str]] = []
        while not self.accept("op", ")"):
            if params:
                self.expect("op", ",")
            ptype = self._parse_type()
            pname = self.expect("ident").value
            params.append((ptype, pname))
        body = self._parse_block()
        return P.ActionDecl(name, params, body, pos)

    def _parse_table(self) -> P.TableDecl:
        pos = self.pos()
        self.expect("keyword", "table")
        name = self.expect("ident").value
        self.expect("op", "{")
        keys: List[P.KeyElement] = []
        actions: List[str] = []
        default_action = None
        default_args: List[P.Expr] = []
        size = 1024
        while not self.accept("op", "}"):
            if self.accept("keyword", "key"):
                self.expect("op", "=")
                self.expect("op", "{")
                while not self.accept("op", "}"):
                    path = self._parse_path()
                    self.expect("op", ":")
                    kind_tok = self.peek()
                    if kind_tok.kind == "keyword" and kind_tok.value in (
                        "exact",
                        "lpm",
                        "ternary",
                    ):
                        self.next()
                    else:
                        raise self.error(
                            f"expected match kind, found {kind_tok.value!r}"
                        )
                    self.expect("op", ";")
                    keys.append(P.KeyElement(path, kind_tok.value))
            elif self.accept("keyword", "actions"):
                self.expect("op", "=")
                self.expect("op", "{")
                while not self.accept("op", "}"):
                    actions.append(self.expect("ident").value)
                    self.expect("op", ";")
            elif self.accept("keyword", "default_action"):
                self.expect("op", "=")
                default_action = self.expect("ident").value
                if self.accept("op", "("):
                    while not self.accept("op", ")"):
                        if default_args:
                            self.expect("op", ",")
                        default_args.append(self._parse_expr())
                self.expect("op", ";")
            elif self.accept("keyword", "size"):
                self.expect("op", "=")
                size = self.expect("int").value[0]
                self.expect("op", ";")
            else:
                raise self.error(
                    f"unexpected table property {self.peek().value!r}"
                )
        if not actions:
            raise self.error(f"table {name} declares no actions")
        return P.TableDecl(name, keys, actions, default_action, default_args, size, pos)

    # -- statements ---------------------------------------------------------------------------

    def _parse_block(self) -> List[P.Statement]:
        self.expect("op", "{")
        statements = []
        while not self.accept("op", "}"):
            statements.append(self._parse_statement())
        return statements

    def _parse_statement(self) -> P.Statement:
        pos = self.pos()
        if self.at("keyword", "if"):
            return self._parse_if()
        tok = self.peek()
        if tok.kind != "ident":
            raise self.error(f"expected statement, found {tok.value!r}")
        # Look ahead to classify.
        if tok.value == "mark_to_drop":
            self.next()
            self.expect("op", "(")
            if not self.at("op", ")"):
                self._parse_path()  # standard_metadata argument (v1model)
            self.expect("op", ")")
            self.expect("op", ";")
            return P.MarkToDropStmt(pos)
        if tok.value == "clone_port":
            self.next()
            self.expect("op", "(")
            port = self._parse_expr()
            self.expect("op", ")")
            self.expect("op", ";")
            return P.ClonePortStmt(port, pos)
        if tok.value == "digest":
            self.next()
            self.expect("op", "(")
            struct_name = self.expect("ident").value
            self.expect("op", ",")
            self.expect("op", "{")
            fields = []
            while not self.accept("op", "}"):
                if fields:
                    self.expect("op", ",")
                fields.append(self._parse_expr())
            self.expect("op", ")")
            self.expect("op", ";")
            return P.DigestStmt(struct_name, fields, pos)

        path = self._parse_path(allow_calls=True)
        # path may have consumed a trailing method call marker via
        # _parse_path's return convention; handle the cases below.
        if isinstance(path, tuple):
            base, method = path
            if method == "apply":
                self.expect("op", ";")
                if len(base.parts) != 1:
                    raise self.error("apply() on a non-table")
                return P.ApplyTableStmt(base.parts[0], pos)
            if method in ("setValid", "setInvalid"):
                self.expect("op", ";")
                return P.SetValidStmt(base, method == "setValid", pos)
            if method == "call":
                # direct action invocation: name(args);
                args = []
                while not self.accept("op", ")"):
                    if args:
                        self.expect("op", ",")
                    args.append(self._parse_expr())
                self.expect("op", ";")
                if len(base.parts) != 1:
                    raise self.error("action call on dotted path")
                return P.CallActionStmt(base.parts[0], args, pos)
            raise self.error(f"unsupported method {method!r}")
        self.expect("op", "=")
        value = self._parse_expr()
        self.expect("op", ";")
        return P.AssignStmt(path, value, pos)

    def _parse_if(self) -> P.IfStmt:
        pos = self.pos()
        self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        then_block = self._parse_block()
        else_block: List[P.Statement] = []
        if self.accept("keyword", "else"):
            if self.at("keyword", "if"):
                else_block = [self._parse_if()]
            else:
                else_block = self._parse_block()
        return P.IfStmt(cond, then_block, else_block, pos)

    def _parse_path(self, allow_calls: bool = False):
        """Parse a dotted path.

        With ``allow_calls``, a trailing ``.method(`` or a direct
        ``name(`` returns ``(Path, method_name)`` — ``"call"`` for the
        direct form (the '(' is consumed, args pending).
        """
        pos = self.pos()
        parts = [self.expect("ident").value]
        if allow_calls and self.at("op", "("):
            self.next()
            return (P.Path(parts, pos), "call")
        while self.at("op", "."):
            nxt = self.peek(1)
            # `apply` is a keyword but also the table-application method.
            if nxt.kind != "ident" and not (
                nxt.kind == "keyword" and nxt.value == "apply"
            ):
                break
            self.next()
            name = self.next().value
            if self.at("op", "(") and allow_calls:
                self.next()
                self.expect("op", ")")
                return (P.Path(parts, pos), name)
            if self.at("op", "(") and name == "isValid":
                self.next()
                self.expect("op", ")")
                # Caller wanted a plain path; isValid is an expression —
                # only _parse_primary passes through here.
                return P.IsValidExpr(P.Path(parts, pos), pos)
            parts.append(name)
        return P.Path(parts, pos)

    # -- expressions ---------------------------------------------------------------------------

    def _parse_expr(self) -> P.Expr:
        return self._parse_or()

    def _parse_or(self) -> P.Expr:
        left = self._parse_and()
        while self.at("op", "||"):
            pos = self.pos()
            self.next()
            left = P.BinaryExpr("||", left, self._parse_and(), pos)
        return left

    def _parse_and(self) -> P.Expr:
        left = self._parse_equality()
        while self.at("op", "&&"):
            pos = self.pos()
            self.next()
            left = P.BinaryExpr("&&", left, self._parse_equality(), pos)
        return left

    def _parse_equality(self) -> P.Expr:
        left = self._parse_relational()
        while self.at("op", "==") or self.at("op", "!="):
            pos = self.pos()
            op = self.next().value
            left = P.BinaryExpr(op, left, self._parse_relational(), pos)
        return left

    def _parse_relational(self) -> P.Expr:
        left = self._parse_bitor()
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("<", "<=", ">", ">="):
            pos = self.pos()
            op = self.next().value
            return P.BinaryExpr(op, left, self._parse_bitor(), pos)
        return left

    def _parse_bitor(self) -> P.Expr:
        left = self._parse_bitxor()
        while self.at("op", "|"):
            pos = self.pos()
            self.next()
            left = P.BinaryExpr("|", left, self._parse_bitxor(), pos)
        return left

    def _parse_bitxor(self) -> P.Expr:
        left = self._parse_bitand()
        while self.at("op", "^"):
            pos = self.pos()
            self.next()
            left = P.BinaryExpr("^", left, self._parse_bitand(), pos)
        return left

    def _parse_bitand(self) -> P.Expr:
        left = self._parse_shift()
        while self.at("op", "&") and not self.at("op", "&&"):
            pos = self.pos()
            self.next()
            left = P.BinaryExpr("&", left, self._parse_shift(), pos)
        return left

    def _parse_shift(self) -> P.Expr:
        left = self._parse_additive()
        while self.at("op", "<<") or self.at("op", ">>"):
            pos = self.pos()
            op = self.next().value
            left = P.BinaryExpr(op, left, self._parse_additive(), pos)
        return left

    def _parse_additive(self) -> P.Expr:
        left = self._parse_multiplicative()
        while self.at("op", "+") or self.at("op", "-"):
            pos = self.pos()
            op = self.next().value
            left = P.BinaryExpr(op, left, self._parse_multiplicative(), pos)
        return left

    def _parse_multiplicative(self) -> P.Expr:
        left = self._parse_unary()
        while self.at("op", "*") or self.at("op", "/") or self.at("op", "%"):
            pos = self.pos()
            op = self.next().value
            left = P.BinaryExpr(op, left, self._parse_unary(), pos)
        return left

    def _parse_unary(self) -> P.Expr:
        pos = self.pos()
        if self.accept("op", "!"):
            return P.UnaryExpr("!", self._parse_unary(), pos)
        if self.accept("op", "~"):
            return P.UnaryExpr("~", self._parse_unary(), pos)
        if self.accept("op", "-"):
            return P.UnaryExpr("-", self._parse_unary(), pos)
        return self._parse_primary()

    def _parse_primary(self) -> P.Expr:
        pos = self.pos()
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            value, width = tok.value
            return P.IntLit(value, width, pos)
        if tok.kind == "keyword" and tok.value in ("true", "false"):
            self.next()
            return P.BoolLit(tok.value == "true", pos)
        if self.accept("op", "("):
            expr = self._parse_expr()
            self.expect("op", ")")
            return expr
        if tok.kind == "ident":
            result = self._parse_path()
            return result  # Path or IsValidExpr
        raise self.error(f"expected expression, found {tok.value!r}")


def parse_p4(text: str, source: str = "<p4>") -> P.P4Program:
    """Parse P4-subset source text."""
    return P4Parser(text, source).parse()
