"""Lexer for the P4-16 subset."""

from __future__ import annotations

from typing import List

from repro.errors import LexError

KEYWORDS = {
    "header",
    "struct",
    "parser",
    "control",
    "state",
    "transition",
    "select",
    "default",
    "action",
    "table",
    "key",
    "actions",
    "default_action",
    "size",
    "apply",
    "if",
    "else",
    "bit",
    "bool",
    "true",
    "false",
    "const",
    "exact",
    "lpm",
    "ternary",
    "in",
    "out",
    "inout",
}

OPERATORS = [
    "&&&",
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "<<",
    ">>",
    "(",
    ")",
    "{",
    "}",
    "<",
    ">",
    ";",
    ":",
    ",",
    ".",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "+",
    "-",
    "*",
    "/",
    "%",
]


class Token:
    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str, source: str = "<p4>") -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    line = 1
    column = 1
    n = len(text)

    def advance(count: int) -> None:
        nonlocal pos, line, column
        for _ in range(count):
            if pos < n:
                if text[pos] == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                pos += 1

    while pos < n:
        ch = text[pos]
        if ch in " \t\r\n":
            advance(1)
            continue
        if text.startswith("//", pos):
            while pos < n and text[pos] != "\n":
                advance(1)
            continue
        if text.startswith("/*", pos):
            advance(2)
            while pos < n and not text.startswith("*/", pos):
                advance(1)
            if pos >= n:
                raise LexError("unterminated comment", source, line, column)
            advance(2)
            continue
        start_line, start_col = line, column
        if ch.isdigit():
            start = pos
            if text.startswith("0x", pos) or text.startswith("0X", pos):
                advance(2)
                while pos < n and text[pos] in "0123456789abcdefABCDEF_":
                    advance(1)
                value = int(text[start:pos].replace("_", ""), 16)
            elif text.startswith("0b", pos) or text.startswith("0B", pos):
                advance(2)
                while pos < n and text[pos] in "01_":
                    advance(1)
                value = int(text[start:pos].replace("_", ""), 2)
            else:
                while pos < n and (text[pos].isdigit() or text[pos] == "_"):
                    advance(1)
                # Width-annotated literal 8w255 / 8s-style is reduced to
                # plain width'value in this subset: support NwV.
                if pos < n and text[pos] == "w":
                    width = int(text[start:pos].replace("_", ""))
                    advance(1)
                    vstart = pos
                    if text.startswith("0x", pos) or text.startswith("0X", pos):
                        advance(2)
                        while pos < n and text[pos] in "0123456789abcdefABCDEF_":
                            advance(1)
                        value = int(text[vstart:pos].replace("_", ""), 16)
                    else:
                        while pos < n and (text[pos].isdigit() or text[pos] == "_"):
                            advance(1)
                        value = int(text[vstart:pos].replace("_", ""))
                    tokens.append(
                        Token("int", (value, width), start_line, start_col)
                    )
                    continue
                value = int(text[start:pos].replace("_", ""))
            tokens.append(Token("int", (value, None), start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                advance(1)
            word = text[start:pos]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, start_line, start_col))
            continue
        for op in OPERATORS:
            if text.startswith(op, pos):
                advance(len(op))
                tokens.append(Token("op", op, start_line, start_col))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", source, line, column)
    tokens.append(Token("eof", None, line, column))
    return tokens
