"""Runtime metadata for a compiled pipeline (the P4Info analog).

P4Runtime drives a device through numeric ids; P4Info is the contract
that maps program entities (tables, actions, digests) to those ids and
describes their shapes (key fields, widths, match kinds, action
parameters).  The Nerpa codegen consumes this to generate control-plane
relations, and the P4Runtime layer uses it to validate writes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import DataPlaneError


class MatchField:
    __slots__ = ("name", "width", "match_kind")

    def __init__(self, name: str, width: int, match_kind: str):
        self.name = name
        self.width = width
        self.match_kind = match_kind  # exact | lpm | ternary

    def to_json(self):
        return {"name": self.name, "width": self.width, "match_kind": self.match_kind}

    def __repr__(self):
        return f"{self.name}:{self.match_kind}/{self.width}"


class ActionParam:
    __slots__ = ("name", "width")

    def __init__(self, name: str, width: int):
        self.name = name
        self.width = width

    def to_json(self):
        return {"name": self.name, "width": self.width}


class ActionInfo:
    __slots__ = ("id", "name", "params")

    def __init__(self, id: int, name: str, params: List[ActionParam]):
        self.id = id
        self.name = name
        self.params = params

    def to_json(self):
        return {
            "id": self.id,
            "name": self.name,
            "params": [p.to_json() for p in self.params],
        }


class TableInfo:
    __slots__ = (
        "id",
        "name",
        "match_fields",
        "action_names",
        "default_action",
        "default_params",
        "size",
    )

    def __init__(
        self,
        id: int,
        name: str,
        match_fields: List[MatchField],
        action_names: List[str],
        default_action: Optional[str],
        size: int,
        default_params: Optional[List[int]] = None,
    ):
        self.id = id
        self.name = name
        self.match_fields = match_fields
        self.action_names = action_names
        self.default_action = default_action
        self.default_params = list(default_params or [])
        self.size = size

    def to_json(self):
        return {
            "id": self.id,
            "name": self.name,
            "match_fields": [m.to_json() for m in self.match_fields],
            "actions": list(self.action_names),
            "default_action": self.default_action,
            "default_params": list(self.default_params),
            "size": self.size,
        }


class DigestInfo:
    __slots__ = ("id", "name", "fields")

    def __init__(self, id: int, name: str, fields: List[ActionParam]):
        self.id = id
        self.name = name
        self.fields = fields  # named, with widths

    def to_json(self):
        return {
            "id": self.id,
            "name": self.name,
            "fields": [f.to_json() for f in self.fields],
        }


class P4Info:
    """All runtime-relevant metadata of one pipeline."""

    def __init__(self):
        self.tables: Dict[str, TableInfo] = {}
        self.actions: Dict[str, ActionInfo] = {}
        self.digests: Dict[str, DigestInfo] = {}
        self._tables_by_id: Dict[int, TableInfo] = {}
        self._next_id = 1

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id - 1

    def add_action(self, name: str, params: List[ActionParam]) -> ActionInfo:
        if name in self.actions:
            return self.actions[name]
        info = ActionInfo(self._fresh_id(), name, params)
        self.actions[name] = info
        return info

    def add_table(
        self,
        name: str,
        match_fields: List[MatchField],
        action_names: List[str],
        default_action: Optional[str],
        size: int,
        default_params: Optional[List[int]] = None,
    ) -> TableInfo:
        if name in self.tables:
            raise DataPlaneError(f"duplicate table {name!r}")
        info = TableInfo(
            self._fresh_id(),
            name,
            match_fields,
            action_names,
            default_action,
            size,
            default_params,
        )
        self.tables[name] = info
        self._tables_by_id[info.id] = info
        return info

    def add_digest(self, name: str, fields: List[ActionParam]) -> DigestInfo:
        if name in self.digests:
            return self.digests[name]
        info = DigestInfo(self._fresh_id(), name, fields)
        self.digests[name] = info
        return info

    def table(self, name: str) -> TableInfo:
        try:
            return self.tables[name]
        except KeyError:
            raise DataPlaneError(f"unknown table {name!r}") from None

    def table_by_id(self, table_id: int) -> TableInfo:
        try:
            return self._tables_by_id[table_id]
        except KeyError:
            raise DataPlaneError(f"unknown table id {table_id}") from None

    def action(self, name: str) -> ActionInfo:
        try:
            return self.actions[name]
        except KeyError:
            raise DataPlaneError(f"unknown action {name!r}") from None

    def to_json(self):
        return {
            "tables": [t.to_json() for t in self.tables.values()],
            "actions": [a.to_json() for a in self.actions.values()],
            "digests": [d.to_json() for d in self.digests.values()],
        }
