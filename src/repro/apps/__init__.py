"""Applications built on the framework: the paper's ``snvs`` switch and
the OVN codebase-evolution model behind Figure 3."""
