"""snvs — the Simple Network Virtual Switch (paper §4.3).

The Nerpa repository's flagship example: an L2 virtual switch with
VLANs (access and trunk ports), MAC learning through digests, a small
L2 ACL, per-VLAN flooding, and port mirroring — written as the three
Nerpa artifacts:

* :data:`SNVS_SCHEMA` — the OVSDB management schema (5 tables);
* :data:`SNVS_DLOG` — the hand-written control-plane rules;
* :data:`SNVS_P4` — the data-plane program.

:func:`build_snvs` compiles the full stack, and :class:`SnvsNetwork`
stands up a complete running instance (database + controller +
behavioral switch) for tests, examples, and benchmarks.
"""

from repro.apps.snvs.artifacts import SNVS_DLOG, SNVS_P4, SNVS_SCHEMA, build_snvs
from repro.apps.snvs.network import SnvsNetwork

__all__ = ["SNVS_DLOG", "SNVS_P4", "SNVS_SCHEMA", "SnvsNetwork", "build_snvs"]
