"""A complete running snvs instance: database + controller + switch.

``SnvsNetwork`` wires up the full stack the way the paper's integration
test does ("executes the full network stack, using OVSDB, the DDlog
runtime, and the P4 behavioral simulator") and exposes the operations a
network administrator would perform against the management plane —
everything else (rule evaluation, table programming, learning) happens
through the Nerpa machinery.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.apps.snvs.artifacts import build_snvs
from repro.core.controller import NerpaController
from repro.mgmt.database import Database
from repro.p4.headers import ethernet, mac_to_int
from repro.p4.simulator import Simulator


class SnvsNetwork:
    """One virtual switch managed through the full Nerpa stack."""

    def __init__(self, n_ports: int = 64, learning: bool = True,
                 recursive_mode: str = "dred"):
        self.project = build_snvs(recursive_mode=recursive_mode)
        self.db = Database(self.project.schema)
        self.switch: Simulator = self.project.new_simulator(n_ports=n_ports)
        self.controller = NerpaController(
            self.project, self.db, [self.switch]
        )
        self.controller.start()
        self.set_learning(learning)

    # -- management operations (what an admin would do) ---------------------

    def add_vlan(self, vid: int, description: str = "") -> str:
        (result,) = self.db.transact(
            [
                {
                    "op": "insert",
                    "table": "Vlan",
                    "row": {"vid": vid, "description": description},
                }
            ]
        )
        self.controller.drain()
        return result["uuid"]

    def add_access_port(self, port: int, vlan: int, name: str = "") -> str:
        (result,) = self.db.transact(
            [
                {
                    "op": "insert",
                    "table": "Port",
                    "row": {
                        "name": name or f"port{port}",
                        "port_num": port,
                        "vlan_mode": "access",
                        "tag": vlan,
                    },
                }
            ]
        )
        self.controller.drain()
        return result["uuid"]

    def add_trunk_port(
        self,
        port: int,
        native_vlan: int,
        trunks: Sequence[int],
        name: str = "",
    ) -> str:
        (result,) = self.db.transact(
            [
                {
                    "op": "insert",
                    "table": "Port",
                    "row": {
                        "name": name or f"port{port}",
                        "port_num": port,
                        "vlan_mode": "trunk",
                        "tag": native_vlan,
                        "trunks": frozenset(trunks),
                    },
                }
            ]
        )
        self.controller.drain()
        return result["uuid"]

    def remove_port(self, port: int) -> None:
        self.db.transact(
            [
                {
                    "op": "delete",
                    "table": "Port",
                    "where": [["port_num", "==", port]],
                }
            ]
        )
        self.controller.drain()

    def add_mirror(self, src_port: int, dst_port: int, name: str = "") -> str:
        (result,) = self.db.transact(
            [
                {
                    "op": "insert",
                    "table": "Mirror",
                    "row": {
                        "name": name or f"mirror{src_port}",
                        "src_port": src_port,
                        "dst_port": dst_port,
                    },
                }
            ]
        )
        self.controller.drain()
        return result["uuid"]

    def block_mac(self, vlan: int, mac: str) -> str:
        (result,) = self.db.transact(
            [
                {
                    "op": "insert",
                    "table": "BlockedMac",
                    "row": {"vlan": vlan, "mac": mac_to_int(mac)},
                }
            ]
        )
        self.controller.drain()
        return result["uuid"]

    def set_learning(self, enabled: bool) -> None:
        self.db.transact(
            [
                {"op": "delete", "table": "SwitchConfig", "where": []},
                {
                    "op": "insert",
                    "table": "SwitchConfig",
                    "row": {"name": "snvs", "learning_enabled": enabled},
                },
            ]
        )
        self.controller.drain()

    # -- traffic -----------------------------------------------------------------

    def send(
        self,
        port: int,
        dst: str,
        src: str,
        vlan: Optional[int] = None,
        payload: bytes = b"",
    ) -> List[Tuple[int, bytes]]:
        """Inject an Ethernet frame; returns ``[(egress_port, bytes)]``.

        Digests emitted during processing feed straight back into the
        controller (in-process), so MAC learning takes effect before
        this call returns.
        """
        frame = ethernet(dst, src, vlan=vlan, payload=payload)
        outputs = self.switch.inject(port, frame)
        # Digest feedback rides the asynchronous pipeline; drain it so
        # learning is visible before the next frame.
        self.controller.drain()
        return outputs

    # -- inspection ---------------------------------------------------------------

    def fwd_entries(self) -> int:
        return len(self.switch.table("fwd"))

    def metrics(self):
        return self.controller.metrics()
