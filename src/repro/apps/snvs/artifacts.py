"""The three snvs artifacts: management schema, rules, data plane.

The feature set mirrors the paper's description of snvs: "key
networking features, including VLANs, MAC learning, and port
mirroring", plus a small L2 ACL so negation appears in the rules.

How a packet flows (see :data:`SNVS_P4`):

1. the parser extracts Ethernet and an optional 802.1Q tag;
2. ``in_vlan`` classifies the packet into a VLAN based on ingress port
   and tag (access ports assign their tag and reject tagged frames;
   trunk ports accept configured tags and assign the native VLAN to
   untagged frames);
3. ``blocked`` drops frames from blocked MACs (from the ACL table);
4. ``learned`` emits a MAC-learning digest when the source is unknown;
5. ``fwd`` forwards to a learned port or floods the VLAN's multicast
   group (group id = VLAN id, membership computed by the rules);
6. ``mirror`` clones traffic from mirrored ingress ports;
7. the egress control drops hairpins and re-tags per output port
   (trunk ports emit tagged, access ports untagged).
"""

from __future__ import annotations

from repro.core.pipeline import NerpaProject, nerpa_build
from repro.mgmt.schema import (
    ColumnSchema,
    ColumnType,
    DatabaseSchema,
    TableSchema,
)


def snvs_schema() -> DatabaseSchema:
    """The snvs management schema: 5 tables, 2-5 columns each."""
    return DatabaseSchema(
        "snvs",
        [
            TableSchema(
                "Port",
                [
                    ColumnSchema("name", ColumnType("string")),
                    ColumnSchema("port_num", ColumnType("integer")),
                    # "access" or "trunk"
                    ColumnSchema("vlan_mode", ColumnType("string")),
                    # access VLAN, or native VLAN for trunks
                    ColumnSchema("tag", ColumnType("integer")),
                    ColumnSchema(
                        "trunks", ColumnType("integer", min=0, max="unlimited")
                    ),
                ],
                indexes=[("port_num",)],
            ),
            TableSchema(
                "Vlan",
                [
                    ColumnSchema("vid", ColumnType("integer")),
                    ColumnSchema("description", ColumnType("string")),
                ],
                indexes=[("vid",)],
            ),
            TableSchema(
                "Mirror",
                [
                    ColumnSchema("name", ColumnType("string")),
                    ColumnSchema("src_port", ColumnType("integer")),
                    ColumnSchema("dst_port", ColumnType("integer")),
                ],
            ),
            TableSchema(
                "BlockedMac",
                [
                    ColumnSchema("vlan", ColumnType("integer")),
                    ColumnSchema("mac", ColumnType("integer")),
                ],
            ),
            TableSchema(
                "SwitchConfig",
                [
                    ColumnSchema("name", ColumnType("string")),
                    ColumnSchema("learning_enabled", ColumnType("boolean")),
                ],
            ),
        ],
    )


SNVS_SCHEMA = snvs_schema()


SNVS_P4 = """
// snvs data plane: VLAN-aware learning L2 switch with mirroring.

header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> ethertype;
}

header vlan_t {
    bit<3>  pcp;
    bit<1>  dei;
    bit<12> vid;
    bit<16> ethertype;
}

struct headers_t {
    ethernet_t eth;
    vlan_t     vlan;
}

struct metadata_t {
    bit<12> vlan;     // VLAN the packet was classified into
    bit<12> pkt_vid;  // VID carried by the packet's tag (0 if untagged)
    bit<1>  tagged;
    bit<1>  ok;       // cleared when an ACL/classification drop fires
}

struct mac_learn_t {
    bit<48> mac;
    bit<16>  port;
    bit<12> vlan;
}

parser SnvsParser(packet_in pkt, out headers_t hdr, inout metadata_t meta,
                  inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ethertype) {
            0x8100: parse_vlan;
            default: accept;
        }
    }
    state parse_vlan {
        pkt.extract(hdr.vlan);
        transition accept;
    }
}

control SnvsIngress(inout headers_t hdr, inout metadata_t meta,
                    inout standard_metadata_t std) {
    action drop() {
        mark_to_drop();
        meta.ok = 0;
    }
    action set_vlan(bit<12> vid) { meta.vlan = vid; }
    action use_tag() { meta.vlan = meta.pkt_vid; }
    action learn() {
        digest(mac_learn_t, {hdr.eth.src, std.ingress_port, meta.vlan});
    }
    action forward(bit<16> port) { std.egress_spec = port; }
    action flood() { std.mcast_grp = meta.vlan; }
    action mirror_to(bit<16> port) { clone_port(port); }

    table in_vlan {
        key = {
            std.ingress_port : exact;
            meta.tagged      : exact;
            meta.pkt_vid     : ternary;
        }
        actions = { set_vlan; use_tag; drop; }
        default_action = drop();
        size = 65536;
    }
    table blocked {
        key = { meta.vlan : exact; hdr.eth.src : exact; }
        actions = { drop; NoAction; }
        default_action = NoAction();
        size = 4096;
    }
    table learned {
        key = { meta.vlan : exact; hdr.eth.src : exact; }
        actions = { NoAction; learn; }
        default_action = learn();
        size = 65536;
    }
    table fwd {
        key = { meta.vlan : exact; hdr.eth.dst : exact; }
        actions = { forward; flood; }
        default_action = flood();
        size = 65536;
    }
    table mirror_tap {
        key = { std.ingress_port : exact; }
        actions = { mirror_to; NoAction; }
        default_action = NoAction();
        size = 4096;
    }

    apply {
        meta.ok = 1;
        if (hdr.vlan.isValid()) {
            meta.tagged = 1;
            meta.pkt_vid = hdr.vlan.vid;
        } else {
            meta.tagged = 0;
            meta.pkt_vid = 0;
        }
        in_vlan.apply();
        if (meta.ok == 1) {
            blocked.apply();
        }
        if (meta.ok == 1) {
            learned.apply();
            fwd.apply();
        }
        mirror_tap.apply();
    }
}

control SnvsEgress(inout headers_t hdr, inout metadata_t meta,
                   inout standard_metadata_t std) {
    action out_tagged() {
        if (!hdr.vlan.isValid()) {
            hdr.vlan.setValid();
            hdr.vlan.ethertype = hdr.eth.ethertype;
            hdr.eth.ethertype = 0x8100;
            hdr.vlan.pcp = 0;
            hdr.vlan.dei = 0;
        }
        hdr.vlan.vid = meta.vlan;
    }
    action out_untagged() {
        if (hdr.vlan.isValid()) {
            hdr.eth.ethertype = hdr.vlan.ethertype;
            hdr.vlan.setInvalid();
        }
    }

    table out_tag {
        key = { std.egress_port : exact; }
        actions = { out_tagged; out_untagged; }
        default_action = out_untagged();
        size = 65536;
    }

    apply {
        if (std.egress_port == std.ingress_port) {
            mark_to_drop();
        } else {
            out_tag.apply();
        }
    }
}
"""


SNVS_DLOG = """
// snvs control plane.  Input relations (Port, Vlan, Mirror, BlockedMac,
// SwitchConfig, MacLearn) and output relations (InVlan, Blocked,
// Learned, Fwd, MirrorTap, OutTag) are generated from the schema and
// the P4 program; only the rules below are hand-written.

// Which VLANs each port participates in (only declared VLANs count).
relation PortVlan(port: bigint, vlan: bigint)
PortVlan(p, t) :- Port(_, _, p, "access", t, _), Vlan(_, t, _).
PortVlan(p, t) :- Port(_, _, p, "trunk", t, _), Vlan(_, t, _).
PortVlan(p, v) :- Port(_, _, p, "trunk", _, trunks),
                  var v = FlatMap(trunks), Vlan(_, v, _).

// ---- VLAN classification (table in_vlan) -------------------------------
// Access port, untagged frame: classify into the access VLAN.
InVlan(p as bit<16>, 0, (0, 0), InVlanActionSetVlan{t as bit<12>}, 1) :-
    Port(_, _, p, "access", t, _), Vlan(_, t, _).
// Trunk port, untagged frame: native VLAN.
InVlan(p as bit<16>, 0, (0, 0), InVlanActionSetVlan{t as bit<12>}, 1) :-
    Port(_, _, p, "trunk", t, _), Vlan(_, t, _).
// Trunk port, tagged frame with an allowed VID: use the tag.
InVlan(p as bit<16>, 1, (v as bit<12>, 4095), InVlanActionUseTag, 2) :-
    Port(_, _, p, "trunk", _, trunks), var v = FlatMap(trunks), Vlan(_, v, _).
// (Anything else falls through to in_vlan's default drop.)

// ---- L2 ACL (table blocked) ---------------------------------------------
Blocked(v as bit<12>, m as bit<48>, BlockedActionDrop) :-
    BlockedMac(_, v, m).

// ---- MAC learning (tables learned / fwd, fed by the digest loop) --------
// One (vlan, mac) may momentarily be reported at several ports (station
// moves); pick the highest port deterministically.
relation MacAt(vlan: bit<12>, mac: bit<48>, port: bit<16>)
MacAt(vlan, mac, port) :- MacLearn(mac, port, vlan), LearningOn().

Learned(vlan, mac, LearnedActionNoAction) :- MacAt(vlan, mac, _).
Fwd(vlan, mac, FwdActionForward{p}) :-
    MacAt(vlan, mac, port), var p = Aggregate((vlan, mac), max(port)).

// Learning can be disabled fleet-wide from the management plane.
relation LearningOn()
LearningOn() :- SwitchConfig(_, _, true).

// ---- Flooding (multicast groups; group id = VLAN id) ---------------------
// MulticastGroup is interpreted by the controller as replication
// configuration rather than a P4 table.
output relation MulticastGroup(group: bigint, port: bigint)
MulticastGroup(v, p) :- PortVlan(p, v).

// ---- Port mirroring (table mirror_tap) -------------------------------------
MirrorTap(sp as bit<16>, MirrorTapActionMirrorTo{dp as bit<16>}) :-
    Mirror(_, _, sp, dp).

// ---- Egress tagging (table out_tag) ----------------------------------------
OutTag(p as bit<16>, OutTagActionOutTagged) :- Port(_, _, p, "trunk", _, _).
OutTag(p as bit<16>, OutTagActionOutUntagged) :- Port(_, _, p, "access", _, _).
"""


def build_snvs(recursive_mode: str = "dred") -> NerpaProject:
    """Compile the snvs stack into a :class:`NerpaProject`."""
    return nerpa_build(
        SNVS_SCHEMA,
        SNVS_DLOG,
        SNVS_P4,
        dlog_name="snvs.dl",
        p4_name="snvs.p4",
        recursive_mode=recursive_mode,
    )
