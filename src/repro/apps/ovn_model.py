"""A generative model of OVN-controller codebase evolution (Figure 3).

Figure 3 plots, over OVN's release history, the controller codebase
size and the number of OpenFlow program fragments scattered through it,
growing together.  We cannot clone the OVN repository offline, so we
reproduce the *mechanism* the paper describes in §1 and measure the
model:

* each release adds features; a feature of complexity ``c`` contributes
  ``c * LOC_PER_UNIT`` lines of controller logic and ``c *
  FRAGMENTS_PER_UNIT`` OpenFlow fragment emission sites;
* crucially, features interact: "additional network features require
  new flow rule fragments for tables and associated priorities", and
  "the controller must handle ... any possible combination of runtime
  policies".  Each new feature therefore also pays an interaction cost
  proportional to the number of *existing* features it composes with —
  that cross term is what makes fragments "scatter over the quickly
  growing code base";
* the same feature in Nerpa is a handful of rules whose composition is
  handled by the query engine, so the cross term (and the fragment
  scatter) largely disappears.

The feature timeline follows OVN's actual release history (feature
names and rough sizes from release notes); the constants are calibrated
so the 2022 endpoint lands near the real ovn-controller's ~20k lines
visible in Fig. 3.
"""

from __future__ import annotations

import random
from typing import Dict, List

LOC_PER_UNIT = 120
FRAGMENTS_PER_UNIT = 7
INTERACTION_LOC_PER_PAIR = 14
INTERACTION_FRAGMENTS_PER_PAIR = 0.8
INTERACTION_RATE = 0.35  # fraction of existing features a new one composes with

NERPA_RULE_LOC_PER_UNIT = 9
NERPA_INTERACTION_LOC_PER_PAIR = 0.4

# (release, year, [(feature, complexity-units), ...]) — the OVN timeline.
RELEASES = [
    ("2.6", 2016.5, [("logical_switching", 5), ("acls", 3), ("l3_gateways", 4)]),
    ("2.7", 2017.0, [("dhcp", 3), ("snat_dnat", 4)]),
    ("2.8", 2017.5, [("dns", 2), ("acl_logging", 2), ("distributed_fw", 4)]),
    ("2.9", 2018.0, [("ipv6_ra", 2), ("port_groups", 3)]),
    ("2.10", 2018.5, [("ha_chassis", 4), ("policy_routing", 3)]),
    ("2.11", 2019.0, [("dhcp_relay", 2), ("ipam", 3)]),
    ("2.12", 2019.5, [("ipv6_nat", 3), ("ecmp_routes", 3)]),
    ("2.13", 2020.0, [("ovn_ic", 5), ("lb_health_checks", 3)]),
    ("20.06", 2020.5, [("reject_acls", 2), ("pg_acl_fastpath", 3)]),
    ("20.12", 2021.0, [("chassis_redirect", 3), ("bfd", 3)]),
    ("21.06", 2021.5, [("vip_affinity", 2), ("multicast_igmp", 4)]),
    ("21.12", 2022.0, [("mac_binding_aging", 2), ("dgp", 3)]),
    ("22.06", 2022.5, [("cfm", 2), ("stateless_acls", 2), ("vtep_extensions", 3)]),
]


class ReleasePoint:
    """One point of the Figure 3 series."""

    __slots__ = (
        "release",
        "year",
        "n_features",
        "imperative_loc",
        "fragments",
        "nerpa_loc",
    )

    def __init__(self, release, year, n_features, imperative_loc, fragments, nerpa_loc):
        self.release = release
        self.year = year
        self.n_features = n_features
        self.imperative_loc = imperative_loc
        self.fragments = fragments
        self.nerpa_loc = nerpa_loc

    def as_dict(self) -> Dict[str, object]:
        return {
            "release": self.release,
            "year": self.year,
            "features": self.n_features,
            "imperative_loc": self.imperative_loc,
            "fragments": self.fragments,
            "nerpa_loc": self.nerpa_loc,
        }


def simulate_growth(seed: int = 7) -> List[ReleasePoint]:
    """Replay the release timeline; returns the cumulative series."""
    rng = random.Random(seed)
    points: List[ReleasePoint] = []
    existing_features = 0
    imperative_loc = 6000  # pre-SDN plumbing a controller starts with
    fragments = 120
    nerpa_loc = 700  # the runtime-independent core of an equivalent program

    for release, year, features in RELEASES:
        for _name, complexity in features:
            jitter = rng.uniform(0.85, 1.15)
            interactions = existing_features * INTERACTION_RATE
            imperative_loc += int(
                complexity * LOC_PER_UNIT * jitter
                + interactions * INTERACTION_LOC_PER_PAIR
            )
            fragments += int(
                complexity * FRAGMENTS_PER_UNIT * jitter
                + interactions * INTERACTION_FRAGMENTS_PER_PAIR
            )
            nerpa_loc += int(
                complexity * NERPA_RULE_LOC_PER_UNIT * jitter
                + interactions * NERPA_INTERACTION_LOC_PER_PAIR
            )
            existing_features += 1
        points.append(
            ReleasePoint(
                release, year, existing_features, imperative_loc, fragments, nerpa_loc
            )
        )
    return points


def correlation(xs: List[float], ys: List[float]) -> float:
    """Pearson correlation (Fig. 3's claim is that LoC and fragment
    count 'have grown at a similar rate' — i.e. near-perfect correlation)."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx**0.5 * vy**0.5)
