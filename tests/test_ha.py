"""Multi-controller HA tests: leased leadership, warm-standby takeover,
end-to-end write fencing, and shared-checkpoint races.

Four layers are covered:

* lease — the ``_Lease`` CAS protocol (``repro.mgmt.lease``): epoch
  monotonicity across acquire/release/steal, renew guarded by
  ``(owner, epoch)``, and the ``fence_ops`` wait guard aborting a
  deposed leader's management transactions;
* follower — ``CheckpointFollower`` tailing a live leader's delta
  chain: incremental segment replay, full-reload detection after a
  compaction, and the read-only (``heal=False``) discipline that must
  never unlink a concurrent writer's segments;
* state machine — ``HAController`` promotion/demotion driven by a fake
  clock and ``poke()`` (no sleeps): standby→leader on expiry, fast
  takeover on graceful release, demotion on a failed renew;
* failover oracle — a leader killed mid-sequence (and mid-checkpoint)
  must hand off to a standby whose final engine dumps and device
  tables are identical to an uninterrupted run's, while the deposed
  leader's writes are provably rejected by the fencing epoch.
"""

import threading
import time

import pytest

from repro.apps.snvs import build_snvs
from repro.core.controller import NerpaController
from repro.core.ha import CheckpointFollower, HAController
from repro.errors import TransactionError
from repro.mgmt import lease as leaselib
from repro.mgmt.client import ManagementClient
from repro.mgmt.database import Database
from repro.mgmt.schema import simple_schema
from repro.mgmt.server import ManagementServer
from repro.p4runtime.api import DeviceService, FencedWriteError, TableWrite

LEASE = "test-lease"


class FakeClock:
    """Injectable wall clock: lease expiry is driven by the test."""

    def __init__(self, start: float = 1000.0):
        self._now = start
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        with self._lock:
            self._now += seconds


def make_db():
    return Database(
        simple_schema(
            "net",
            {
                "Port": {"name": "string", "vlan": "integer"},
            },
        )
    )


def wait_for(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {what}")


# -- the lease protocol ------------------------------------------------------


class TestLease:
    def test_first_acquire_creates_row_at_epoch_one(self):
        db = make_db()
        got = db.lease_acquire(LEASE, "a", ttl=10.0, now=100.0)
        assert got == {
            "name": LEASE,
            "owner": "a",
            "epoch": 1,
            "expires": 110.0,
        }

    def test_live_lease_is_refused(self):
        db = make_db()
        db.lease_acquire(LEASE, "a", ttl=10.0, now=100.0)
        assert db.lease_acquire(LEASE, "b", ttl=10.0, now=105.0) is None
        # The holder is unchanged.
        assert db.lease_get(LEASE)["owner"] == "a"

    def test_expired_lease_taken_with_epoch_bump(self):
        db = make_db()
        db.lease_acquire(LEASE, "a", ttl=10.0, now=100.0)
        got = db.lease_acquire(LEASE, "b", ttl=10.0, now=111.0)
        assert got["owner"] == "b"
        assert got["epoch"] == 2

    def test_steal_ignores_expiry_but_still_bumps_epoch(self):
        db = make_db()
        db.lease_acquire(LEASE, "a", ttl=10.0, now=100.0)
        got = db.lease_acquire(LEASE, "b", ttl=10.0, now=101.0, steal=True)
        assert got["owner"] == "b"
        assert got["epoch"] == 2

    def test_release_expires_but_keeps_row_and_epoch(self):
        db = make_db()
        db.lease_acquire(LEASE, "a", ttl=10.0, now=100.0)
        assert db.lease_release(LEASE, "a")
        row = db.lease_get(LEASE)
        assert row["epoch"] == 1
        assert row["expires"] == 0.0
        # Next acquire needs no TTL wait and the epoch keeps counting.
        got = db.lease_acquire(LEASE, "b", ttl=10.0, now=100.0)
        assert got["epoch"] == 2

    def test_release_by_non_owner_is_a_noop(self):
        db = make_db()
        db.lease_acquire(LEASE, "a", ttl=10.0, now=100.0)
        assert not db.lease_release(LEASE, "b")
        assert db.lease_get(LEASE)["expires"] == 110.0

    def test_epochs_strictly_increase_across_leaderships(self):
        db = make_db()
        epochs = []
        for i in range(6):
            owner = "a" if i % 2 == 0 else "b"
            got = db.lease_acquire(LEASE, owner, ttl=10.0, now=100.0)
            epochs.append(got["epoch"])
            db.lease_release(LEASE, owner)
        assert epochs == [1, 2, 3, 4, 5, 6]

    def test_renew_extends_only_while_owner_and_epoch_match(self):
        db = make_db()
        got = db.lease_acquire(LEASE, "a", ttl=10.0, now=100.0)
        assert db.lease_renew(LEASE, "a", got["epoch"], ttl=10.0, now=105.0)
        assert db.lease_get(LEASE)["expires"] == 115.0
        # Wrong epoch (a stale leader from a previous leadership).
        assert not db.lease_renew(LEASE, "a", got["epoch"] - 1, 10.0, now=106.0)
        # Wrong owner (a deposed leader after a takeover).
        assert not db.lease_renew(LEASE, "b", got["epoch"], 10.0, now=106.0)
        assert db.lease_get(LEASE)["expires"] == 115.0

    def test_fence_ops_abort_deposed_leaders_transactions(self):
        db = make_db()
        got = db.lease_acquire(LEASE, "a", ttl=10.0, now=100.0)
        fence = leaselib.fence_ops(LEASE, "a", got["epoch"])
        insert = {"op": "insert", "table": "Port", "row": {"name": "p", "vlan": 1}}
        # While the lease is held, the guarded commit goes through.
        db.transact(fence + [dict(insert, row={"name": "held", "vlan": 1})])
        assert db.count("Port") == 1
        # Another replica takes over; the old guard now aborts the whole
        # transaction atomically — nothing commits.
        db.lease_acquire(LEASE, "b", ttl=10.0, now=111.0)
        with pytest.raises(TransactionError):
            db.transact(fence + [insert])
        assert db.count("Port") == 1

    def test_peek_without_row(self):
        assert make_db().lease_get(LEASE) is None


class TestLeaseRemote:
    """The same protocol through ManagementServer/Client RPCs."""

    @pytest.fixture()
    def server(self):
        srv = ManagementServer(make_db()).start()
        yield srv
        srv.stop()

    @pytest.fixture()
    def client(self, server):
        host, port = server.address
        with ManagementClient(host, port) as c:
            yield c

    def test_round_trip(self, server, client):
        got = client.lease_acquire(LEASE, "a", 10.0, now=100.0)
        assert got["epoch"] == 1
        assert client.lease_renew(LEASE, "a", 1, 10.0, now=105.0)
        assert client.lease_get(LEASE)["expires"] == 115.0
        assert client.lease_release(LEASE, "a")
        # Epochs are shared state: a different client sees the bump.
        host, port = server.address
        with ManagementClient(host, port) as other:
            assert other.lease_acquire(LEASE, "b", 10.0, now=100.0)["epoch"] == 2


# -- device-side fencing -----------------------------------------------------


class TestDeviceFencing:
    def _service(self):
        project = build_snvs()
        sim = project.new_simulator(n_ports=4)
        return sim, DeviceService(sim)

    def test_unfenced_writes_always_pass(self):
        _, svc = self._service()
        assert svc.fenced_write([], fence=None) == 0
        svc.fenced_apply_batch([], fence=5)
        assert svc.fenced_write([], fence=None) == 0  # still unfenced path

    def test_stale_epoch_rejected_and_state_preserved(self):
        sim, svc = self._service()
        svc.fenced_apply_batch([], fence=2)
        assert svc.fencing_epoch() == 2
        with pytest.raises(FencedWriteError) as exc:
            svc.fenced_write([], fence=1)
        assert exc.value.stale == 1
        assert exc.value.current == 2
        # A rejection must not regress the high-water mark.
        assert svc.fencing_epoch() == 2

    def test_equal_epoch_accepted(self):
        _, svc = self._service()
        svc.fenced_apply_batch([], fence=3)
        assert svc.fenced_write([], fence=3) == 0

    def test_fence_is_device_state_not_session_state(self):
        # Two controllers reach the *same* switch through independent
        # DeviceService sessions; the fence must still hold.
        sim, svc = self._service()
        other = DeviceService(sim)
        other.fenced_apply_batch([], fence=7)
        with pytest.raises(FencedWriteError):
            svc.fenced_write([], fence=6)

    def test_set_config_epoch_is_fenced_too(self):
        _, svc = self._service()
        svc.fenced_apply_batch([], fence=4)
        with pytest.raises(FencedWriteError):
            svc.fenced_set_config_epoch("stale-epoch", fence=3)


# -- the checkpoint follower -------------------------------------------------


def _snvs_config(db, ports):
    db.transact(
        [{"op": "insert", "table": "Vlan", "row": {"vid": 10}}]
        + [
            {
                "op": "insert",
                "table": "Port",
                "row": {
                    "name": f"p{p}",
                    "port_num": p,
                    "vlan_mode": "access",
                    "tag": 10,
                },
            }
            for p in ports
        ]
    )


def _add_port(db, p):
    db.transact(
        [
            {
                "op": "insert",
                "table": "Port",
                "row": {
                    "name": f"p{p}",
                    "port_num": p,
                    "vlan_mode": "access",
                    "tag": 10,
                },
            }
        ]
    )


def _del_port(db, p):
    db.transact(
        [{"op": "delete", "table": "Port", "where": [["name", "==", f"p{p}"]]}]
    )


_HEX = set("0123456789abcdef")


def _scrub(row):
    # Row uuids are minted per insert: two runs applying the same
    # logical transactions never share them.  Mask them so equality
    # compares the *semantic* content of each tuple.
    return tuple(
        "<uuid>"
        if isinstance(v, str) and len(v) == 32 and set(v) <= _HEX
        else v
        for v in row
    )


def _engine_state(runtime, bindings):
    relations = sorted(
        set(bindings.relation_for_ovsdb.values())
        | set(bindings.table_relations)
    )
    return {rel: sorted(_scrub(r) for r in runtime.dump(rel)) for rel in relations}


def _device_state(sim):
    return {
        name: sorted(
            (entry.match_key(), entry.action, entry.action_params)
            for entry in table.entries()
        )
        for name, table in sim.tables.items()
    }


class TestCheckpointFollower:
    def test_tails_full_then_segments(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        leader = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        try:
            _snvs_config(db, (0, 1))
            leader.drain()
            leader.save_checkpoint()

            follower = CheckpointFollower(project, str(tmp_path))
            assert not follower.ready
            assert follower.poll()
            assert follower.ready
            assert follower.full_reloads == 1
            assert _engine_state(follower.runtime, project.bindings) == (
                _engine_state(leader.runtime, project.bindings)
            )
            # Nothing new: poll is a cheap no-op.
            assert not follower.poll()

            # The leader keeps going; the follower replays just the
            # delta segment, no full reload.
            _add_port(db, 2)
            leader.drain()
            leader.save_checkpoint("delta")
            assert follower.poll()
            assert follower.full_reloads == 1
            assert follower.segments_replayed == 1
            assert _engine_state(follower.runtime, project.bindings) == (
                _engine_state(leader.runtime, project.bindings)
            )
            follower.close()
        finally:
            leader.stop()

    def test_detects_compaction_and_reloads(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        leader = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        try:
            _snvs_config(db, (0,))
            leader.drain()
            leader.save_checkpoint()
            follower = CheckpointFollower(project, str(tmp_path))
            assert follower.poll()

            # Compaction rewrites the full snapshot (fresh inode) and
            # purges the segments the follower was anchored on.
            _add_port(db, 1)
            leader.drain()
            leader.save_checkpoint("delta")
            _add_port(db, 2)
            leader.drain()
            leader.save_checkpoint("full")
            assert follower.poll()
            assert follower.full_reloads == 2
            assert _engine_state(follower.runtime, project.bindings) == (
                _engine_state(leader.runtime, project.bindings)
            )
            follower.close()
        finally:
            leader.stop()

    def test_follower_never_unlinks_a_torn_tail(self, tmp_path):
        """Regression: the follower opens the chain with ``heal=False``.
        A torn or stale segment may be the *writer's* — a follower that
        unlinked it would destroy a live leader's chain."""
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        leader = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        try:
            _snvs_config(db, (0,))
            leader.drain()
            leader.save_checkpoint()
            follower = CheckpointFollower(project, str(tmp_path))
            assert follower.poll()

            # Simulate the leader dying mid-segment-write.
            torn = tmp_path / "controller.ckpt.delta-000001.seg"
            torn.write_bytes(b"torn mid-write")
            assert not follower.poll()  # stops at the invalid tail...
            assert torn.exists()  # ...but must not delete it
            follower.close()
        finally:
            leader.stop()

    def test_detach_hands_over_runtime_and_warm_state(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        leader = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        try:
            _snvs_config(db, (0, 1))
            leader.drain()
            leader.save_checkpoint()
        finally:
            leader.stop()
        follower = CheckpointFollower(project, str(tmp_path))
        assert follower.poll()
        runtime, warm = follower.detach()
        assert runtime is not None
        assert "device_epochs" in warm
        assert follower.runtime is None  # ownership transferred
        runtime.close()

    def test_detach_before_any_checkpoint_is_empty(self, tmp_path):
        follower = CheckpointFollower(build_snvs(), str(tmp_path))
        assert not follower.poll()
        assert follower.detach() == (None, {})


# -- the HA state machine ----------------------------------------------------


def _ha(project, db, sims, state_dir, owner, clock, **overrides):
    kwargs = dict(
        lease_name=LEASE,
        owner=owner,
        ttl=60.0,
        renew_interval=0.05,
        poll_interval=0.05,
        clock=clock.now,
    )
    kwargs.update(overrides)
    return HAController(project, db, sims, str(state_dir), **kwargs)


class TestHAController:
    def test_single_replica_promotes_and_releases(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        clock = FakeClock()
        a = _ha(project, db, [switch], tmp_path, "a", clock)
        a.start()
        try:
            assert a.wait_for_role("leader", 15.0)
            assert a.epoch == 1
            assert a.is_leader
            _snvs_config(db, (0, 1))
            a.controller.drain()
            assert len(switch.table("in_vlan")) == 2
            assert a.metrics()["takeovers"] == 1
        finally:
            a.stop()
        # Graceful stop released the lease (expired, row kept).
        row = db.lease_get(LEASE)
        assert row["expires"] == 0.0
        assert row["epoch"] == 1

    def test_kill_requires_ttl_graceful_stop_does_not(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        clock = FakeClock()
        a = _ha(project, db, [switch], tmp_path, "a", clock)
        a.start()
        assert a.wait_for_role("leader", 15.0)
        _snvs_config(db, (0, 1))
        a.controller.drain()
        a.controller.save_checkpoint()

        b = _ha(project, db, [switch], tmp_path, "b", clock)
        b.start()
        try:
            # The lease is live: b must stay standby.
            assert not b.wait_for_role("leader", 0.3)

            a.kill()  # crash: no release
            assert db.lease_get(LEASE)["expires"] > 0.0
            assert not b.wait_for_role("leader", 0.3)

            clock.advance(61.0)  # TTL runs out
            b.poke()
            assert b.wait_for_role("leader", 15.0)
            assert b.epoch == 2
            # The takeover was warm: the checkpointed device epoch
            # matched, so no resync traffic was needed.
            assert b.controller.restart_mode == "warm"
            assert b.controller.warm_skips == 1
            # The new leader is live end to end.
            _add_port(db, 2)
            b.controller.drain()
            assert len(switch.table("in_vlan")) == 3
        finally:
            b.stop()

    def test_graceful_release_triggers_fast_takeover(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        clock = FakeClock()
        a = _ha(project, db, [switch], tmp_path, "a", clock)
        a.start()
        assert a.wait_for_role("leader", 15.0)
        _snvs_config(db, (0,))
        a.controller.drain()
        a.controller.save_checkpoint()
        b = _ha(project, db, [switch], tmp_path, "b", clock)
        b.start()
        try:
            assert not b.wait_for_role("leader", 0.3)
            # stop() releases the lease; the lease-table monitor pokes
            # the standby, which takes over with NO clock advance — the
            # fake clock proves no TTL wait was involved.
            a.stop()
            assert b.wait_for_role("leader", 15.0)
            assert b.epoch == 2
        finally:
            b.stop()

    def test_deposed_leader_demotes_on_failed_renew(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        clock = FakeClock()
        # a renews only when poked (huge interval): the test owns the
        # interleaving.
        a = _ha(
            project, db, [switch], tmp_path, "a", clock, renew_interval=120.0
        )
        a.start()
        try:
            assert a.wait_for_role("leader", 15.0)
            # a sleeps; its lease expires; b takes the leadership.
            b = _ha(project, db, [switch], tmp_path, "b", clock)
            clock.advance(61.0)
            b.start()
            try:
                assert b.wait_for_role("leader", 15.0)
                assert b.epoch == 2
                # a wakes, fails its renew, and demotes itself.
                a._role_events["standby"].clear()
                a.poke()
                assert a.wait_for_role("standby", 15.0)
                assert a.lost_leaderships == 1
                assert a.controller is None
            finally:
                b.stop()
        finally:
            a.stop()


# -- failover correctness ----------------------------------------------------


OPS = list(range(7))


def _apply_ops(db, ops):
    """A deterministic SNVS churn sequence, one transaction per step."""
    for op in ops:
        if op == 0:
            _snvs_config(db, (0, 1, 2, 3))
        elif op == 1:
            _del_port(db, 1)
        elif op == 2:
            _add_port(db, 4)
        elif op == 3:
            _add_port(db, 5)
        elif op == 4:
            _del_port(db, 0)
        elif op == 5:
            _add_port(db, 6)
        elif op == 6:
            _del_port(db, 4)


def _reference_state(tmp_path):
    """The uninterrupted run the failover must be indistinguishable
    from: one controller applies every transaction."""
    project = build_snvs()
    db = Database(project.schema)
    switch = project.new_simulator(n_ports=8)
    controller = NerpaController(
        project, db, [switch], state_dir=str(tmp_path / "ref")
    ).start()
    try:
        _apply_ops(db, OPS)
        controller.drain()
        return (
            _engine_state(controller.runtime, project.bindings),
            _device_state(switch),
        )
    finally:
        controller.stop()


class TestFailoverOracle:
    def test_kill_mid_sequence_converges_identically(self, tmp_path):
        ref_engine, ref_device = _reference_state(tmp_path)

        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        clock = FakeClock()
        state = tmp_path / "shared"
        a = _ha(project, db, [switch], state, "a", clock)
        a.start()
        assert a.wait_for_role("leader", 15.0)
        _apply_ops(db, OPS[:3])
        a.controller.drain()
        a.controller.save_checkpoint()
        # Transactions 3..4 reach the devices but never a checkpoint:
        # the successor must recover them from the durable mgmt DB.
        _apply_ops(db, OPS[3:5])
        a.controller.drain()

        b = _ha(project, db, [switch], state, "b", clock)
        b.start()
        try:
            a.kill()
            clock.advance(61.0)
            b.poke()
            assert b.wait_for_role("leader", 15.0)
            _apply_ops(db, OPS[5:])
            b.controller.drain()
            assert _engine_state(b.controller.runtime, project.bindings) == ref_engine
            assert _device_state(switch) == ref_device
        finally:
            b.stop()

    def test_kill_mid_checkpoint_converges_identically(self, tmp_path):
        """The leader dies *while* appending a delta segment: the torn
        segment must neither corrupt the takeover nor be unlinked by
        the follower (it belongs to whoever writes the chain next)."""
        ref_engine, ref_device = _reference_state(tmp_path)

        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        clock = FakeClock()
        state = tmp_path / "shared"
        a = _ha(project, db, [switch], state, "a", clock)
        a.start()
        assert a.wait_for_role("leader", 15.0)
        _apply_ops(db, OPS[:4])
        a.controller.drain()
        a.controller.save_checkpoint()
        # The crash happens mid-write of the next delta segment.
        store = a.controller._ckpt_store
        torn = store._segment_path(store._next_index)
        with open(torn, "wb") as handle:
            handle.write(b"\x80torn delta segment")

        b = _ha(project, db, [switch], state, "b", clock)
        b.start()
        try:
            a.kill()
            clock.advance(61.0)
            b.poke()
            assert b.wait_for_role("leader", 15.0)
            import os

            assert os.path.exists(torn)  # the follower did not heal
            _apply_ops(db, OPS[4:])
            b.controller.drain()
            assert _engine_state(b.controller.runtime, project.bindings) == ref_engine
            assert _device_state(switch) == ref_device
        finally:
            b.stop()

    def test_deposed_leader_writes_are_fenced_at_the_device(self, tmp_path):
        """End-to-end fencing: a paused-then-resumed old leader keeps
        fanning out batches stamped with its dead epoch — every device
        rejects them, and the failure surfaces at *its* drain()."""
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        old = NerpaController(
            project, db, [switch], fencing_epoch=1
        ).start()
        try:
            _snvs_config(db, (0, 1))
            old.drain()
            before = _device_state(switch)
            # A successor acquires epoch 2 and stamps it on the device
            # (what HAController does during its takeover).
            DeviceService(switch).fenced_apply_batch([], fence=2)
            # The old leader, unaware, keeps driving its pipeline.
            _add_port(db, 2)
            with pytest.raises(FencedWriteError):
                old.drain()
            # The device never applied the deposed leader's batch.
            assert _device_state(switch) == before
        finally:
            old.stop()

    def test_fenced_rejection_is_not_a_transport_error(self, tmp_path):
        """A fenced write must not trip the breaker/resync machinery —
        a resync from a deposed leader would be fenced too, but it must
        fail loudly instead of looping."""
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        old = NerpaController(project, db, [switch], fencing_epoch=1).start()
        try:
            _snvs_config(db, (0,))
            old.drain()
            DeviceService(switch).fenced_apply_batch([], fence=2)
            _add_port(db, 1)
            with pytest.raises(FencedWriteError):
                old.drain()
            device = old.devices[0]
            assert not device.quarantined
        finally:
            old.stop()

    def test_epoch_matched_takeover_never_dumps_desired_state(self, tmp_path):
        """When every device already reports its checkpointed epoch,
        the takeover must not take the O(state) desired-writes dump —
        that skip is what makes failover latency independent of the
        derived-state size (the H1 headline)."""
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        leader = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        try:
            _snvs_config(db, (0, 1))
            leader.drain()
            leader.save_checkpoint()
        finally:
            leader.stop()

        follower = CheckpointFollower(project, str(tmp_path))
        assert follower.poll()

        dumps = []

        class Counting(NerpaController):
            def _desired_writes(self):
                dumps.append(1)
                return super()._desired_writes()

        successor = Counting(
            project,
            db,
            [switch],
            state_dir=str(tmp_path),
            fencing_epoch=2,
            warm_source=follower.detach(),
        ).start(warm=True)
        try:
            successor.drain()
            assert successor.restart_mode == "warm"
            assert successor.warm_skips == 1
            assert dumps == []
            # The device learned the successor's fence during takeover.
            assert switch.fencing_epoch == 2
        finally:
            successor.stop()

    def test_device_written_between_probe_and_sync_is_repaired(self, tmp_path):
        """The engine-thread epoch probe is only an optimization: if a
        device moves between the probe and the writer-thread check
        (e.g. a deposed leader wrote before being fenced), the takeover
        must fall back to a full read-diff resync."""
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        leader = NerpaController(
            project, db, [switch], state_dir=str(tmp_path)
        ).start()
        try:
            _snvs_config(db, (0, 1))
            leader.drain()
            leader.save_checkpoint()
        finally:
            leader.stop()
        reference = _device_state(switch)

        follower = CheckpointFollower(project, str(tmp_path))
        assert follower.poll()

        class Raced(NerpaController):
            def _warm_sync(self, device, expected, desired, mcast):
                # Rogue write landing after the engine-thread probe but
                # before the writer-thread epoch check: corrupts a
                # table entry and advances the device's config epoch.
                service = DeviceService(switch)
                entry = service.read_table("in_vlan")[0]
                service.write([TableWrite.delete("in_vlan", entry)])
                service.set_config_epoch("rogue-write")
                return super()._warm_sync(device, expected, desired, mcast)

        successor = Raced(
            project,
            db,
            [switch],
            state_dir=str(tmp_path),
            fencing_epoch=2,
            warm_source=follower.detach(),
        ).start(warm=True)
        try:
            successor.drain()
            assert successor.warm_skips == 0
            assert successor.device_resyncs >= 1
            assert _device_state(switch) == reference
        finally:
            successor.stop()


# -- stop() ordering ---------------------------------------------------------


class TestStopOrdering:
    def test_stop_under_churn_terminates(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        clock = FakeClock()
        a = _ha(project, db, [switch], tmp_path, "a", clock)
        a.start()
        assert a.wait_for_role("leader", 15.0)
        _snvs_config(db, (0,))
        a.controller.drain()

        stop_churn = threading.Event()

        def churn():
            port = 1
            while not stop_churn.is_set():
                _add_port(db, port)
                _del_port(db, port)

        churner = threading.Thread(target=churn, daemon=True)
        churner.start()
        try:
            # stop() must terminate while transactions keep flowing —
            # run it on a watchdog thread so a deadlock fails the test
            # instead of hanging it.
            stopper = threading.Thread(target=a.stop, daemon=True)
            stopper.start()
            stopper.join(30.0)
            assert not stopper.is_alive(), "HA stop() deadlocked under churn"
        finally:
            stop_churn.set()
            churner.join(10.0)
        assert db.lease_get(LEASE)["expires"] == 0.0

    def test_stop_from_monitor_callback_does_not_deadlock(self):
        """A monitor callback runs on the transacting thread while the
        database's notify machinery is mid-delivery; stopping the
        controller from there must not deadlock."""
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        controller = NerpaController(project, db, [switch]).start()
        _snvs_config(db, (0,))
        controller.drain()

        from repro.mgmt.monitor import MonitorSpec

        stopped = threading.Event()

        def on_update(_updates):
            if not stopped.is_set():
                stopped.set()
                controller.stop()

        db.add_monitor(MonitorSpec({"Port": None}), on_update)

        worker = threading.Thread(
            target=lambda: _add_port(db, 1), daemon=True
        )
        worker.start()
        worker.join(30.0)
        assert not worker.is_alive(), "stop() from a monitor callback hung"
        assert stopped.is_set()

    def test_background_timer_cancelled_before_teardown(self, tmp_path):
        project = build_snvs()
        db = Database(project.schema)
        switch = project.new_simulator(n_ports=8)
        controller = NerpaController(
            project,
            db,
            [switch],
            state_dir=str(tmp_path),
            checkpoint_interval_s=0.01,
        ).start()
        _snvs_config(db, (0, 1))
        controller.drain()
        wait_for(
            lambda: controller.auto_checkpoints >= 2,
            timeout=15.0,
            what="background checkpoints",
        )
        timer = controller._ckpt_timer_thread
        controller.stop()
        assert timer is not None and not timer.is_alive()
        # The chain the timer wrote is a valid warm-start source.
        follower = CheckpointFollower(project, str(tmp_path))
        assert follower.poll()
        follower.close()
