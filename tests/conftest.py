"""Test-suite-wide hypothesis configuration.

Two profiles, selected by ``HYPOTHESIS_PROFILE`` (default ``local``):

``ci``
    Derandomized (the fixed seed derives from each test's name) with
    deadlines off and ``print_blob=True``, so a CI failure is
    reproducible from the log alone: rerun the printed
    ``@reproduce_failure`` blob locally, or rerun the whole job — the
    same examples regenerate every time.

``local``
    Random exploration (fresh examples each run) with deadlines off —
    wall-clock deadlines flake under parallel test runs and loaded
    machines, and none of our properties are latency assertions.

See docs/TESTING.md for the differential-oracle methodology and the
failure-reproduction workflow.
"""

import os

from hypothesis import settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    print_blob=True,
)
settings.register_profile(
    "local",
    deadline=None,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "local"))
