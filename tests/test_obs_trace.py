"""End-to-end update-id tracing tests (``repro.obs``):

one update-id minted at the OVSDB transact must appear on every stage
of the resulting propagation — controller sync, engine transaction
(with per-operator stats), and the P4Runtime table write — and digest
feedback must link back to the trace of the config change that
installed the digest-producing entries.  Covered both in-process and
across the real TCP servers.
"""

import threading
import time

import pytest

from repro import obs
from repro.apps.snvs import SnvsNetwork, build_snvs
from repro.core.controller import NerpaController
from repro.mgmt.client import ManagementClient
from repro.mgmt.database import Database
from repro.mgmt.server import ManagementServer
from repro.net import RetryPolicy
from repro.p4.headers import ethernet
from repro.p4runtime.client import P4RuntimeClient
from repro.p4runtime.server import P4RuntimeServer

pytestmark = pytest.mark.serial  # resets the global obs registry

A = "aa:00:00:00:00:0a"
B = "aa:00:00:00:00:0b"

FAST = RetryPolicy(
    connect_timeout=2.0,
    call_timeout=5.0,
    max_reconnect_attempts=60,
    base_delay=0.01,
    max_delay=0.05,
)


def wait_for(predicate, timeout=30.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.002)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture
def obs_on():
    obs.reset()
    obs.enable(detail=True)  # these tests inspect per-operator stats
    yield
    obs.disable()
    obs.reset()


def span_names(uid):
    return {s.name for s in obs.TRACER.spans(uid)}


class TestLocalTracePath:
    def test_transact_uid_reaches_device_write(self, obs_on):
        net = SnvsNetwork(n_ports=8)
        net.add_vlan(10)
        net.add_access_port(0, vlan=10)
        uid = obs.TRACER.latest_update_id(name="mgmt.transact")
        assert uid is not None
        # The same id covers every plane of the propagation.
        assert {
            "mgmt.transact",
            "controller.sync",
            "engine.transaction",
            "device.write",
            "device.apply",
        } <= span_names(uid)
        for span in obs.TRACER.spans(uid):
            assert span.duration >= 0.0

    def test_engine_span_carries_operator_stats(self, obs_on):
        net = SnvsNetwork(n_ports=8)
        net.add_vlan(10)
        net.add_access_port(0, vlan=10)
        uid = obs.TRACER.latest_update_id(name="mgmt.transact")
        (engine_span,) = [
            s
            for s in obs.TRACER.spans(uid)
            if s.name == "engine.transaction"
        ]
        operators = engine_span.attrs["operators"]
        assert operators  # per-operator tuple counts and timings
        assert all(
            stats["calls"] >= 1 and stats["seconds"] >= 0.0
            for stats in operators.values()
        )
        assert any(stats["in_tuples"] > 0 for stats in operators.values())
        assert engine_span.attrs["stratum_seconds"]
        assert engine_span.attrs["deltas"]

    def test_spans_nest_under_controller_sync(self, obs_on):
        net = SnvsNetwork(n_ports=8)
        net.add_vlan(10)
        net.add_access_port(0, vlan=10)
        uid = obs.TRACER.latest_update_id(name="mgmt.transact")
        spans = {s.name: s for s in obs.TRACER.spans(uid)}
        by_id = {s.span_id: s for s in obs.TRACER.spans(uid)}
        sync = spans["controller.sync"]
        assert by_id[spans["engine.transaction"].parent_id] is sync
        assert by_id[spans["device.write"].parent_id] is sync
        assert spans["device.apply"].parent_id == spans["device.write"].span_id
        # and the sync itself is a child of the transact
        assert by_id[sync.parent_id].name == "mgmt.transact"

    def test_digest_feedback_links_to_originating_trace(self, obs_on):
        net = SnvsNetwork(n_ports=8)
        net.add_vlan(10)
        net.add_access_port(0, vlan=10)
        net.add_access_port(1, vlan=10)
        config_uid = obs.TRACER.latest_update_id(name="mgmt.transact")
        net.send(0, B, A)  # triggers a mac_learn_t digest
        digests = [
            s for s in obs.TRACER.spans() if s.name == "controller.digest"
        ]
        assert digests
        digest_span = digests[-1]
        # The feedback transaction has its own id...
        assert digest_span.update_id != config_uid
        # ...but links back to the config change whose entries produced
        # the digest (the device's config epoch).
        assert digest_span.attrs["link"] == config_uid
        # and the feedback's own writes are traced under the new id.
        assert "device.write" in span_names(digest_span.update_id)

    def test_render_prints_full_pipeline(self, obs_on):
        net = SnvsNetwork(n_ports=8)
        net.add_vlan(10)
        net.add_access_port(0, vlan=10)
        uid = obs.TRACER.latest_update_id(name="mgmt.transact")
        text = obs.TRACER.render(uid)
        assert f"trace {uid}" in text
        for stage in (
            "mgmt.transact",
            "controller.sync",
            "engine.transaction",
            "device.write",
        ):
            assert stage in text
        assert "ms]" in text  # per-stage durations

    def test_standard_tier_skips_operator_profile(self):
        """``enable()`` without detail still traces every stage but
        leaves out the per-operator dataflow breakdown (the expensive
        part), keeping the always-on tier cheap."""
        obs.reset()
        obs.enable()
        try:
            net = SnvsNetwork(n_ports=8)
            net.add_vlan(10)
            net.add_access_port(0, vlan=10)
            uid = obs.TRACER.latest_update_id(name="mgmt.transact")
            assert {
                "mgmt.transact",
                "controller.sync",
                "engine.transaction",
                "device.write",
            } <= span_names(uid)
            (engine_span,) = [
                s
                for s in obs.TRACER.spans(uid)
                if s.name == "engine.transaction"
            ]
            assert "operators" not in engine_span.attrs
            assert obs.REGISTRY.histogram("engine_txn_seconds").count >= 1
        finally:
            obs.disable()
            obs.reset()

    def test_disabled_stack_records_nothing(self):
        obs.reset()
        assert not obs.enabled()
        net = SnvsNetwork(n_ports=8)
        net.add_vlan(10)
        net.add_access_port(0, vlan=10)
        net.send(0, B, A)
        assert obs.TRACER.spans() == []
        assert obs.REGISTRY.snapshot()["counters"] == {}

    def test_registry_folds_all_planes(self, obs_on):
        net = SnvsNetwork(n_ports=8)
        net.add_vlan(10)
        net.add_access_port(0, vlan=10)
        net.send(0, B, A)
        snap = obs.REGISTRY.snapshot()
        counters = snap["counters"]
        assert counters["mgmt_txns_total"] >= 3
        assert snap["histograms"]["engine_txn_seconds"]["count"] >= 3
        assert counters["controller_syncs_total"] >= 2
        assert counters["dataplane_packets_total"] >= 1
        assert any(k.startswith("dataplane_digests_total") for k in counters)
        assert any(k.startswith("device_writes_total") for k in counters)
        assert snap["histograms"]["controller_sync_seconds"]["count"] >= 2
        metrics = net.metrics()
        assert metrics["registry"]["counters"] == counters
        assert metrics["engine"]["operators"]


def _transact_config(transact):
    transact(
        [
            {"op": "insert", "table": "Vlan", "row": {"vid": 10}},
            {
                "op": "insert",
                "table": "SwitchConfig",
                "row": {"name": "snvs", "learning_enabled": True},
            },
        ]
    )
    transact(
        [
            {
                "op": "insert",
                "table": "Port",
                "row": {
                    "name": f"port{p}",
                    "port_num": p,
                    "vlan_mode": "access",
                    "tag": 10,
                },
            }
            for p in (0, 1)
        ]
    )


@pytest.mark.slow
class TestRemoteTracePath:
    def test_uid_crosses_both_wire_protocols(self, obs_on):
        """mgmt server → controller → P4Runtime server, all over TCP:
        the update-id minted server-side at the transact must reach the
        device-side write span, and the digest notification must carry
        it back for the feedback link.

        Synchronization is event-based, not timing-based: ports are
        OS-assigned (no bind race), delivery of the config and of the
        digest is observed through bounded waits on pipeline events
        (device table state, ingest hooks), and each wait is followed by
        ``controller.drain()`` — the pipeline's own quiescence barrier —
        before any span assertions, so no fixed delay is assumed
        anywhere.
        """
        project = build_snvs()
        db = Database(project.schema)
        sim = project.new_simulator(n_ports=8)
        mgmt_srv = ManagementServer(db, port=0).start()
        p4_srv = P4RuntimeServer(sim, port=0).start()
        mgmt = ManagementClient(*mgmt_srv.address, policy=FAST)
        device = P4RuntimeClient(*p4_srv.address, policy=FAST)
        controller = NerpaController(project, mgmt, [device])
        # Observe the digest crossing back into the controller before
        # it enters the pipeline; installed pre-start so the device
        # subscription carries the instrumented callback.
        digest_ingested = threading.Event()
        inner_on_digest = controller._on_digest

        def on_digest_spy(name, values):
            inner_on_digest(name, values)
            digest_ingested.set()

        controller._on_digest = on_digest_spy
        controller.start()
        try:
            _transact_config(mgmt.transact)
            # The monitor notification crosses the wire asynchronously;
            # the device table going live is the delivery event.  After
            # it, drain() guarantees every ingested changeset has been
            # evaluated and applied — so the spans all exist.
            wait_for(
                lambda: len(sim.table("in_vlan")) == 2,
                what="config to reach the device",
            )
            controller.drain()
            uid = obs.TRACER.latest_update_id(name="mgmt.transact")
            assert uid is not None
            names = span_names(uid)
            assert {
                "mgmt.transact",
                "controller.sync",
                "engine.transaction",
                "device.write",
                "device.apply",
            } <= names

            # Digest feedback over the wire links back to that uid.
            device.inject(0, ethernet(B, A))
            assert digest_ingested.wait(30.0), "digest never round-tripped"
            controller.drain()
            digest_spans = [
                s
                for s in obs.TRACER.spans()
                if s.name == "controller.digest"
            ]
            assert digest_spans
            assert any(s.attrs["link"] == uid for s in digest_spans)
        finally:
            controller.stop()
            device.close()
            mgmt.close()
            p4_srv.stop()
            mgmt_srv.stop()
